"""Queue-backend scaling benchmark (``BENCH_distributed.json``).

Sweeps one grid through the distributed queue backend at 1, 2 and 4
workers under a fixed per-cell service-time floor, and compares peak
RSS of materializing vs streaming profiling on a ``.mtx`` file much
larger than the streaming memory budget::

    PYTHONPATH=src python benchmarks/bench_distributed.py          # full
    PYTHONPATH=src python benchmarks/bench_distributed.py --quick  # CI

Exits non-zero when a full run misses a gate: 2-worker speedup below
1.7x, checkpoint digests differing across worker counts, or the
streaming path failing to reduce peak RSS.  The same harness backs
``repro bench-distributed``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ in (None, ""):
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.bench_distributed import (
    bench_distributed,
    check_distributed_report,
    write_distributed_report,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="shrunken CI smoke run (no scaling gate)",
    )
    parser.add_argument(
        "--output", default="BENCH_distributed.json",
        help="JSON report path (default BENCH_distributed.json)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    report = bench_distributed(quick=args.quick)
    path = write_distributed_report(report, args.output)
    summary = report["summary"]
    for row in report["scaling"]["rows"]:
        print(
            f"{row['workers']} worker(s): {row['wall_s']:.2f} s, "
            f"{row['cells_per_s']:.1f} cells/s, "
            f"{row['speedup_vs_1']:.2f}x"
        )
    streaming = report["streaming"]
    print(
        f"out-of-core: {streaming['triplet_mb']:.1f} MB of triplets "
        f"under a {streaming['memory_budget_mb']:g} MB budget, "
        f"peak RSS reduced {summary['rss_reduction']:.2f}x"
    )
    print(f"report written to {path}")
    if args.quick:
        return 0
    problems = check_distributed_report(report)
    for problem in problems:
        print(f"GATE FAILED: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
