"""Scalar-vs-batch pipeline speed benchmark (``BENCH_pipeline.json``).

Times the struct-of-arrays batch path of
:class:`repro.hardware.pipeline.StreamingPipeline` against the
per-profile scalar reference on paper-scale synthetic workloads and
writes the machine-readable report::

    PYTHONPATH=src python benchmarks/bench_speed.py            # 8000 x 8000
    PYTHONPATH=src python benchmarks/bench_speed.py --quick    # CI smoke

Exits non-zero when any (workload, format) pair runs slower on the
batch path than on the scalar path, so CI can gate on the speedup.
The same harness backs ``repro bench``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ in (None, ""):
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.bench import bench_pipeline, bench_report, write_report
from repro.formats.registry import PAPER_FORMATS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--n", type=int, default=8000,
        help="matrix dimension (default 8000, the paper scale)",
    )
    parser.add_argument(
        "-p", "--partition", type=int, default=8,
        help="partition size (default 8)",
    )
    parser.add_argument(
        "--density", type=float, default=0.01,
        help="density of the random workload (default 0.01)",
    )
    parser.add_argument(
        "--band-width", type=int, default=64,
        help="width of the band workload (default 64)",
    )
    parser.add_argument(
        "--formats", nargs="+", default=list(PAPER_FORMATS),
        help="formats to bench (default: the eight paper formats)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="timing repeats, best-of reported (default 1)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="generator seed (default 0)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="1024 x 1024 smoke run (CI-sized)",
    )
    parser.add_argument(
        "--output", default="BENCH_pipeline.json",
        help="JSON report path (default BENCH_pipeline.json)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    n = 1024 if args.quick else args.n
    results = bench_pipeline(
        n=n,
        p=args.partition,
        density=args.density,
        band_width=args.band_width,
        formats=tuple(args.formats),
        repeats=args.repeats,
        seed=args.seed,
    )
    report = bench_report(
        results,
        n=n,
        p=args.partition,
        density=args.density,
        band_width=args.band_width,
        repeats=args.repeats,
    )
    path = write_report(report, args.output)

    header = (
        f"{'workload':<14} {'format':<8} {'tiles':>8} "
        f"{'scalar ms':>10} {'batch ms':>9} {'speedup':>8} "
        f"{'Mcells/s':>9}"
    )
    print(header)
    print("-" * len(header))
    for r in results:
        print(
            f"{r.workload:<14} {r.format_name:<8} {r.n_tiles:>8} "
            f"{r.scalar_s * 1e3:>10.2f} {r.batch_s * 1e3:>9.2f} "
            f"{r.speedup:>7.1f}x {r.batch_cells_per_s / 1e6:>9.0f}"
        )
    summary = report["summary"]
    print(
        f"\nspeedup: min {summary['min_speedup']:.1f}x, "
        f"geomean {summary['geomean_speedup']:.1f}x, "
        f"max {summary['max_speedup']:.1f}x"
    )
    print(f"report written to {path}")

    if summary["min_speedup"] < 1.0:
        print(
            "FAIL: batch path slower than the scalar reference",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
