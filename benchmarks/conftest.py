"""Shared fixtures for the per-table / per-figure benchmark harness.

Each benchmark regenerates one artifact of the paper's evaluation:
it builds the workloads, runs the characterization, prints the same
rows/series the paper reports (run pytest with ``-s`` to see them),
and asserts the qualitative shape the paper describes.

Workload scales: the SuiteSparse stand-ins are capped at 2048 rows and
the density sweeps use 1024-row matrices so the full suite runs in
minutes; Figure 9 keeps the paper's 8000 x 8000 scale.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import SweepRunner
from repro.hardware import HardwareConfig
from repro.workloads import band_suite, random_suite, suitesparse_suite

#: Partition sizes of the paper's sweeps.
PARTITION_SIZES = (8, 16, 32)

#: Figure order of the format bars.
FORMATS = ("dense", "csr", "bcsr", "csc", "lil", "ell", "coo", "dia")

#: Worker processes for the sweep engine; export REPRO_BENCH_WORKERS=N
#: to fan the figure cubes out over N processes.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def config_at(p: int) -> HardwareConfig:
    return HardwareConfig(partition_size=p)


@pytest.fixture(scope="session")
def sweep_runner() -> SweepRunner:
    """The shared engine every figure benchmark sweeps through."""
    return SweepRunner(max_workers=BENCH_WORKERS)


@pytest.fixture(scope="session")
def suitesparse_workloads():
    """Stand-ins for all 20 Table 1 matrices (dimension-capped)."""
    return suitesparse_suite(max_dim=2048, seed=0)


@pytest.fixture(scope="session")
def random_workloads():
    """The density sweep of Figures 5 and 10."""
    return random_suite(n=1024, seed=0)


@pytest.fixture(scope="session")
def band_workloads():
    """The band-width sweep of Figures 6 and 11."""
    return band_suite(n=2048, seed=0)
