"""Shared fixtures for the per-table / per-figure benchmark harness.

Each benchmark regenerates one artifact of the paper's evaluation:
it builds the workloads, runs the characterization, prints the same
rows/series the paper reports (run pytest with ``-s`` to see them),
and asserts the qualitative shape the paper describes.

Workload scales: the SuiteSparse stand-ins are capped at 2048 rows and
the density sweeps use 1024-row matrices so the full suite runs in
minutes; Figure 9 keeps the paper's 8000 x 8000 scale.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro.engine import SweepRunner
from repro.hardware import HardwareConfig
from repro.workloads import band_suite, random_suite, suitesparse_suite

#: Partition sizes of the paper's sweeps.
PARTITION_SIZES = (8, 16, 32)

#: Figure order of the format bars.
FORMATS = ("dense", "csr", "bcsr", "csc", "lil", "ell", "coo", "dia")

#: Worker processes for the sweep engine; export REPRO_BENCH_WORKERS=N
#: to fan the figure cubes out over N processes.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Where each figure's run manifest lands; export
#: REPRO_BENCH_MANIFEST_DIR to redirect, or set it empty to disable.
BENCH_MANIFEST_DIR = os.environ.get(
    "REPRO_BENCH_MANIFEST_DIR",
    str(Path(__file__).resolve().parent / "manifests"),
)

#: Worker-crash retries per chunk; export REPRO_BENCH_MAX_RETRIES=N
#: to tolerate flaky CI machines (0 disables retries).
BENCH_MAX_RETRIES = int(os.environ.get("REPRO_BENCH_MAX_RETRIES", "2"))


def config_at(p: int) -> HardwareConfig:
    return HardwareConfig(partition_size=p)


class ManifestingSweepRunner(SweepRunner):
    """A telemetry-enabled runner that drops one manifest per sweep.

    Manifests are named after the pytest test driving the sweep (via
    ``PYTEST_CURRENT_TEST``), with a sequence suffix when one test
    sweeps more than once, so every figure's numbers come with the
    machine-readable record of the run that produced them:
    ``repro stats benchmarks/manifests/<test>.manifest.jsonl``.
    """

    def __init__(self, *args, manifest_dir: str = "", **kwargs):
        super().__init__(*args, **kwargs)
        self.manifest_dir = manifest_dir
        self._sequence: dict[str, int] = {}

    def _manifest_path(self) -> Path:
        current = os.environ.get("PYTEST_CURRENT_TEST", "sweep")
        name = current.split("::")[-1].split(" ")[0] or "sweep"
        name = re.sub(r"[^A-Za-z0-9_.-]+", "_", name)
        count = self._sequence.get(name, 0) + 1
        self._sequence[name] = count
        suffix = "" if count == 1 else f"-{count}"
        return Path(self.manifest_dir) / f"{name}{suffix}.manifest.jsonl"

    def run(self, cells):
        outcome = super().run(cells)
        if (
            self.manifest_dir
            and outcome.telemetry is not None
            and outcome.telemetry.cells
        ):
            outcome.write_manifest(self._manifest_path())
        return outcome


@pytest.fixture(scope="session")
def sweep_runner() -> SweepRunner:
    """The shared engine every figure benchmark sweeps through."""
    # fail fast: a benchmark asserting on a partial cube would report
    # a bogus figure shape instead of the failure that caused it
    return ManifestingSweepRunner(
        max_workers=BENCH_WORKERS,
        telemetry=True,
        manifest_dir=BENCH_MANIFEST_DIR,
        error_policy="fail_fast",
        max_retries=BENCH_MAX_RETRIES,
    )


@pytest.fixture(scope="session")
def suitesparse_workloads():
    """Stand-ins for all 20 Table 1 matrices (dimension-capped)."""
    return suitesparse_suite(max_dim=2048, seed=0)


@pytest.fixture(scope="session")
def random_workloads():
    """The density sweep of Figures 5 and 10."""
    return random_suite(n=1024, seed=0)


@pytest.fixture(scope="session")
def band_workloads():
    """The band-width sweep of Figures 6 and 11."""
    return band_suite(n=2048, seed=0)
