"""Ablation: BCSR block size.

The paper fixes BCSR's block edge at 4 ("the block size we choose in
all our experiments").  This ablation asks what that choice costs:
smaller blocks transfer less padding but pay more offset traffic and
more per-block gathers; larger blocks amortize metadata but drag more
zeros (and more wasted dot products) along.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import grouped_series
from repro.core import SpmvSimulator
from repro.hardware import HardwareConfig
from repro.workloads import band_matrix, random_matrix

BLOCK_SIZES = (2, 4, 8, 16)


def build_table():
    workloads = {
        "rand-0.05": random_matrix(1024, 0.05, seed=0),
        "rand-0.3": random_matrix(1024, 0.3, seed=0),
        "band-16": band_matrix(1024, 16, seed=0),
    }
    table = {}
    for name, matrix in workloads.items():
        sigmas, utils = [], []
        for block in BLOCK_SIZES:
            config = replace(
                HardwareConfig(partition_size=16), block_size=block
            )
            simulator = SpmvSimulator(config)
            result = simulator.characterize(matrix, "bcsr", workload=name)
            sigmas.append(result.sigma)
            utils.append(result.bandwidth_utilization)
        table[name] = {"sigma": sigmas, "bw": utils}
    return table


def test_ablation_block_size(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    for name, series in table.items():
        print(
            grouped_series(
                BLOCK_SIZES,
                {"sigma": series["sigma"], "bw util": series["bw"]},
                title=f"Ablation ({name}): BCSR block size",
            )
        )
        print()

    # on sparse data, block = partition degenerates to a dense-like
    # transfer and wastes the most bandwidth; at density 0.3 the
    # trade flips (metadata dominates padding), so only the sparse
    # workloads are asserted.
    for name in ("rand-0.05", "band-16"):
        series = table[name]
        assert series["bw"][-1] == min(series["bw"]), name

    # on sparse random data, smaller blocks waste less bandwidth.
    sparse_bw = table["rand-0.05"]["bw"]
    assert sparse_bw[0] > sparse_bw[-1]
    # the paper's block of 4 is within 25% of the best sigma on the
    # banded workload — the choice is reasonable, not magical.
    band_sigma = table["band-16"]["sigma"]
    assert band_sigma[1] <= 1.25 * min(band_sigma)
