"""Ablation: memory-bus bandwidth sweep.

The paper's first insight: "the memory bandwidth is not always the
bottleneck; hence the performance of sparse problems cannot always be
improved by simply adding more memory bandwidth."  This ablation sweeps
the modelled DDR bus from half to 4x the baseline and measures how much
each format's total latency actually improves.

Expected shape: dense (memory-bound) speeds up nearly linearly with
bandwidth, while CSR/CSC (compute-bound decompressors) barely move —
their bottleneck is the decompression logic, exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import FORMATS

from repro.analysis import grouped_series
from repro.core import SpmvSimulator
from repro.hardware import HardwareConfig
from repro.workloads import random_matrix

BUS_BYTES = (4, 8, 16, 32)


def build_series():
    matrix = random_matrix(1024, 0.05, seed=0)
    series = {name: [] for name in FORMATS}
    for bus in BUS_BYTES:
        config = replace(
            HardwareConfig(partition_size=16), axi_bytes_per_cycle=bus
        )
        simulator = SpmvSimulator(config)
        profiles = simulator.profiles(matrix)
        for name in FORMATS:
            result = simulator.run_format(name, profiles, "rand-0.05")
            series[name].append(result.total_cycles)
    return series


def test_ablation_bus_width(benchmark):
    series = benchmark.pedantic(build_series, rounds=1, iterations=1)
    print()
    print(
        grouped_series(
            BUS_BYTES, series,
            title="Ablation: total cycles vs bus bytes/cycle "
            "(insight 1: bandwidth is not always the bottleneck)",
        )
    )

    def speedup(name: str) -> float:
        return series[name][0] / series[name][-1]

    # dense is memory-bound: large gains until compute takes over.
    assert speedup("dense") > 3.0
    # the compute-bound decompressors barely benefit.
    assert speedup("csc") < 1.2
    assert speedup("csr") < 2.0
    # every compute-bound format gains less than dense.
    for name in FORMATS:
        if name == "dense":
            continue
        assert speedup(name) <= speedup("dense") + 1e-9, name
