"""Ablation: ELL hardware width, and the ELL+COO / JDS variants.

The paper fixes the ELL padding width at six and notes that "reducing
ELL_MAX_COMP_ROW_LENGTH ... and using optimizations such as ELL-COO
only impact the resource utilization of the FPGA, not the performance"
(compute side), while Section 2 presents ELL+COO and JDS as the fixes
for ELL's padding *transfer*.  This ablation measures both halves:

* compute latency is set by the engine width (shallower adder tree);
* transfer cost is where the variants pay off — ELL+COO and JDS ship
  far fewer padded slots than plain ELL on skewed (power-law) rows.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table, grouped_series
from repro.core import SpmvSimulator
from repro.hardware import HardwareConfig
from repro.workloads import power_law_graph, random_matrix

WIDTHS = (2, 4, 6, 8, 12)


def build_results():
    matrix = power_law_graph(1024, avg_degree=6, seed=0)
    width_series = {"sigma": [], "compute_cycles": []}
    for width in WIDTHS:
        config = replace(
            HardwareConfig(partition_size=16), ell_hardware_width=width
        )
        simulator = SpmvSimulator(config)
        result = simulator.characterize(matrix, "ell", workload="graph")
        width_series["sigma"].append(result.sigma)
        width_series["compute_cycles"].append(result.compute_cycles)

    simulator = SpmvSimulator(HardwareConfig(partition_size=16))
    variants = {}
    for workload_name, workload in (
        ("graph", matrix),
        ("rand-0.4", random_matrix(1024, 0.4, seed=0)),
    ):
        profiles = simulator.profiles(workload)
        for name in ("ell", "ell+coo", "jds"):
            variants[(workload_name, name)] = simulator.run_format(
                name, profiles, workload_name
            )
    return width_series, variants


def test_ablation_ell_width(benchmark):
    width_series, variants = benchmark.pedantic(
        build_results, rounds=1, iterations=1
    )
    print()
    print(
        grouped_series(
            WIDTHS, width_series,
            title="Ablation: ELL engine width (power-law graph, p=16)",
        )
    )
    print()
    print(
        format_table(
            ["workload", "variant", "sigma", "total bytes", "bw util",
             "cycles"],
            [
                [
                    workload,
                    name,
                    result.sigma,
                    result.total_bytes,
                    result.bandwidth_utilization,
                    result.total_cycles,
                ]
                for (workload, name), result in variants.items()
            ],
            title="ELL vs its variants",
        )
    )

    # compute latency shrinks monotonically with a narrower engine.
    cycles = width_series["compute_cycles"]
    assert cycles == sorted(cycles)

    # JDS never pads, so it always ships fewer bytes than plain ELL.
    for workload in ("graph", "rand-0.4"):
        assert (
            variants[(workload, "jds")].total_bytes
            < variants[(workload, "ell")].total_bytes
        ), workload

    # the hybrid's payoff appears once rows exceed the plane width:
    # on the dense regime it beats plain ELL on the wire, while on the
    # extremely sparse graph its fixed planes are pure overhead.
    assert (
        variants[("rand-0.4", "ell+coo")].total_bytes
        < variants[("rand-0.4", "ell")].total_bytes
    )
    assert (
        variants[("graph", "ell+coo")].total_bytes
        > variants[("graph", "ell")].total_bytes
    )
