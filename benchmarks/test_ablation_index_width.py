"""Ablation: on-wire index width.

The paper streams 32-bit fields, which pins COO's bandwidth
utilization at exactly 1/3.  Partitions are small (8-32), so indices
fit easily in 16 or even 8 bits; this ablation asks how much
utilization the metadata-heavy formats recover with narrower indices —
a knob the paper's insights invite architects to tune.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import FORMATS

from repro.analysis import grouped_series
from repro.core import SpmvSimulator
from repro.hardware import HardwareConfig
from repro.workloads import random_matrix

INDEX_BYTES = (1, 2, 4)


def build_series():
    matrix = random_matrix(1024, 0.05, seed=0)
    series = {name: [] for name in FORMATS}
    for width in INDEX_BYTES:
        config = replace(
            HardwareConfig(partition_size=16), index_bytes=width
        )
        simulator = SpmvSimulator(config)
        profiles = simulator.profiles(matrix)
        for name in FORMATS:
            result = simulator.run_format(name, profiles, "rand-0.05")
            series[name].append(result.bandwidth_utilization)
    return series


def test_ablation_index_width(benchmark):
    series = benchmark.pedantic(build_series, rounds=1, iterations=1)
    print()
    print(
        grouped_series(
            INDEX_BYTES, series,
            title="Ablation: bandwidth utilization vs index bytes "
            "(4 = the paper's 32-bit fields)",
        )
    )

    # COO: utilization = value / (value + 2 * index).
    for width, value in zip(INDEX_BYTES, series["coo"]):
        assert abs(value - 4 / (4 + 2 * width)) < 1e-9

    # dense carries no metadata: immune to the knob.
    assert len(set(series["dense"])) == 1

    # every metadata-carrying format improves with narrower indices.
    for name in FORMATS:
        if name == "dense":
            continue
        values = series[name]
        assert values[0] > values[-1], name

    # the ordering flip the knob enables: with 1-byte indices COO's
    # overhead shrinks from 2x to 0.5x of the payload.
    assert series["coo"][0] > 0.6
