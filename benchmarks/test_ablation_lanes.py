"""Ablation: coarse-grained parallelism (aggregated lanes).

Section 5.1 notes the pipeline "can be aggregated for implementing
coarse-grain parallelism".  This ablation sweeps the lane count and
measures each format's scaling curve on a shared memory channel —
re-deriving insight 1 at the system level: lanes only help formats
whose bottleneck is the decompressor, and every format eventually
hits the memory wall.
"""

from __future__ import annotations

from conftest import FORMATS, config_at

from repro.analysis import grouped_series
from repro.hardware.multi import MultiLanePipeline
from repro.partition import profile_partitions
from repro.workloads import random_matrix

LANES = (1, 2, 4, 8, 16)


def build_series():
    matrix = random_matrix(1024, 0.2, seed=0)
    profiles = profile_partitions(matrix, 16)
    config = config_at(16)
    speedups = {name: [] for name in FORMATS}
    bounds = {}
    for name in FORMATS:
        single = MultiLanePipeline(config, name, 1).run(profiles)
        for lanes in LANES:
            result = MultiLanePipeline(config, name, lanes).run(profiles)
            speedups[name].append(result.speedup_over(single))
            bounds[(name, lanes)] = result.bound
    return speedups, bounds


def test_ablation_lanes(benchmark):
    speedups, bounds = benchmark.pedantic(
        build_series, rounds=1, iterations=1
    )
    print()
    print(
        grouped_series(
            LANES, speedups,
            title="Ablation: speedup vs lane count (density 0.2, p=16)",
        )
    )

    # compute-bound CSC scales the furthest before hitting the wall.
    assert speedups["csc"][-1] == max(
        series[-1] for series in speedups.values()
    )
    assert speedups["csc"][2] > 3.5  # near-linear at 4 lanes

    # dense is already memory-bound: one lane is as good as many.
    assert speedups["dense"][-1] < 1.05

    # monotone, never super-linear.
    for name, series in speedups.items():
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:])), name
        assert series[-1] <= LANES[-1] + 1e-9, name

    # every format is memory-bound by 16 lanes on a shared channel.
    for name in FORMATS:
        assert bounds[(name, 16)] == "memory", name
