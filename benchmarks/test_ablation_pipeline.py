"""Ablation: pipeline bubbles and stalls (the trace view).

Section 4.2 defines the balance ratio because "an imbalance streaming
leads to idle computation or pauses in data transfer".  The aggregate
metric hides *where* the waste goes; the event trace exposes it.  This
ablation traces three archetypes and checks the symptoms match the
diagnosis:

* dense at 32x32 — memory-bound: compute bubbles;
* CSC — compute-bound: memory pauses;
* COO on moderately sparse data — near balance: little of either.
"""

from __future__ import annotations

from conftest import config_at

from repro.analysis import format_table
from repro.hardware import trace_pipeline
from repro.partition import profile_partitions
from repro.workloads import random_matrix


def build_rows():
    rows = []
    cases = (
        ("dense", 32, 0.05),
        ("csc", 16, 0.2),
        ("coo", 16, 0.05),
        ("csr", 16, 0.2),
        ("bcsr", 16, 0.2),
        ("lil", 16, 0.05),
    )
    for name, p, density in cases:
        matrix = random_matrix(1024, density, seed=0)
        profiles = profile_partitions(matrix, p)
        trace = trace_pipeline(config_at(p), name, profiles)
        rows.append(
            [
                name,
                p,
                density,
                trace.bound(),
                trace.compute_occupancy,
                trace.memory_occupancy,
                trace.compute_idle_cycles,
                trace.memory_stall_cycles,
            ]
        )
    return rows


def test_ablation_pipeline_trace(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "format", "p", "density", "bound",
                "comp occ", "mem occ", "comp idle", "mem stalls",
            ],
            rows,
            title="Ablation: where imbalance wastes cycles",
        )
    )
    by_name = {(r[0], r[1]): r for r in rows}

    dense = by_name[("dense", 32)]
    assert dense[3] == "memory"
    assert dense[6] > 0  # compute bubbles

    csc = by_name[("csc", 16)]
    assert csc[3] == "compute"
    assert csc[7] > 0  # memory pauses
    assert csc[4] > 0.95  # decompressor saturated

    # the dominant stage of every case is nearly always busy.
    for row in rows:
        assert max(row[4], row[5]) > 0.75, row[0]
