"""Extension: learned fast-path advisor vs the exact model.

Not a paper figure — this benchmark characterizes the ``repro.advisor``
extension itself.  It trains the ridge advisor on the workload-zoo
training split, then reports (a) ranking agreement with the exact
vectorized model on the held-out split and (b) the advise-latency gap
on paper-adjacent workloads.  The asserted floors are deliberately
looser than the CI accuracy gate (``repro advisor bench
--require-spearman 0.9 --require-top3 0.95 --require-speedup 50``) so
this stays a qualitative shape check, not a second flaky gate.
"""

from __future__ import annotations

from repro.advisor import (
    bench_advisor,
    split_holdout,
    sweep_training_rows,
    train_model,
    workload_zoo,
)
from repro.analysis import format_table

FORMATS = ("coo", "csr", "ell", "dia", "bcsr")
PARTITIONS = (8, 16, 32)
LATENCY_N = 1024


def build_report():
    zoo = workload_zoo(seed=0)
    train_specs, heldout = split_holdout(zoo, 0.25, seed=0)
    rows = sweep_training_rows(train_specs, FORMATS, PARTITIONS)
    model = train_model(train_specs, rows)
    from repro.advisor import default_latency_specs

    return bench_advisor(
        model,
        heldout,
        repeats=1,
        latency_specs=default_latency_specs(LATENCY_N),
    )


def test_ext_advisor(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    accuracy = report["accuracy"]
    latency = report["latency"]
    print()
    print(
        format_table(
            ["workload", "spearman", "exact best", "predicted best",
             "top-3"],
            [
                [w["workload"], round(w["spearman"], 4),
                 "/".join(map(str, w["exact_best"])),
                 "/".join(map(str, w["predicted_best"])), w["top3"]]
                for w in report["per_workload"]
            ],
            title="Extension: advisor ranking accuracy on the "
            "held-out split",
        )
    )
    print(
        format_table(
            ["workload", "nnz", "exact ms", "fast ms", "speedup"],
            [
                [w["workload"], w["nnz"], round(w["exact_ms"], 1),
                 round(w["fast_ms"], 2), round(w["speedup"])]
                for w in latency["per_workload"]
            ],
            title="Extension: advise latency, exact vs fast path",
        )
    )

    # the advisor must rank design points essentially like the exact
    # model on workloads it never saw...
    assert accuracy["spearman_mean"] > 0.9
    assert accuracy["top3_agreement"] > 0.9
    # ...and answer at least an order of magnitude faster; the sized
    # CI gate (>= 50x at n=2048) runs via `repro advisor bench`.
    assert latency["speedup_min"] > 10
    assert latency["fast_ms_geomean"] < latency["exact_ms_geomean"]
