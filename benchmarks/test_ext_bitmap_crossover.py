"""Extension: bitmap (SparTen/SMASH-style) crossover study.

The paper's related work points at bitmask encodings as the
accelerator-native alternative to index metadata.  This bench sweeps
density and finds where the flat bitmap's constant-size mask beats the
per-entry indices of COO/CSR — and where it drowns below them — on the
same platform as the seven paper formats.
"""

from __future__ import annotations

from conftest import config_at

from repro.analysis import grouped_series
from repro.core import SpmvSimulator
from repro.workloads import PAPER_DENSITIES, random_matrix

FORMATS = ("coo", "csr", "ell", "bitmap", "dense")


def build_series():
    simulator = SpmvSimulator(config_at(16))
    series = {name: [] for name in FORMATS}
    sigma = {name: [] for name in FORMATS}
    for density in PAPER_DENSITIES:
        matrix = random_matrix(1024, density, seed=0)
        profiles = simulator.profiles(matrix)
        for name in FORMATS:
            result = simulator.run_format(name, profiles, f"d={density}")
            series[name].append(result.bandwidth_utilization)
            sigma[name].append(result.sigma)
    return series, sigma


def test_ext_bitmap_crossover(benchmark):
    series, sigma = benchmark.pedantic(
        build_series, rounds=1, iterations=1
    )
    print()
    print(
        grouped_series(
            PAPER_DENSITIES, series,
            title="Extension: bandwidth utilization vs density "
            "(bitmap vs index formats)",
        )
    )
    print()
    print(
        grouped_series(
            PAPER_DENSITIES, sigma,
            title="Extension: sigma vs density",
        )
    )

    densities = list(PAPER_DENSITIES)
    low = densities.index(0.001)
    high = densities.index(0.3)

    # extremely sparse: the constant mask is dead weight; COO wins.
    assert series["coo"][low] > series["bitmap"][low]
    # ML-regime density: the mask amortizes; bitmap beats COO and CSR.
    assert series["bitmap"][high] > series["coo"][high]
    assert series["bitmap"][high] > series["csr"][high]
    # bitmap's utilization grows monotonically with density.
    values = series["bitmap"]
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
    # compute side: bitmap behaves like a stream format (sigma grows
    # with density, dominated by the entry walk), never like CSC.
    assert sigma["bitmap"][high] < 5.0
