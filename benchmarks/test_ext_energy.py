"""Extension: total energy — where static power flips the ranking.

Section 6.4: "The static energy, which depends on time, can be an
issue for those slower sparse formats that require less amount of
dynamic energy."  The paper states the effect; this bench quantifies
it: CSC draws the *least* dynamic power of the compute-heavy group,
yet its total energy is the worst because the run is so long, while
fast formats amortize their higher draw.
"""

from __future__ import annotations

from conftest import FORMATS, config_at

from repro.analysis import format_table
from repro.core import SpmvSimulator
from repro.workloads import random_matrix


def build_rows():
    matrix = random_matrix(1024, 0.2, seed=0)
    simulator = SpmvSimulator(config_at(16))
    profiles = simulator.profiles(matrix)
    rows = []
    for name in FORMATS:
        result = simulator.run_format(name, profiles, "rand-0.2")
        rows.append(
            [
                name,
                result.total_seconds * 1e6,
                result.dynamic_power_w,
                result.static_power_w,
                result.dynamic_power_w * result.total_seconds * 1e6,
                result.static_power_w * result.total_seconds * 1e6,
                result.energy_j * 1e6,
            ]
        )
    return rows


def test_ext_energy(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["format", "time us", "dyn W", "static W",
             "dyn uJ", "static uJ", "total uJ"],
            rows,
            title="Extension: energy accounting (density 0.2, p=16)",
        )
    )
    by_name = {r[0]: r for r in rows}

    # CSC: lowest static power class, modest dynamic power...
    assert by_name["csc"][3] == 0.103
    # ...but worst total energy because it runs the longest.
    assert by_name["csc"][6] == max(r[6] for r in rows)

    # static energy dominates dynamic for every format at these
    # power levels (0.1 W floor vs tens of mW dynamic).
    for row in rows:
        assert row[5] > row[4], row[0]

    # the fastest format wins on energy despite any power premium.
    fastest = min(rows, key=lambda r: r[1])
    assert fastest[6] == min(r[6] for r in rows)
