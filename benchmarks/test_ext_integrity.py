"""Extension: detection coverage of the stream-integrity subsystem.

The paper treats compressed tile streams as trustworthy; a hardware
pipeline that consumes them over a real interconnect cannot.  This
bench characterizes what the checksummed framing layer actually buys:
for every registered format it injects seeded corruption (bit flips,
truncated bursts, adversarial field tampering) into framed tile
streams and classifies each strict-mode decode outcome as structural
(caught by layout checks alone), crc (caught only by the checksum),
harmless, silent, or uncaught.

Acceptance floor: >= 200 injections per format (70 per kind x 3
kinds), zero outcomes escaping the FormatIntegrityError taxonomy, and
CRC-backed detection of >= 99% of payload bit flips.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import run_integrity_campaign
from repro.formats import ALL_FORMATS
from repro.formats.corrupt import CORRUPTION_KINDS
from repro.workloads import random_matrix

INJECTIONS_PER_KIND = 70


def build_report():
    matrix = random_matrix(64, 0.08, seed=0)
    return run_integrity_campaign(
        matrix,
        format_names=ALL_FORMATS,
        partition_sizes=(8,),
        injections=INJECTIONS_PER_KIND,
        seed=0,
    )


def test_ext_integrity(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    rows = []
    for summary in report.summaries:
        bitflip = summary.kind("bitflip")
        rows.append(
            [
                summary.format_name,
                summary.injections,
                bitflip.detected_fraction,
                summary.kind("truncate").detected_fraction,
                summary.kind("tamper").detected_fraction,
                sum(kc.silent for kc in summary.coverage),
                summary.framing_overhead_fraction,
            ]
        )
    print()
    print(
        format_table(
            ["format", "inject", "bitflip det", "truncate det",
             "tamper det", "silent", "frame ovh"],
            rows,
            title="Extension: corruption detection coverage "
            "(strict decode, CRC32 framing)",
        )
    )

    # the acceptance floor: every format takes >= 200 injections and
    # none of them escapes the taxonomy as a bare numpy/index error
    assert len(report.summaries) == len(ALL_FORMATS)
    for summary in report.summaries:
        assert summary.injections >= 200, summary.format_name
        assert summary.uncaught == 0, summary.format_name
    assert report.total_injections >= 200 * len(ALL_FORMATS)
    assert report.injections_per_kind == INJECTIONS_PER_KIND
    assert tuple(report.kinds) == CORRUPTION_KINDS

    by_name = {r[0]: r for r in rows}

    # CRC32 over each plane makes payload bit flips essentially
    # impossible to miss
    for name in ALL_FORMATS:
        assert by_name[name][2] >= 0.99, name

    # a truncated frame can never parse: the declared byte budget no
    # longer matches the stream
    for name in ALL_FORMATS:
        assert by_name[name][3] == 1.0, name

    # the detection story is deterministic: same seed, same coverage
    assert report.to_json() == build_report().to_json()
