"""Extension: format robustness to pattern variation (insight 2).

Section 8, insight 2: "a generic format better tolerates the
variations in the distribution of non-zero entries" — stated but not
quantified in the paper.  This bench quantifies it: take a band
matrix (DIA's home turf), apply a symmetric vertex permutation (same
nnz, same degrees, no spatial structure), and measure how much each
format's latency and bandwidth utilization degrade.
"""

from __future__ import annotations

from conftest import FORMATS, config_at

from repro.analysis import format_table
from repro.core import SpmvSimulator
from repro.workloads import band_matrix, permute_symmetric


def build_rows():
    matrix = band_matrix(1024, 8, seed=0)
    shuffled = permute_symmetric(matrix, seed=1)
    simulator = SpmvSimulator(config_at(16))
    structured = simulator.profiles(matrix)
    destroyed = simulator.profiles(shuffled)
    rows = []
    for name in FORMATS:
        before = simulator.run_format(name, structured, "band")
        after = simulator.run_format(name, destroyed, "shuffled")
        rows.append(
            [
                name,
                before.total_cycles,
                after.total_cycles,
                after.total_cycles / before.total_cycles,
                before.bandwidth_utilization,
                after.bandwidth_utilization,
            ]
        )
    return rows


def test_ext_robustness(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["format", "cycles (band)", "cycles (shuffled)",
             "slowdown", "bw (band)", "bw (shuffled)"],
            rows,
            title="Extension: robustness to a structure-destroying "
            "permutation (insight 2)",
        )
    )
    by_name = {r[0]: r for r in rows}

    # COO is fully pattern-oblivious on the wire.
    assert by_name["coo"][4] == by_name["coo"][5]

    # the specialist: DIA's bandwidth utilization collapses when the
    # band disappears...
    dia_bw_drop = by_name["dia"][4] - by_name["dia"][5]
    assert dia_bw_drop > 0.3
    # ...and its slowdown exceeds every generic entry-stream format's.
    for generic in ("coo", "csr", "lil"):
        assert by_name["dia"][3] > by_name[generic][3], generic

    # every format slows down (the permutation also scatters entries
    # over ~20x more non-zero partitions), but the generic
    # entry-stream formats tolerate it at least 2x better than the
    # structured ones — the quantified form of insight 2.
    generic_worst = max(by_name[n][3] for n in ("coo", "csr"))
    structured_best = min(
        by_name[n][3] for n in ("dia", "bcsr", "ell")
    )
    assert generic_worst * 2 < structured_best

    # COO is the most tolerant of the formats that were actually
    # competitive on the band matrix (CSC's relative slowdown is
    # small only because it was already an order of magnitude slow).
    competitive = [r for r in rows if r[0] != "csc"]
    assert by_name["coo"][3] == min(r[3] for r in competitive)
