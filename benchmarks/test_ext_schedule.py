"""Extension: partition-order scheduling (Johnson's rule).

The paper streams partitions in grid order.  Because partitions are
independent, the stream order is a free host-side knob; the two-stage
(memory -> compute) pipeline is a textbook F2 flow shop, so Johnson's
rule orders it optimally.  This bench measures how much that knob is
worth on a mixed workload — a band (compute-friendly, memory-heavy
tiles) threaded through a sparse background (tiny, compute-cheap
tiles).
"""

from __future__ import annotations

from conftest import FORMATS, config_at

from repro.analysis import format_table
from repro.hardware.schedule import schedule_gain
from repro.partition import profile_partitions
from repro.workloads import band_matrix, random_matrix


def build_rows():
    background = random_matrix(1024, 0.01, seed=0)
    band = band_matrix(1024, 32, seed=1)
    profiles = profile_partitions(background.add(band), 16)
    config = config_at(16)
    rows = []
    for name in FORMATS:
        gains = schedule_gain(config, name, profiles)
        rows.append(
            [
                name,
                gains["original"],
                gains["skew_sorted"],
                gains["johnson"],
                gains["original"] / gains["johnson"],
            ]
        )
    return rows


def test_ext_schedule(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["format", "grid order", "skew sorted", "johnson",
             "speedup"],
            rows,
            title="Extension: stream-order scheduling (mixed workload, "
            "p=16)",
        )
    )
    by_name = {r[0]: r for r in rows}

    # Johnson never loses to the grid order.
    for row in rows:
        assert row[3] <= row[1] + 1e-9, row[0]

    # the stream formats on a mixed workload gain measurably.
    assert by_name["coo"][4] > 1.05
    assert by_name["lil"][4] > 1.05

    # dense is order-insensitive: every partition costs the same.
    assert by_name["dense"][4] == 1.0
