"""Figure 10: memory-bandwidth utilization vs density (random, p = 16).

Claims asserted: COO is pinned at ~0.33 for every density (two index
words per value word); every other format improves with density; the
dense format's utilization *is* the density.
"""

from __future__ import annotations

import pytest

from conftest import FORMATS, config_at

from repro.analysis import grouped_series
from repro.core import SpmvSimulator


def build_series(workloads):
    simulator = SpmvSimulator(config_at(16))
    series = {name: [] for name in FORMATS}
    for load in workloads:
        results = simulator.characterize_formats(
            load.matrix, FORMATS, workload=load.name
        )
        for name in FORMATS:
            series[name].append(results[name].bandwidth_utilization)
    return series


def test_fig10_bw_random(benchmark, random_workloads):
    series = benchmark.pedantic(
        build_series, args=(random_workloads,), rounds=1, iterations=1
    )
    densities = [load.parameter for load in random_workloads]
    print()
    print(
        grouped_series(
            densities, series,
            title="Figure 10: bandwidth utilization vs density "
            "(higher is better)",
        )
    )

    # COO: always one value word out of three.
    for value in series["coo"]:
        assert value == pytest.approx(1 / 3)

    # all formats but COO: denser is better-utilized.
    for name in FORMATS:
        if name == "coo":
            continue
        assert series[name][-1] > series[name][0], name

    # dense utilization equals the realized density of non-zero tiles.
    for density, value in zip(densities, series["dense"]):
        if density >= 0.01:
            assert value == pytest.approx(density, rel=0.15)

    # CSR/CSC/LIL approach 1/2 (one index word per value) at density 1;
    # at 0.5 they already beat COO.
    for name in ("csr", "csc", "lil"):
        assert series[name][-1] > 1 / 3, name
        assert series[name][-1] < 0.5, name
