"""Figure 11: memory-bandwidth utilization vs band width (p = 16).

Claims asserted: DIA's utilization on a pure diagonal matrix is close
to one (only the diagonal-number header rides along); for wider bands
DIA loses its edge over the generic formats; COO stays at 0.33.
"""

from __future__ import annotations

import pytest

from conftest import FORMATS, config_at

from repro.analysis import grouped_series
from repro.core import SpmvSimulator


def build_series(workloads):
    simulator = SpmvSimulator(config_at(16))
    series = {name: [] for name in FORMATS}
    for load in workloads:
        results = simulator.characterize_formats(
            load.matrix, FORMATS, workload=load.name
        )
        for name in FORMATS:
            series[name].append(results[name].bandwidth_utilization)
    return series


def test_fig11_bw_band(benchmark, band_workloads):
    series = benchmark.pedantic(
        build_series, args=(band_workloads,), rounds=1, iterations=1
    )
    widths = [int(load.parameter) for load in band_workloads]
    print()
    print(
        grouped_series(
            widths, series,
            title="Figure 11: bandwidth utilization vs band width "
            "(higher is better)",
        )
    )

    # DIA on the pure diagonal: only the header separates it from 1.0.
    assert series["dia"][0] > 0.9
    assert series["dia"][0] == max(
        series[name][0] for name in FORMATS
    )

    # COO pinned at 1/3 everywhere.
    for value in series["coo"]:
        assert value == pytest.approx(1 / 3)

    # DIA's specialist advantage erodes for wider bands (the padded
    # 2-D layout ships more and more empty diagonal slots): its
    # utilization falls monotonically with width and the generic LIL
    # catches up to within a few percent at width 64.
    dia = series["dia"]
    assert all(a >= b - 1e-9 for a, b in zip(dia, dia[1:]))
    assert series["lil"][-1] > 0.4
    assert dia[-1] - series["lil"][-1] < 0.15

    # dense improves with width (band fills more of each tile).
    assert series["dense"][-1] > series["dense"][0]
