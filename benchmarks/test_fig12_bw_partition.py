"""Figure 12: average bandwidth utilization vs partition size.

Averaged per workload group at partition sizes 8/16/32.  Claims
asserted: COO pinned at 0.33 everywhere; for all formats but COO, the
dense/structured groups out-utilize the extremely sparse SuiteSparse
group; DIA's utilization on structured data approaches 1 as the
partition grows (longer diagonals amortize the header).
"""

from __future__ import annotations

import pytest

from conftest import FORMATS, PARTITION_SIZES, config_at

from repro.analysis import grouped_series
from repro.core import SpmvSimulator


def build_table(groups):
    table = {}
    for group_name, workloads in groups.items():
        series = {name: [] for name in FORMATS}
        for p in PARTITION_SIZES:
            simulator = SpmvSimulator(config_at(p))
            sums = {name: 0.0 for name in FORMATS}
            for load in workloads:
                profiles = simulator.profiles(load.matrix)
                for name in FORMATS:
                    result = simulator.run_format(name, profiles, load.name)
                    sums[name] += result.bandwidth_utilization
            for name in FORMATS:
                series[name].append(sums[name] / len(workloads))
        table[group_name] = series
    return table


def test_fig12_bw_partition(
    benchmark, suitesparse_workloads, random_workloads, band_workloads
):
    groups = {
        "suitesparse": suitesparse_workloads,
        "random": random_workloads,
        "band": band_workloads,
    }
    table = benchmark.pedantic(
        build_table, args=(groups,), rounds=1, iterations=1
    )
    print()
    for group_name, series in table.items():
        print(
            grouped_series(
                PARTITION_SIZES, series,
                title=f"Figure 12 ({group_name}): mean bandwidth "
                "utilization vs partition size",
            )
        )
        print()

    for group_name, series in table.items():
        for value in series["coo"]:
            assert value == pytest.approx(1 / 3), group_name

    # denser/structured groups out-utilize the extremely sparse
    # SuiteSparse group for every format but COO.
    for name in FORMATS:
        if name == "coo":
            continue
        suite = table["suitesparse"][name][1]
        band = table["band"][name][1]
        assert band > suite, name

    # DIA on band matrices: utilization grows with partition size.
    dia_band = table["band"]["dia"]
    assert dia_band[-1] > dia_band[0]
