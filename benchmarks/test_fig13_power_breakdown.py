"""Figure 13: dynamic power broken into logic, BRAM and signals.

Claims asserted: logic power rises (or holds) with partition size for
every format whose engine widens with the partition; signal power
dominates the overall dynamic-power trend; static power takes the two
values Section 6.4 reports.
"""

from __future__ import annotations

from conftest import FORMATS, PARTITION_SIZES, config_at

from repro.analysis import format_table
from repro.hardware import estimate_power, static_power_w


def build_rows():
    rows = []
    for name in FORMATS:
        for p in PARTITION_SIZES:
            power = estimate_power(name, config_at(p))
            rows.append(
                [
                    name, p,
                    power.logic_w, power.bram_w, power.signals_w,
                    power.dynamic_w, power.static_w,
                ]
            )
    return rows


def test_fig13_power_breakdown(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["format", "p", "logic W", "BRAM W", "signals W",
             "dynamic W", "static W"],
            rows,
            title="Figure 13: dynamic power breakdown",
        )
    )

    by_cell = {(r[0], r[1]): r for r in rows}

    # Figure 13a: logic power non-decreasing with partition size
    # (except ELL, whose engine width is fixed at 6).
    for name in FORMATS:
        if name == "ell":
            continue
        logic = [by_cell[(name, p)][2] for p in PARTITION_SIZES]
        assert logic == sorted(logic), name

    # signals dominate BRAM power everywhere, so the dynamic total
    # follows the signal trend (the paper's conclusion).
    for row in rows:
        assert row[4] >= row[3]
        signal_share = row[4] / row[5]
        assert signal_share > 1 / 3

    # static power: the two published values.
    for name in FORMATS:
        assert static_power_w(name) in (0.121, 0.103)
    for name in ("dense", "csr", "bcsr", "lil", "ell"):
        assert static_power_w(name) == 0.121
    for name in ("csc", "coo", "dia"):
        assert static_power_w(name) == 0.103
