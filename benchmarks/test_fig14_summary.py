"""Figure 14: the normalized six-metric summary per workload group.

Every metric is normalized across formats so 1 is the best and 0 the
worst.  Claims asserted: COO ranks at the top for SuiteSparse (the
paper's "a non-specialized format such as COO performs faster and
better utilizes the memory bandwidth"); CSC ranks last everywhere; DIA
wins bandwidth utilization on the structured band group.
"""

from __future__ import annotations

from conftest import FORMATS

from repro.analysis import format_table
from repro.core import SUMMARY_METRICS, summarize


def build_scores(runner, groups):
    return {
        group_name: summarize(
            runner.run_grid(
                workloads, FORMATS, partition_sizes=(16,)
            ).results,
            FORMATS,
        )
        for group_name, workloads in groups.items()
    }


def test_fig14_summary(
    benchmark, sweep_runner,
    suitesparse_workloads, random_workloads, band_workloads,
):
    groups = {
        "suitesparse": suitesparse_workloads,
        "random": random_workloads,
        "band": band_workloads,
    }
    scores = benchmark.pedantic(
        build_scores, args=(sweep_runner, groups), rounds=1, iterations=1
    )
    print()
    metric_names = list(SUMMARY_METRICS)
    for group_name, format_scores in scores.items():
        print(
            format_table(
                ["format"] + metric_names + ["overall"],
                [
                    [s.format_name]
                    + [s.scores[m] for m in metric_names]
                    + [s.overall]
                    for s in format_scores
                ],
                title=f"Figure 14 ({group_name}): 1 = best, 0 = worst",
            )
        )
        print()

    for group_name, format_scores in scores.items():
        by_name = {s.format_name: s for s in format_scores}
        # scores normalized into [0, 1].
        for score in format_scores:
            for value in score.scores.values():
                assert 0.0 <= value <= 1.0

        # CSC never ranks above the bottom three overall.
        ranked = sorted(
            format_scores, key=lambda s: s.overall, reverse=True
        )
        bottom = [s.format_name for s in ranked[-3:]]
        assert "csc" in bottom, group_name
        del by_name

    # SuiteSparse: COO among the top formats on overhead (the paper's
    # "COO performs faster ... compared to a specialized format such
    # as DIA") and the bandwidth winner.
    suite = {s.format_name: s for s in scores["suitesparse"]}
    assert suite["coo"].scores["overhead"] >= suite["dia"].scores["overhead"]
    assert suite["coo"].scores["bandwidth_utilization"] == max(
        s.scores["bandwidth_utilization"] for s in scores["suitesparse"]
    )

    # band group: the specialist DIA wins bandwidth utilization.
    band = {s.format_name: s for s in scores["band"]}
    assert band["dia"].scores["bandwidth_utilization"] == max(
        s.scores["bandwidth_utilization"] for s in scores["band"]
    )
