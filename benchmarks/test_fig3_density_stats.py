"""Figure 3: density and spatial locality of the SuiteSparse set.

Three panels, each averaged over the non-zero partitions at partition
sizes 8/16/32: (a) non-zero values per partition, (b) non-zero values
within the non-zero rows, and (c) non-zero rows per partition.
"""

from __future__ import annotations

from conftest import PARTITION_SIZES

from repro.analysis import format_table
from repro.partition import partition_statistics


def build_stats(workloads):
    rows = []
    for load in workloads:
        stats = {p: partition_statistics(load.matrix, p)
                 for p in PARTITION_SIZES}
        rows.append((load.name, stats))
    return rows


def test_fig3_density_stats(benchmark, suitesparse_workloads):
    rows = benchmark.pedantic(
        build_stats, args=(suitesparse_workloads,), rounds=1, iterations=1
    )
    print()
    for panel, attribute in (
        ("(a) % non-zero values in partitions", "avg_partition_density"),
        ("(b) % non-zero values in non-zero rows", "avg_row_density"),
        ("(c) % non-zero rows in partitions", "avg_nnz_row_fraction"),
    ):
        table_rows = [
            [name] + [100.0 * getattr(stats[p], attribute)
                      for p in PARTITION_SIZES]
            for name, stats in rows
        ]
        print(
            format_table(
                ["matrix", "p=8", "p=16", "p=32"],
                table_rows,
                title=f"Figure 3{panel}",
            )
        )
        print()

    for _, stats in rows:
        for p in PARTITION_SIZES:
            s = stats[p]
            # row density can never be below partition density, and all
            # three statistics are valid fractions.
            assert 0.0 < s.avg_partition_density <= 1.0
            assert s.avg_row_density >= s.avg_partition_density - 1e-12
            assert 0.0 < s.avg_nnz_row_fraction <= 1.0

    # locality: growing the partition makes per-partition density drop
    # for the extremely sparse graph matrices.
    for name, stats in rows:
        if stats[8].avg_partition_density < 0.2:
            assert (
                stats[32].avg_partition_density
                <= stats[8].avg_partition_density + 1e-12
            ), name
