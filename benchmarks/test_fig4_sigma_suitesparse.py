"""Figure 4: decompression overhead sigma on SuiteSparse, p = 16.

One bar per (matrix, format); lower is better; sigma = 1 is the dense
baseline.  The paper's headline findings asserted here: the dense bar
is exactly 1, CSC is the worst case, and sparse formats beat dense on
the extremely sparse matrices.
"""

from __future__ import annotations

from conftest import FORMATS, config_at

from repro.analysis import format_table
from repro.core import SpmvSimulator


def build_sigma(workloads):
    simulator = SpmvSimulator(config_at(16))
    table = {}
    for load in workloads:
        results = simulator.characterize_formats(
            load.matrix, FORMATS, workload=load.name
        )
        table[load.name] = {
            name: results[name].sigma for name in FORMATS
        }
    return table


def test_fig4_sigma_suitesparse(benchmark, suitesparse_workloads):
    table = benchmark.pedantic(
        build_sigma, args=(suitesparse_workloads,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["matrix"] + list(FORMATS),
            [[name] + [sigmas[f] for f in FORMATS]
             for name, sigmas in table.items()],
            title="Figure 4: sigma (lower is better), 16x16 partitions",
        )
    )

    for name, sigmas in table.items():
        assert sigmas["dense"] == 1.0, name
        # CSC's orientation mismatch is never the best choice.
        best = min(sigmas, key=sigmas.get)
        assert best != "csc", name

    # averaged over the suite, CSC must be the worst format.
    avg = {
        fmt: sum(sigmas[fmt] for sigmas in table.values()) / len(table)
        for fmt in FORMATS
    }
    assert max(avg, key=avg.get) == "csc"
    # extremely sparse matrices: the stream formats beat dense.
    wins = sum(
        1 for sigmas in table.values() if sigmas["coo"] < 1.0
    )
    assert wins >= len(table) // 2
