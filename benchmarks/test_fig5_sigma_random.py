"""Figure 5: sigma vs density on random matrices, p = 16.

The paper's claims: sigma increases with density for every format, and
increases most dramatically for COO, CSR and CSC; CSC reaches ~20x or
more; ELL's sigma is flat (its compute is pattern-independent).
"""

from __future__ import annotations

from conftest import FORMATS

from repro.analysis import grouped_series


def build_series(runner, workloads):
    outcome = runner.run_grid(workloads, FORMATS, partition_sizes=(16,))
    cube = outcome.by_coords()
    return {
        name: [cube[(load.name, name, 16)].sigma for load in workloads]
        for name in FORMATS
    }


def test_fig5_sigma_random(benchmark, sweep_runner, random_workloads):
    series = benchmark.pedantic(
        build_series, args=(sweep_runner, random_workloads),
        rounds=1, iterations=1,
    )
    densities = [load.parameter for load in random_workloads]
    print()
    print(
        grouped_series(
            densities, series,
            title="Figure 5: sigma vs density (16x16 partitions)",
        )
    )

    assert all(s == 1.0 for s in series["dense"])
    # ELL: flat, pattern-independent.
    assert max(series["ell"]) - min(series["ell"]) < 1e-12
    # monotone growth with density for the entry-stream formats.
    for name in ("coo", "csr", "csc"):
        values = series[name]
        assert values[0] < values[-1]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:])), name
    # CSC is the runaway worst case at high density (paper: up to 21x).
    assert series["csc"][-1] > 15.0
    assert series["csc"][-1] == max(
        series[name][-1] for name in FORMATS
    )
    # the dramatic growers grow faster than the structured formats.
    for dramatic in ("coo", "csr", "csc"):
        growth = series[dramatic][-1] / series[dramatic][0]
        for steady in ("bcsr", "lil", "dia"):
            steady_growth = series[steady][-1] / series[steady][0]
            assert growth > steady_growth, (dramatic, steady)
