"""Figure 6: sigma vs band width, p = 16.

Band matrices from width 1 (pure diagonal) to 64.  Paper claims: sigma
grows with width for all formats, most dramatically for COO, CSR and
CSC; CSC reaches ~30x; DIA stays moderate because the data is exactly
its specialty.
"""

from __future__ import annotations

from conftest import FORMATS, config_at

from repro.analysis import grouped_series
from repro.core import SpmvSimulator


def build_series(workloads):
    simulator = SpmvSimulator(config_at(16))
    series = {name: [] for name in FORMATS}
    for load in workloads:
        results = simulator.characterize_formats(
            load.matrix, FORMATS, workload=load.name
        )
        for name in FORMATS:
            series[name].append(results[name].sigma)
    return series


def test_fig6_sigma_band(benchmark, band_workloads):
    series = benchmark.pedantic(
        build_series, args=(band_workloads,), rounds=1, iterations=1
    )
    widths = [int(load.parameter) for load in band_workloads]
    print()
    print(
        grouped_series(
            widths, series,
            title="Figure 6: sigma vs band width (16x16 partitions)",
        )
    )

    assert all(s == 1.0 for s in series["dense"])
    # growth from narrow to wide bands for the entry-stream formats.
    for name in ("coo", "csr", "csc"):
        assert series[name][-1] > series[name][1], name
    # CSC worst, in the paper's reported ballpark (~30x).
    assert series["csc"][-1] == max(
        series[name][-1] for name in FORMATS
    )
    assert series["csc"][-1] > 20.0
    # DIA handles wide bands far better than the generic stream formats.
    assert series["dia"][-1] < series["coo"][-1]
    assert series["dia"][-1] < series["csr"][-1]
    # ELL flat again.
    assert max(series["ell"]) - min(series["ell"]) < 1e-12
