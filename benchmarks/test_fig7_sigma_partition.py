"""Figure 7: average sigma vs partition size for the three groups.

Paper claims asserted: ELL's relative compute cost falls as the
partition grows (its padded width of 6 builds a shallower adder tree
than the widening dense engine), and BCSR deteriorates on random
matrices as the partition grows (more block-rows of wasted dot
products).
"""

from __future__ import annotations

from conftest import FORMATS, PARTITION_SIZES

from repro.analysis import grouped_series


def build_table(runner, groups):
    table = {}
    for group_name, workloads in groups.items():
        cube = runner.run_grid(
            workloads, FORMATS, partition_sizes=PARTITION_SIZES
        ).by_coords()
        table[group_name] = {
            name: [
                sum(
                    cube[(load.name, name, p)].sigma for load in workloads
                ) / len(workloads)
                for p in PARTITION_SIZES
            ]
            for name in FORMATS
        }
    return table


def test_fig7_sigma_partition(
    benchmark, sweep_runner,
    suitesparse_workloads, random_workloads, band_workloads,
):
    groups = {
        "suitesparse": suitesparse_workloads,
        "random": random_workloads,
        "band": band_workloads,
    }
    table = benchmark.pedantic(
        build_table, args=(sweep_runner, groups), rounds=1, iterations=1
    )
    print()
    for group_name, series in table.items():
        print(
            grouped_series(
                PARTITION_SIZES, series,
                title=f"Figure 7 ({group_name}): mean sigma vs partition size",
            )
        )
        print()

    for group_name, series in table.items():
        # dense is 1 by definition at every partition size.
        assert all(s == 1.0 for s in series["dense"]), group_name
        # ELL improves (relative to dense) as partitions grow.
        assert series["ell"][-1] < series["ell"][0], group_name
        # ELL at 32x32 beats the dense baseline.
        assert series["ell"][-1] < 1.0, group_name
        # CSC is the worst format once the engine is 16 wide or more
        # (at 8x8 on extremely sparse tiles it can tie with ELL's
        # fixed padding cost).
        for index, p in enumerate(PARTITION_SIZES):
            ranked = sorted(
                FORMATS, key=lambda name: series[name][index], reverse=True
            )
            if p >= 16:
                assert ranked[0] == "csc", (group_name, p)
            else:
                assert "csc" in ranked[:2], (group_name, p)

    # BCSR on random matrices: bigger partitions hurt.
    random_bcsr = table["random"]["bcsr"]
    assert random_bcsr[-1] > random_bcsr[0]
