"""Figure 8: balance ratio — memory latency vs compute latency.

One point per (format, partition size, workload group); the blue line
of the figure is balance ratio = 1.  Paper claims asserted: every
sparse format transfers less than dense; dense sits closest to balance
and drifts memory-bound as partitions grow; CSR/CSC are compute-bound;
high density pushes BCSR toward the memory-bound side.
"""

from __future__ import annotations

import math

from conftest import FORMATS, PARTITION_SIZES, config_at

from repro.analysis import format_table
from repro.core import SpmvSimulator


def build_points(groups):
    points = {}
    for group_name, workloads in groups.items():
        for p in PARTITION_SIZES:
            simulator = SpmvSimulator(config_at(p))
            profile_cache = [
                simulator.profiles(load.matrix) for load in workloads
            ]
            for name in FORMATS:
                mem = comp = 0
                for load, profiles in zip(workloads, profile_cache):
                    result = simulator.run_format(name, profiles, load.name)
                    mem += result.memory_cycles
                    comp += result.compute_cycles
                points[(group_name, name, p)] = (mem, comp)
    return points


def test_fig8_balance_ratio(
    benchmark, suitesparse_workloads, random_workloads, band_workloads
):
    groups = {
        "suitesparse": suitesparse_workloads,
        "random": random_workloads,
        "band": band_workloads,
    }
    points = benchmark.pedantic(
        build_points, args=(groups,), rounds=1, iterations=1
    )
    print()
    rows = [
        [group, name, p, mem, comp, mem / comp]
        for (group, name, p), (mem, comp) in sorted(points.items())
    ]
    print(
        format_table(
            ["group", "format", "p", "mem cycles", "comp cycles", "ratio"],
            rows,
            title="Figure 8: balance ratio (memory / compute); 1 = balanced",
        )
    )

    # "the latency to transmit data and metadata for all sparse
    # formats is much lower than for the dense format" — true on the
    # paper's sparse workloads (the SuiteSparse group); at density 0.5
    # the index/padding overhead of COO/ELL/DIA legitimately exceeds
    # the dense transfer (cf. Figure 10, where dense utilization 0.5
    # beats COO's 0.33).
    for p in PARTITION_SIZES:
        dense_mem, _ = points[("suitesparse", "dense", p)]
        for name in FORMATS:
            if name == "dense":
                continue
            mem, _ = points[("suitesparse", name, p)]
            assert mem < dense_mem, (name, p)

    for group in groups:
        # dense drifts memory-bound as the partition grows.
        dense_ratios = [
            points[(group, "dense", p)][0] / points[(group, "dense", p)][1]
            for p in PARTITION_SIZES
        ]
        assert dense_ratios[-1] > dense_ratios[0], group

        # CSR and CSC are compute-bound (ratio < 1) in every group.
        for name in ("csr", "csc"):
            mem, comp = points[(group, name, 16)]
            assert mem / comp < 1.0, (group, name)

        # dense is closer to balance than the compute-bound formats.
        dense_dist = abs(math.log(points[(group, "dense", 16)][0]
                                  / points[(group, "dense", 16)][1]))
        csc_dist = abs(math.log(points[(group, "csc", 16)][0]
                                / points[(group, "csc", 16)][1]))
        assert dense_dist < csc_dist, group

    # density pushes BCSR toward the memory-bound side: the random
    # group (up to 0.5 density) must be more memory-bound than the
    # sparse SuiteSparse group.
    random_bcsr = (points[("random", "bcsr", 16)][0]
                   / points[("random", "bcsr", 16)][1])
    suite_bcsr = (points[("suitesparse", "bcsr", 16)][0]
                  / points[("suitesparse", "bcsr", 16)][1])
    assert random_bcsr > suite_bcsr
