"""Figure 9: throughput vs total latency on 8000 x 8000 matrices.

One panel per format; each point is one workload, one line thickness
per partition size.  The paper's scale (8000 x 8000) is kept; the
workload set spans the band widths plus sparse random fills.

Claims asserted: BCSR, LIL and DIA reach the highest peak throughput;
for every format but CSC larger partitions raise the peak throughput;
ELL's throughput stays flat while the others rise with latency toward
a maximum.
"""

from __future__ import annotations

import pytest

from conftest import FORMATS, PARTITION_SIZES

from repro.analysis import format_table
from repro.engine import WorkloadSpec

N = 8000


@pytest.fixture(scope="module")
def specs_8000():
    """Lazy specs: each worker materializes its own 8000 x 8000 matrix."""
    return [
        WorkloadSpec.band(N, 4, seed=0),
        WorkloadSpec.band(N, 16, seed=0),
        WorkloadSpec.band(N, 64, seed=0),
        WorkloadSpec.random(N, 0.0001, seed=0),
        WorkloadSpec.random(N, 0.001, seed=0),
        WorkloadSpec.random(N, 0.01, seed=0),
    ]


def build_points(runner, specs):
    cube = runner.run_grid(
        specs, FORMATS, partition_sizes=PARTITION_SIZES
    ).by_coords()
    return {
        (fmt, p, name): (result.total_seconds, result.throughput_bytes_per_s)
        for (name, fmt, p), result in cube.items()
    }


def test_fig9_throughput(benchmark, sweep_runner, specs_8000):
    points = benchmark.pedantic(
        build_points, args=(sweep_runner, specs_8000), rounds=1, iterations=1
    )
    print()
    rows = [
        [fmt, p, name, seconds * 1e3, throughput / 1e9]
        for (fmt, p, name), (seconds, throughput) in sorted(points.items())
    ]
    print(
        format_table(
            ["format", "p", "workload", "latency (ms)", "thr (GB/s)"],
            rows,
            title="Figure 9: throughput vs latency, 8000x8000 SpMV",
        )
    )

    def peak(fmt: str, p: int) -> float:
        return max(
            throughput
            for (f, size, _), (_, throughput) in points.items()
            if f == fmt and size == p
        )

    # BCSR / LIL / DIA reach the highest peak throughput among the
    # compressed formats (paper, Section 6.3): each lands within 5% of
    # the best compressed format, while CSR and CSC do not.
    compressed = [f for f in FORMATS if f != "dense"]
    best = max(peak(f, 32) for f in compressed)
    for fmt in ("bcsr", "lil", "dia"):
        assert peak(fmt, 32) >= 0.95 * best, fmt
    for fmt in ("csr", "csc"):
        assert peak(fmt, 32) < 0.95 * best, fmt

    # all formats but CSC: throughput grows with partition size.
    for fmt in FORMATS:
        if fmt == "csc":
            continue
        assert peak(fmt, 32) > peak(fmt, 8), fmt

    # CSC gains the least from larger partitions.
    gains = {
        fmt: peak(fmt, 32) / peak(fmt, 8)
        for fmt in FORMATS
    }
    assert gains["csc"] == min(gains.values())

    # dense: throughput independent of latency (Section 6.3) — every
    # workload lands at the same bytes/second.
    for p in PARTITION_SIZES:
        dense = [
            throughput
            for (f, size, _), (_, throughput) in points.items()
            if f == "dense" and size == p
        ]
        assert max(dense) / min(dense) < 1.02

    # ELL behaves the same on the random sweep: total latency and data
    # grow at the same pace, so throughput barely moves.
    ell_random = [
        throughput
        for (f, size, name), (_, throughput) in points.items()
        if f == "ell" and size == 8 and name.startswith("rand")
    ]
    assert max(ell_random) / min(ell_random) < 1.15
