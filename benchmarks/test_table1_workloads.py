"""Table 1: the workload inventory.

Regenerates the paper's Table 1 rows (ID, name, dimension, NNZ, kind)
alongside the stand-in actually used (scaled dimension, realized NNZ,
realized average degree) so the substitution is auditable.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.workloads import TABLE1, standin


def build_table(max_dim: int = 2048):
    rows = []
    for record in TABLE1:
        matrix = standin(record, max_dim=max_dim, seed=0)
        rows.append(
            [
                record.id,
                record.name,
                record.dim_millions,
                record.nnz_millions,
                record.kind,
                matrix.n_rows,
                matrix.nnz,
                matrix.nnz / matrix.n_rows,
            ]
        )
    return rows


def test_table1_workloads(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "ID", "Name", "Dim(M)", "NNZ(M)", "Kind",
                "standin dim", "standin nnz", "standin deg",
            ],
            rows,
            title="Table 1: SuiteSparse matrices and their stand-ins",
        )
    )
    assert len(rows) == 20
    for row in rows:
        record_degree = row[3] / row[2]
        realized_degree = row[7]
        # the stand-in must stay in the original's degree regime
        assert realized_degree <= 1.3 * record_degree
