"""Table 2: FPGA resource utilization and dynamic power.

Prints the model's estimate side-by-side with the published numbers
for every (format, partition size) cell, and asserts the comparative
findings of Section 6.4 that the model is built to preserve.
"""

from __future__ import annotations

from conftest import PARTITION_SIZES, config_at

from repro.analysis import format_table
from repro.hardware import (
    PAPER_TABLE2,
    TOTAL_BRAM_18K,
    estimate_power,
    estimate_resources,
)


def build_rows():
    rows = []
    for paper_row in PAPER_TABLE2:
        name = paper_row.format_name
        for p in PARTITION_SIZES:
            config = config_at(p)
            resources = estimate_resources(name, config)
            power = estimate_power(name, config, resources)
            published = paper_row.at(p)
            rows.append(
                [
                    name,
                    p,
                    resources.bram_18k,
                    published[0],
                    resources.ff_thousands,
                    published[1],
                    resources.lut_thousands,
                    published[2],
                    power.dynamic_w,
                    published[3],
                ]
            )
    return rows


def test_table2_resources(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "format", "p",
                "BRAM", "BRAM(paper)",
                "FF(k)", "FF(paper)",
                "LUT(k)", "LUT(paper)",
                "dynW", "dynW(paper)",
            ],
            rows,
            title="Table 2: model vs published resources & dynamic power",
        )
    )

    by_cell = {(r[0], r[1]): r for r in rows}

    # dense and BCSR pin one BRAM bank per partition row.
    for p in PARTITION_SIZES:
        assert by_cell[("dense", p)][2] == p
        assert by_cell[("bcsr", p)][2] == p

    # CSR/CSC keep the smallest BRAM footprint at 8/16.
    for p in (8, 16):
        small = min(by_cell[(f, p)][2] for f, _ in by_cell if _ == p)
        assert by_cell[("csr", p)][2] <= small + 1
        assert by_cell[("csc", p)][2] <= small + 1

    # ELL trades FFs for BRAM at 32x32.
    assert by_cell[("ell", 32)][4] < by_cell[("ell", 16)][4]
    assert by_cell[("ell", 32)][2] > by_cell[("ell", 8)][2]

    # every design fits the device.
    for row in rows:
        assert row[2] <= TOTAL_BRAM_18K

    # model vs paper: BRAM within a small absolute band everywhere,
    # FF/LUT within 3x.
    for row in rows:
        name, p = row[0], row[1]
        assert abs(row[2] - row[3]) <= max(2, 0.6 * row[3]), (name, p)
        assert 0.25 * row[5] <= row[4] <= 4.0 * row[5], (name, p)
        assert 0.25 * row[7] <= row[6] <= 4.0 * row[7], (name, p)
