#!/usr/bin/env python
"""Design-space exploration: Pareto frontiers for an architect.

Section 4.2 calls resource utilization and power "our other metrics
for the full design-space exploration".  This example enumerates the
(format, partition size, lane count) space for a pruned-model weight
matrix, prints the latency-vs-power Pareto frontier, and shows how a
tight BRAM budget moves the chosen design.

Run:  python examples/design_space.py [--workers N]
"""

from __future__ import annotations

import argparse

try:
    import repro  # noqa: F401 — probe for an installed package
except ModuleNotFoundError:  # running from a source checkout
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )

from repro.analysis import format_table
from repro.core import Constraints, explore, pareto_frontier, recommend
from repro.workloads import random_matrix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep engine (default: 1)",
    )
    args = parser.parse_args()
    weights = random_matrix(1024, density=0.2, seed=6)
    print(f"workload: pruned weight matrix {weights!r}")
    print()

    points = explore(
        weights, lane_counts=(1, 2, 4), max_workers=args.workers
    )
    frontier = pareto_frontier(
        points, ("total_cycles", "dynamic_power_w")
    )
    print(
        format_table(
            ["format", "p", "lanes", "latency us", "dyn W", "BRAM"],
            [
                [
                    point.format_name,
                    point.partition_size,
                    point.n_lanes,
                    point.metric("total_seconds") * 1e6,
                    point.metric("dynamic_power_w"),
                    point.metric("bram_18k"),
                ]
                for point in frontier
            ],
            title=f"Latency / power Pareto frontier "
            f"({len(frontier)} of {len(points)} designs)",
        )
    )
    print()

    resource_frontier = pareto_frontier(
        points, ("total_cycles", "bram_18k")
    )
    print(
        format_table(
            ["format", "p", "lanes", "latency us", "BRAM", "LUT"],
            [
                [
                    point.format_name,
                    point.partition_size,
                    point.n_lanes,
                    point.metric("total_seconds") * 1e6,
                    point.metric("bram_18k"),
                    point.metric("lut"),
                ]
                for point in resource_frontier
            ],
            title="Latency / BRAM Pareto frontier",
        )
    )
    print()

    fast = recommend(weights, objective="latency")
    frugal = recommend(
        weights,
        objective="latency",
        constraints=Constraints(max_bram_18k=8),
    )
    print(
        f"unconstrained pick: {fast.format_name} at "
        f"{fast.partition_size}x{fast.partition_size} "
        f"({fast.best.resources.bram_18k} BRAM)"
    )
    print(
        f"under an 8-BRAM budget: {frugal.format_name} at "
        f"{frugal.partition_size}x{frugal.partition_size} "
        f"({frugal.best.resources.bram_18k} BRAM, "
        f"{len(frugal.rejected)} designs rejected)"
    )


if __name__ == "__main__":
    main()
