#!/usr/bin/env python
"""Format advisor: the paper's Figure 14 as an interactive tool.

Given any matrix — here, one Table 1 stand-in from each structural
class — the advisor sweeps every format and partition size, normalizes
the six Copernicus metrics (1 = best, 0 = worst), and prints a ranked
recommendation, mirroring how Section 8 suggests architects should
choose formats.

Run:  python examples/format_advisor.py
"""

from __future__ import annotations

try:
    import repro  # noqa: F401 — probe for an installed package
except ModuleNotFoundError:  # running from a source checkout
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )

from repro import SpmvSimulator, HardwareConfig
from repro.analysis import format_table
from repro.core import SUMMARY_METRICS, summarize
from repro.formats import PAPER_FORMATS
from repro.matrix import SparseMatrix
from repro.workloads import standin_by_id


def advise(name: str, matrix: SparseMatrix) -> None:
    print(f"== {name}: {matrix!r}")
    results = []
    for p in (8, 16, 32):
        simulator = SpmvSimulator(HardwareConfig(partition_size=p))
        profiles = simulator.profiles(matrix)
        results.extend(
            simulator.run_format(fmt, profiles, workload=name)
            for fmt in PAPER_FORMATS
        )
    scores = summarize(results, PAPER_FORMATS)
    ranked = sorted(scores, key=lambda s: s.overall, reverse=True)
    metric_names = list(SUMMARY_METRICS)
    print(
        format_table(
            ["rank", "format"] + metric_names + ["overall"],
            [
                [index + 1, score.format_name]
                + [score.scores[m] for m in metric_names]
                + [score.overall]
                for index, score in enumerate(ranked)
            ],
        )
    )
    best = ranked[0]
    runner_up = ranked[1]
    print(
        f"-> recommend {best.format_name} "
        f"(overall {best.overall:.2f}); runner-up "
        f"{runner_up.format_name} ({runner_up.overall:.2f})"
    )
    print()


def main() -> None:
    cases = {
        "web graph (WG)": standin_by_id("WG", max_dim=1024, seed=0),
        "road network (RO)": standin_by_id("RO", max_dim=1024, seed=0),
        "thermal FEM (TH)": standin_by_id("TH", max_dim=1024, seed=0),
        "kronecker (KR)": standin_by_id("KR", max_dim=1024, seed=0),
    }
    for name, matrix in cases.items():
        advise(name, matrix)


if __name__ == "__main__":
    main()
