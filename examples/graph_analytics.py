#!/usr/bin/env python
"""Graph analytics scenario: BFS, shortest paths and components.

Section 3.3 lists breadth-first search and single-source shortest path
alongside PageRank as the SpMV-shaped graph algorithms.  This example
runs all of them on a road-network stand-in via semiring SpMV, then
traces the adjacency matrix through the accelerator pipeline to show
*where* a mismatched format wastes cycles.

Run:  python examples/graph_analytics.py
"""

from __future__ import annotations

try:
    import repro  # noqa: F401 — probe for an installed package
except ModuleNotFoundError:  # running from a source checkout
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )

import numpy as np

from repro import HardwareConfig, profile_partitions
from repro.analysis import format_table, render_timeline
from repro.apps import (
    breadth_first_search,
    connected_components,
    single_source_shortest_paths,
)
from repro.hardware import trace_pipeline
from repro.matrix import SparseMatrix
from repro.workloads import road_network


def main() -> None:
    graph = road_network(900, rewire=0.02, seed=11)
    rng = np.random.default_rng(4)
    weighted = SparseMatrix(
        graph.shape, graph.rows, graph.cols,
        rng.uniform(1.0, 10.0, size=graph.nnz),
    )
    print(
        f"road network: {graph.n_rows} junctions, {graph.nnz} road "
        f"segments"
    )
    print()

    bfs = breadth_first_search(graph, source=0)
    print(
        f"BFS from junction 0: {int(bfs.reachable().sum())} reachable, "
        f"eccentricity {bfs.levels.max()}, {bfs.spmv_count} boolean "
        "SpMVs"
    )

    sssp = single_source_shortest_paths(weighted, source=0)
    finite = np.isfinite(sssp.distances)
    print(
        f"SSSP from junction 0: mean travel cost "
        f"{sssp.distances[finite].mean():.1f}, farthest "
        f"{sssp.distances[finite].max():.1f}, {sssp.spmv_count} "
        "tropical SpMVs"
    )

    labels = connected_components(graph)
    print(f"connected components: {len(set(labels))}")
    print()

    # every iteration above streams the adjacency through the
    # accelerator; compare the timeline of a matched vs a mismatched
    # format on exactly that operand.
    config = HardwareConfig(partition_size=16)
    profiles = profile_partitions(graph, 16)
    print("Streaming the adjacency matrix, per format:")
    print()
    rows = []
    for name in ("coo", "csr", "dia", "csc"):
        trace = trace_pipeline(config, name, profiles)
        rows.append(
            [
                name,
                trace.total_cycles,
                trace.bound(),
                trace.compute_occupancy,
                trace.compute_idle_cycles,
                trace.memory_stall_cycles,
            ]
        )
    print(
        format_table(
            ["format", "cycles", "bound", "comp occ", "bubbles",
             "stalls"],
            rows,
        )
    )
    print()
    for name in ("coo", "csc"):
        print(render_timeline(trace_pipeline(config, name, profiles)))
        print()


if __name__ == "__main__":
    main()
