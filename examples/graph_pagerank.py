#!/usr/bin/env python
"""Graph analytics scenario: PageRank over a web-graph stand-in.

Section 3.3's second domain: vertex-centric graph algorithms reduce to
repeated SpMV over the adjacency structure.  The example ranks a
power-law web graph through encoded sparse formats, verifies that the
ranking is format-independent, and uses the hardware model to compare
formats on the graph's transition matrix — reproducing the paper's
insight that a generic format (COO) beats the specialist DIA on graph
data.

Run:  python examples/graph_pagerank.py
"""

from __future__ import annotations

try:
    import repro  # noqa: F401 — probe for an installed package
except ModuleNotFoundError:  # running from a source checkout
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )

import numpy as np

from repro import SpmvSimulator, HardwareConfig
from repro.analysis import format_table
from repro.apps import pagerank, transition_matrix
from repro.formats import SPARSE_FORMATS
from repro.workloads import power_law_graph


def main() -> None:
    graph = power_law_graph(1500, avg_degree=8, seed=5)
    print(
        f"web graph stand-in: {graph.n_rows} vertices, "
        f"{graph.nnz} edges, density {graph.density:.2%}"
    )
    print()

    result = pagerank(graph, format_name="csr", partition_size=16)
    top = np.argsort(result.ranks)[::-1][:5]
    print(
        f"PageRank converged in {result.iterations} iterations "
        f"({result.spmv_count} SpMVs)"
    )
    print("top-5 vertices:",
          ", ".join(f"v{v} ({result.ranks[v]:.4f})" for v in top))

    # format independence of the analytics result.
    other = pagerank(graph, format_name="coo", partition_size=16)
    assert np.allclose(result.ranks, other.ranks, atol=1e-8)
    print("COO and CSR pipelines agree on the ranking.")
    print()

    # characterize the operand the iterations actually stream.
    operand = transition_matrix(graph)
    simulator = SpmvSimulator(HardwareConfig(partition_size=16))
    profiles = simulator.profiles(operand)
    rows = []
    for name in SPARSE_FORMATS:
        spmv = simulator.run_format(name, profiles, workload="pagerank")
        rows.append(
            [
                name,
                spmv.sigma,
                spmv.total_seconds * 1e6,
                spmv.total_seconds * result.spmv_count * 1e3,
                spmv.bandwidth_utilization,
            ]
        )
    rows.sort(key=lambda row: row[2])
    print(
        format_table(
            ["format", "sigma", "SpMV (us)", "PageRank (ms)", "bw util"],
            rows,
            title="Projected accelerator cost per format",
        )
    )
    print()
    by_name = {row[0]: row for row in rows}
    print(
        "paper insight check - generic COO vs specialist DIA on graph "
        f"data: COO {by_name['coo'][2]:.1f} us vs DIA "
        f"{by_name['dia'][2]:.1f} us per SpMV."
    )


if __name__ == "__main__":
    main()
