#!/usr/bin/env python
"""Regenerate every paper figure's series in one run.

A compact version of the benchmark harness: smaller workloads, every
figure's numbers printed, and the full result cube saved to
``copernicus_results.json`` for external plotting.  For the asserted,
full-scale versions run ``pytest benchmarks/ --benchmark-only -s``.

The whole cube runs through the sweep engine; pass ``--workers N`` to
fan the workloads out over N processes.

Run:  python examples/paper_figures.py [output.json] [--workers N]
"""

from __future__ import annotations

import argparse

try:
    import repro  # noqa: F401 — probe for an installed package
except ModuleNotFoundError:  # running from a source checkout
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )

from repro.analysis import bar_chart, grouped_series
from repro.core import save_results, summarize
from repro.engine import SweepRunner
from repro.formats import PAPER_FORMATS
from repro.partition import PARTITION_SIZES, partition_statistics
from repro.workloads import band_suite, random_suite, suitesparse_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "output", nargs="?", default="copernicus_results.json"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep engine (default: 1)",
    )
    parser.add_argument(
        "--emit-metrics", action="store_true",
        help="drop one run manifest per workload group next to the "
        "output JSON (inspect with `python -m repro stats`)",
    )
    args = parser.parse_args()
    output = args.output
    groups = {
        "suitesparse": suitesparse_suite(max_dim=1024, seed=0),
        "random": random_suite(n=512, seed=0),
        "band": band_suite(n=1024, seed=0),
    }
    all_results = []

    # Figure 3: density statistics of the SuiteSparse stand-ins.
    print("== Figure 3: partition density (p = 16), SuiteSparse ==")
    densities = {
        load.name: 100.0
        * partition_statistics(load.matrix, 16).avg_partition_density
        for load in groups["suitesparse"]
    }
    print(bar_chart(densities, log_scale=True))
    print()

    # Figures 4-7 and 10-12 come from the same cube, swept through the
    # engine: partition profiles are computed once per (workload, p)
    # and shared by all eight formats.
    runner = SweepRunner(
        max_workers=args.workers,
        telemetry=args.emit_metrics,
        error_policy="fail_fast",
    )
    cube: dict[tuple[str, str, int], object] = {}
    for group_name, workloads in groups.items():
        outcome = runner.run_grid(
            workloads, PAPER_FORMATS, partition_sizes=PARTITION_SIZES
        )
        cube.update(outcome.by_coords())
        all_results.extend(outcome.results)
        print(
            f"swept {group_name}: {len(outcome)} cells, "
            f"{outcome.stats.total_hits} cache hits"
        )
        if args.emit_metrics:
            manifest = outcome.write_manifest(
                f"{output}.{group_name}.manifest.jsonl",
                extra={"group": group_name, "source": "paper_figures"},
            )
            print(f"  manifest: {manifest}")
    print()

    def series(group: str, metric: str, p: int = 16):
        workloads = groups[group]
        return {
            fmt: [
                getattr(cube[(load.name, fmt, p)], metric)
                for load in workloads
            ]
            for fmt in PAPER_FORMATS
        }

    random_x = [load.parameter for load in groups["random"]]
    band_x = [int(load.parameter) for load in groups["band"]]

    print(grouped_series(random_x, series("random", "sigma"),
                         title="== Figure 5: sigma vs density =="))
    print()
    print(grouped_series(band_x, series("band", "sigma"),
                         title="== Figure 6: sigma vs band width =="))
    print()

    print("== Figure 7: mean sigma vs partition size ==")
    for group_name in groups:
        means = {
            fmt: [
                sum(
                    cube[(load.name, fmt, p)].sigma
                    for load in groups[group_name]
                )
                / len(groups[group_name])
                for p in PARTITION_SIZES
            ]
            for fmt in PAPER_FORMATS
        }
        print(grouped_series(PARTITION_SIZES, means, title=group_name))
        print()

    print(grouped_series(
        random_x, series("random", "bandwidth_utilization"),
        title="== Figure 10: bandwidth utilization vs density ==",
    ))
    print()
    print(grouped_series(
        band_x, series("band", "bandwidth_utilization"),
        title="== Figure 11: bandwidth utilization vs band width ==",
    ))
    print()

    print("== Figure 14: overall scores per group ==")
    for group_name, workloads in groups.items():
        group_results = [
            cube[(load.name, fmt, p)]
            for load in workloads
            for fmt in PAPER_FORMATS
            for p in PARTITION_SIZES
        ]
        scores = summarize(group_results, PAPER_FORMATS)
        print(bar_chart(
            {s.format_name: s.overall for s in scores},
            title=group_name,
        ))
        print()

    save_results(
        all_results, output,
        metadata={"scales": "suitesparse<=1024, random=512, band=1024"},
    )
    print(f"saved {len(all_results)} records to {output}")


if __name__ == "__main__":
    main()
