#!/usr/bin/env python
"""Scientific computing scenario: solve a discretized PDE with CG.

Section 3.3's first domain.  A 2-D Poisson problem is discretized into
an SPD sparse system and solved by conjugate gradient, with every SpMV
running through an encoded sparse format.  The example then asks the
hardware model which format would execute those SpMVs fastest on the
accelerator, and what the whole solve would cost end to end.

Run:  python examples/pde_solver.py
"""

from __future__ import annotations

try:
    import repro  # noqa: F401 — probe for an installed package
except ModuleNotFoundError:  # running from a source checkout
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )

import numpy as np

from repro import SpmvSimulator, HardwareConfig
from repro.analysis import format_table
from repro.apps import conjugate_gradient
from repro.formats import SPARSE_FORMATS
from repro.workloads import poisson_2d, random_vector


def main() -> None:
    grid = 24
    matrix = poisson_2d(grid)
    b = random_vector(matrix.n_rows, seed=3)
    print(
        f"2-D Poisson on a {grid}x{grid} grid -> "
        f"A is {matrix.n_rows}x{matrix.n_cols}, nnz={matrix.nnz}, "
        f"bandwidth={matrix.bandwidth()}"
    )
    print()

    # solve through one format end-to-end to show correctness.
    result = conjugate_gradient(
        matrix, b, format_name="csr", partition_size=16, tol=1e-10
    )
    residual = np.linalg.norm(matrix.spmv(result.x) - b)
    print(
        f"CG through CSR partitions: converged={result.converged} in "
        f"{result.iterations} iterations ({result.spmv_count} SpMVs), "
        f"|Ax-b| = {residual:.2e}"
    )
    print()

    # which format should carry this solver on the accelerator?
    simulator = SpmvSimulator(HardwareConfig(partition_size=16))
    profiles = simulator.profiles(matrix)
    rows = []
    for name in SPARSE_FORMATS:
        spmv = simulator.run_format(name, profiles, workload="poisson")
        solve_seconds = spmv.total_seconds * result.spmv_count
        rows.append(
            [
                name,
                spmv.sigma,
                spmv.total_seconds * 1e6,
                solve_seconds * 1e3,
                spmv.bandwidth_utilization,
                spmv.energy_j * result.spmv_count * 1e3,
            ]
        )
    rows.sort(key=lambda row: row[3])
    print(
        format_table(
            [
                "format", "sigma", "SpMV (us)", "CG solve (ms)",
                "bw util", "energy (mJ)",
            ],
            rows,
            title="Projected accelerator cost of the full CG solve",
        )
    )
    best = rows[0][0]
    print()
    print(
        f"-> {best} minimizes the end-to-end solve time for this "
        "banded PDE system."
    )


if __name__ == "__main__":
    main()
