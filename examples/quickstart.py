#!/usr/bin/env python
"""Quickstart: encode a sparse matrix in every format and characterize it.

Builds a random sparse matrix, round-trips it through each of the
paper's formats, runs a format-correct SpMV, and then characterizes
every format on the modelled accelerator — printing the same metrics
the paper reports (sigma, balance ratio, throughput, bandwidth
utilization, power).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

try:
    import repro  # noqa: F401 — probe for an installed package
except ModuleNotFoundError:  # running from a source checkout
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )

import numpy as np

from repro import SpmvSimulator, HardwareConfig
from repro.analysis import format_table
from repro.formats import PAPER_FORMATS, get_format
from repro.workloads import random_matrix, random_vector


def main() -> None:
    matrix = random_matrix(512, density=0.02, seed=7)
    x = random_vector(512, seed=11)
    print(f"workload: {matrix!r}")
    print()

    # 1. every format stores the matrix losslessly and can run SpMV
    #    by traversing its own encoded arrays.
    reference = matrix.spmv(x)
    rows = []
    for name in PAPER_FORMATS:
        fmt = get_format(name)
        encoded = fmt.encode(matrix)
        assert fmt.decode(encoded) == matrix
        assert np.allclose(fmt.spmv(encoded, x), reference)
        size = fmt.size(encoded)
        rows.append(
            [
                name,
                size.total_bytes,
                fmt.compression_ratio(matrix),
                size.bandwidth_utilization,
            ]
        )
    print(
        format_table(
            ["format", "bytes on wire", "compression", "bw util"],
            rows,
            title="Storage view (whole matrix, no partitioning)",
        )
    )
    print()

    # 2. the hardware view: stream 16x16 partitions through the
    #    modelled accelerator.
    simulator = SpmvSimulator(HardwareConfig(partition_size=16))
    results = simulator.characterize_formats(
        matrix, PAPER_FORMATS, workload="quickstart"
    )
    rows = [
        [
            name,
            result.sigma,
            result.total_seconds * 1e6,
            result.balance_ratio,
            result.throughput_bytes_per_s / 1e9,
            result.bandwidth_utilization,
            result.dynamic_power_w,
        ]
        for name, result in results.items()
    ]
    print(
        format_table(
            [
                "format", "sigma", "latency (us)", "balance",
                "thr (GB/s)", "bw util", "dyn W",
            ],
            rows,
            title="Accelerator view (16x16 partitions, 250 MHz)",
        )
    )
    print()
    fastest = min(results.values(), key=lambda r: r.total_cycles)
    print(
        f"fastest format for this workload: {fastest.format_name} "
        f"({fastest.total_seconds * 1e6:.1f} us; "
        f"sigma = {fastest.sigma:.2f})"
    )


if __name__ == "__main__":
    main()
