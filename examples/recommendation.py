#!/usr/bin/env python
"""Recommendation-model scenario: embedding lookups as sparse algebra.

Section 3.1: recommendation models pair dense embedding tables with
random, sparse accesses; Section 3.3 reduces the lookups to the same
dot-product engine as SpMV.  This example builds a DLRM-style access
batch, pools it through the SpMM kernel, and asks the constraint-aware
recommender which format and partition size should carry the access
matrix on the accelerator — including under a tight BRAM budget.

Run:  python examples/recommendation.py
"""

from __future__ import annotations

try:
    import repro  # noqa: F401 — probe for an installed package
except ModuleNotFoundError:  # running from a source checkout
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )

import numpy as np

from repro.analysis import format_table
from repro.apps import embedding_reduction, spmm
from repro.core import Constraints, recommend
from repro.workloads import (
    embedding_access_matrix,
    embedding_access_trace,
)


def main() -> None:
    table_rows, dim = 4096, 32
    batch, lookups = 256, 24
    rng = np.random.default_rng(8)
    table = rng.normal(size=(table_rows, dim))

    trace = embedding_access_trace(batch, table_rows, lookups, seed=2)
    access = embedding_access_matrix(batch, table_rows, lookups, seed=2)
    print(
        f"embedding table {table_rows}x{dim}; batch of {batch} queries "
        f"x {lookups} lookups -> access matrix {access!r}"
    )

    pooled = spmm(access, table, format_name="csr", partition_size=16)
    check = embedding_reduction(table, trace[0])
    assert np.allclose(pooled[0], check)
    print(
        f"pooled batch through CSR partitions: {pooled.shape}, "
        "matches per-query reduction."
    )
    print()

    # which format should carry this access matrix?
    unconstrained = recommend(access, objective="latency")
    print(
        f"fastest design: {unconstrained.format_name} at "
        f"{unconstrained.partition_size}x{unconstrained.partition_size} "
        f"({unconstrained.best.total_seconds * 1e6:.1f} us per batch "
        "SpMV)"
    )

    tight = recommend(
        access,
        objective="latency",
        constraints=Constraints(max_bram_18k=6),
    )
    print(
        f"under a 6-BRAM budget: {tight.format_name} at "
        f"{tight.partition_size}x{tight.partition_size} "
        f"({len(tight.rejected)} designs rejected)"
    )
    print()

    rows = [
        [
            r.format_name,
            r.partition_size,
            r.total_seconds * 1e6,
            r.bandwidth_utilization,
            r.resources.bram_18k,
            r.dynamic_power_w,
        ]
        for r in unconstrained.ranking()[:8]
    ]
    print(
        format_table(
            ["format", "p", "latency us", "bw util", "BRAM", "dyn W"],
            rows,
            title="Top designs for the embedding access matrix",
        )
    )


if __name__ == "__main__":
    main()
