#!/usr/bin/env python
"""Machine-learning scenario: pruned MLP inference + embedding lookups.

Section 3.3's third domain.  A dense MLP is magnitude-pruned into the
paper's "machine-learning density regime" (0.1 - 0.5), inference runs
through encoded sparse formats, and the hardware model shows why the
paper recommends small partitions (8x8 / 16x16) and block formats for
these denser workloads.  A recommendation-style embedding reduction
closes the example.

Run:  python examples/sparse_inference.py
"""

from __future__ import annotations

try:
    import repro  # noqa: F401 — probe for an installed package
except ModuleNotFoundError:  # running from a source checkout
    import pathlib
    import sys

    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )

import numpy as np

from repro import SpmvSimulator, HardwareConfig
from repro.analysis import format_table
from repro.apps import (
    SparseLayer,
    SparseMlp,
    embedding_reduction,
    identity,
    prune_dense_weights,
)
from repro.workloads import random_matrix


def build_pruned_mlp(keep: float, format_name: str) -> SparseMlp:
    rng = np.random.default_rng(9)
    sizes = [128, 96, 64, 10]
    layers = []
    for index, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
        dense = rng.normal(size=(n_out, n_in))
        weights = prune_dense_weights(dense, keep_fraction=keep)
        last = index == len(sizes) - 2
        layers.append(
            SparseLayer(
                weights,
                activation=identity if last else np.tanh,
                format_name=format_name,
                partition_size=16,
            )
        )
    return SparseMlp(layers)


def main() -> None:
    keep = 0.25
    mlp = build_pruned_mlp(keep, "csr")
    x = np.random.default_rng(1).normal(size=128)
    logits = mlp.forward(x)
    print(
        f"pruned MLP (keep {keep:.0%} of weights) logits: "
        f"argmax={int(np.argmax(logits))}"
    )
    other = build_pruned_mlp(keep, "bcsr")
    assert np.allclose(logits, other.forward(x))
    print("CSR and BCSR inference agree.")
    print()

    # paper insight: for density > 0.1, partitioning beyond 8x8/16x16
    # hurts.  Sweep partition sizes on an ML-regime weight matrix.
    weights = random_matrix(512, density=0.25, seed=4)
    rows = []
    for p in (8, 16, 32):
        simulator = SpmvSimulator(HardwareConfig(partition_size=p))
        profiles = simulator.profiles(weights)
        for name in ("bcsr", "csr", "coo", "ell"):
            result = simulator.run_format(name, profiles, workload="ml")
            rows.append(
                [
                    p,
                    name,
                    result.sigma,
                    result.total_seconds * 1e6,
                    result.bandwidth_utilization,
                ]
            )
    print(
        format_table(
            ["p", "format", "sigma", "latency (us)", "bw util"],
            rows,
            title="Pruned-layer SpMV (density 0.25) vs partition size",
        )
    )
    print()

    # recommendation-model embedding reduction (a dot-product at heart).
    table = np.random.default_rng(2).normal(size=(1000, 16))
    pooled = embedding_reduction(table, [3, 17, 17, 912])
    print(
        "embedding reduction over indices [3, 17, 17, 912] -> "
        f"vector norm {np.linalg.norm(pooled):.3f}"
    )


if __name__ == "__main__":
    main()
