"""Setup shim for offline editable installs.

The environment has no network and no ``wheel`` package, so PEP 517
editable builds (which require ``bdist_wheel``) fail; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` fall back to
the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
