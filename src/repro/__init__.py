"""Copernicus: performance characterization of sparse compression formats.

A full Python reproduction of "Copernicus: Characterizing the
Performance Implications of Compression Formats Used in Sparse
Workloads" (IISWC 2021): a from-scratch sparse-format library, a
cycle-level model of the paper's HLS streaming SpMV accelerator, the
three workload suites, and the characterization metrics behind every
table and figure.

Quickstart::

    from repro import SparseMatrix, characterize
    from repro.workloads import random_matrix

    matrix = random_matrix(512, density=0.01, seed=7)
    result = characterize(matrix, "csr", partition_size=16)
    print(result.sigma, result.balance_ratio)
"""

from . import (
    analysis,
    apps,
    core,
    engine,
    formats,
    hardware,
    io,
    observability,
    workloads,
)
from .core import CharacterizationResult, SpmvSimulator, characterize
from .engine import SweepRunner, WorkloadSpec, run_sweep
from .errors import (
    CopernicusError,
    FormatError,
    HardwareConfigError,
    ManifestError,
    ObservabilityError,
    PartitionError,
    ShapeError,
    SimulationError,
    SweepConfigError,
    UnknownFormatError,
    WorkloadError,
)
from .observability import MetricsRegistry, read_manifest
from .formats import PAPER_FORMATS, SPARSE_FORMATS, get_format
from .hardware import DEFAULT_CONFIG, HardwareConfig
from .matrix import SparseMatrix
from .partition import (
    PARTITION_SIZES,
    Partition,
    PartitionProfile,
    PartitionStatistics,
    ProfileTable,
    partition_matrix,
    partition_statistics,
    profile_partitions,
    profile_table,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "analysis",
    "apps",
    "core",
    "engine",
    "SweepRunner",
    "WorkloadSpec",
    "run_sweep",
    "formats",
    "hardware",
    "io",
    "observability",
    "workloads",
    "MetricsRegistry",
    "read_manifest",
    "CharacterizationResult",
    "SpmvSimulator",
    "characterize",
    "CopernicusError",
    "FormatError",
    "HardwareConfigError",
    "ManifestError",
    "ObservabilityError",
    "PartitionError",
    "ShapeError",
    "SimulationError",
    "SweepConfigError",
    "UnknownFormatError",
    "WorkloadError",
    "PAPER_FORMATS",
    "SPARSE_FORMATS",
    "get_format",
    "DEFAULT_CONFIG",
    "HardwareConfig",
    "SparseMatrix",
    "PARTITION_SIZES",
    "Partition",
    "PartitionProfile",
    "PartitionStatistics",
    "ProfileTable",
    "partition_matrix",
    "partition_statistics",
    "profile_partitions",
    "profile_table",
]
