"""The learned fast-path advisor (ROADMAP item 3).

Predicts per-(format, partition size) latency from cheap matrix
features instead of simulating every candidate, with the exact
vectorized model as verifier/fallback when the predicted margin is
too small to trust:

* :mod:`~repro.advisor.features` — bounded, deterministic feature
  extraction (one subsampled profile pass);
* :mod:`~repro.advisor.model` — the ``advisor_model/v1`` artifact
  (per-design-point ridge heads, canonical JSON, self-verifying
  digest);
* :mod:`~repro.advisor.dataset` — the seeded workload zoo, manifest
  joins by recipe digest, and the deterministic held-out split;
* :mod:`~repro.advisor.train` — closed-form ridge training, byte
  identical across worker counts;
* :mod:`~repro.advisor.predict` — :func:`recommend_fast`, the
  O(features) ranking with margin-gated exact verification;
* :mod:`~repro.advisor.bench` — the ``bench_advisor/v1`` accuracy
  contract (Spearman, top-1/top-3, exact-vs-fast latency), gated in
  CI.
"""

from .bench import (
    BENCH_ADVISOR_SCHEMA,
    bench_advisor,
    default_latency_specs,
    rankdata,
    spearman,
    write_advisor_report,
)
from .dataset import (
    TrainingRow,
    features_for_specs,
    rows_digest,
    rows_from_manifest,
    rows_from_outcome,
    split_holdout,
    workload_zoo,
)
from .features import (
    DEFAULT_FEATURE_P,
    FEATURE_NAMES,
    SAMPLE_CAP,
    Features,
    MatrixSummary,
    extract_features,
    features_from_table,
    matrix_summary,
    sample_matrix,
)
from .model import (
    ADVISOR_MODEL_SCHEMA,
    AdvisorModel,
    RidgeHead,
    load_model,
    model_from_payload,
    save_model,
)
from .predict import FastAdvice, recommend_fast, static_estimates
from .train import sweep_training_rows, train_model

__all__ = [
    "BENCH_ADVISOR_SCHEMA",
    "bench_advisor",
    "default_latency_specs",
    "rankdata",
    "spearman",
    "write_advisor_report",
    "TrainingRow",
    "features_for_specs",
    "rows_digest",
    "rows_from_manifest",
    "rows_from_outcome",
    "split_holdout",
    "workload_zoo",
    "DEFAULT_FEATURE_P",
    "FEATURE_NAMES",
    "SAMPLE_CAP",
    "Features",
    "MatrixSummary",
    "extract_features",
    "features_from_table",
    "matrix_summary",
    "sample_matrix",
    "ADVISOR_MODEL_SCHEMA",
    "AdvisorModel",
    "RidgeHead",
    "load_model",
    "model_from_payload",
    "save_model",
    "FastAdvice",
    "recommend_fast",
    "static_estimates",
    "sweep_training_rows",
    "train_model",
]
