"""The measured accuracy contract: ``bench_advisor/v1``.

A trained advisor is only trustworthy if its error is measured and
pinned.  This module computes, on the held-out workload split the
model never trained on:

* **Spearman rank correlation** between the predicted and exact
  rankings of every (format, partition size) design point, per
  workload (average-rank ties, pure numpy);
* **top-1 / top-3 agreement** — does the predicted winner match the
  exact winner / land in the exact top three;
* **latency** — wall time of the fast path vs the exact advise path
  on paper-scale matrices, best-of-``repeats``.

The report is versioned (``bench_advisor/v1``), golden-schema tested,
and gated in CI (``repro advisor bench --require-spearman 0.9
--require-top3 0.95 --require-speedup 50``).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from .. import io_atomic
from ..core.recommend import recommend
from ..engine.specs import WorkloadSpec
from ..errors import AdvisorError
from ..observability import machine_metadata
from .model import AdvisorModel
from .predict import recommend_fast

__all__ = [
    "BENCH_ADVISOR_SCHEMA",
    "rankdata",
    "spearman",
    "default_latency_specs",
    "bench_advisor",
    "write_advisor_report",
]

#: Version tag of the accuracy/latency report.
BENCH_ADVISOR_SCHEMA = "bench_advisor/v1"


def rankdata(values: Sequence[float]) -> np.ndarray:
    """Average ranks (1-based), ties shared — scipy-free rankdata."""
    array = np.asarray(values, dtype=np.float64)
    order = np.argsort(array, kind="stable")
    ranks = np.empty(array.size, dtype=np.float64)
    ranks[order] = np.arange(1, array.size + 1, dtype=np.float64)
    # average the rank across each tied group
    sorted_vals = array[order]
    index = 0
    while index < array.size:
        stop = index
        while (
            stop + 1 < array.size
            and sorted_vals[stop + 1] == sorted_vals[index]
        ):
            stop += 1
        if stop > index:
            ranks[order[index:stop + 1]] = (index + stop) / 2.0 + 1.0
        index = stop + 1
    return ranks


def spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation with average-rank tie handling."""
    ra, rb = rankdata(a), rankdata(b)
    if ra.size < 2:
        return 1.0
    da = ra - ra.mean()
    db = rb - rb.mean()
    denom = math.sqrt(float(da @ da) * float(db @ db))
    if denom == 0.0:
        return 1.0
    return float(da @ db) / denom


def default_latency_specs(n: int = 2048) -> tuple[WorkloadSpec, ...]:
    """Paper-scale matrices for the exact-vs-fast wall-time contest.

    Large enough that the exact path's per-partition-size profiling
    dominates, which is exactly the cost the advisor amortizes away.
    """
    return (
        WorkloadSpec.random(
            n, 0.05, seed=11, name=f"lat-rand-n{n}-d0.05"
        ),
        WorkloadSpec.random(
            n, 0.01, seed=12, name=f"lat-rand-n{n}-d0.01"
        ),
        WorkloadSpec.band(
            n, 256, seed=13, name=f"lat-band-n{n}-w256"
        ),
    )


def _best_time(run, repeats: int) -> float:
    best = math.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _exact_cycles(
    matrix, formats, partitions
) -> dict[tuple[str, int], float]:
    result = recommend(
        matrix, "latency", formats=formats, partition_sizes=partitions
    )
    return {
        (r.format_name, r.partition_size): float(r.total_cycles)
        for r in result.candidates + result.rejected
    }


def bench_advisor(
    model: AdvisorModel,
    heldout: Sequence[WorkloadSpec],
    *,
    repeats: int = 3,
    latency_specs: Sequence[WorkloadSpec] | None = None,
) -> dict:
    """Measure the accuracy contract on the held-out split."""
    if not heldout:
        raise AdvisorError("need >= 1 held-out workload to benchmark")
    formats = model.formats
    partitions = model.partitions
    keys = [
        (name, p)
        for p in sorted(partitions)
        for name in sorted(formats)
    ]
    per_workload = []
    for spec in heldout:
        matrix = spec.build().matrix
        exact = _exact_cycles(matrix, formats, partitions)
        predicted = model.predict_matrix(matrix)
        exact_values = [exact[k] for k in keys]
        predicted_values = [predicted[k] for k in keys]
        exact_order = sorted(keys, key=lambda k: exact[k])
        predicted_best = min(keys, key=lambda k: predicted[k])
        per_workload.append(
            {
                "workload": spec.name,
                "recipe_digest": spec.recipe_digest,
                "spearman": spearman(exact_values, predicted_values),
                "exact_best": list(exact_order[0]),
                "predicted_best": list(predicted_best),
                "top1": predicted_best == exact_order[0],
                "top3": predicted_best in exact_order[:3],
            }
        )

    latency_rows = []
    for spec in latency_specs or default_latency_specs():
        matrix = spec.build().matrix
        exact_s = _best_time(
            lambda: recommend(
                matrix, "latency",
                formats=formats, partition_sizes=partitions,
            ),
            repeats,
        )
        fast_s = _best_time(
            lambda: recommend_fast(
                matrix, model, margin_threshold=0.0, verify=False
            ),
            repeats,
        )
        latency_rows.append(
            {
                "workload": spec.name,
                "nnz": matrix.nnz,
                "exact_ms": exact_s * 1e3,
                "fast_ms": fast_s * 1e3,
                "speedup": exact_s / fast_s if fast_s else math.inf,
            }
        )

    spearmen = [w["spearman"] for w in per_workload]
    speedups = [r["speedup"] for r in latency_rows]
    return {
        "schema": BENCH_ADVISOR_SCHEMA,
        "machine": machine_metadata(),
        "model": {
            "digest": model.digest,
            "feature_p": model.feature_p,
            "n_features": len(model.mean),
            "n_heads": len(model.heads),
            "ridge_lambda": model.ridge_lambda,
            "training": dict(model.training),
        },
        "config": {
            "objective": "latency",
            "formats": list(formats),
            "partitions": list(partitions),
            "n_heldout": len(per_workload),
            "n_cells": len(keys),
            "repeats": repeats,
        },
        "accuracy": {
            "spearman_mean": float(np.mean(spearmen)),
            "spearman_min": float(np.min(spearmen)),
            "top1_agreement": float(
                np.mean([w["top1"] for w in per_workload])
            ),
            "top3_agreement": float(
                np.mean([w["top3"] for w in per_workload])
            ),
        },
        "latency": {
            "per_workload": latency_rows,
            "exact_ms_geomean": _geomean(
                [r["exact_ms"] for r in latency_rows]
            ),
            "fast_ms_geomean": _geomean(
                [r["fast_ms"] for r in latency_rows]
            ),
            "speedup_geomean": _geomean(speedups),
            "speedup_min": float(min(speedups, default=0.0)),
        },
        "per_workload": per_workload,
    }


def _geomean(values: Sequence[float]) -> float:
    finite = [v for v in values if v > 0 and math.isfinite(v)]
    if not finite:
        return 0.0
    return float(
        math.exp(sum(math.log(v) for v in finite) / len(finite))
    )


def write_advisor_report(report: dict, path: str | Path) -> Path:
    """Write the ``BENCH_advisor.json`` report (stable key order)."""
    return io_atomic.atomic_write_text(
        Path(path),
        json.dumps(report, indent=2, sort_keys=True) + "\n",
    )
