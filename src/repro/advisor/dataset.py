"""Training data for the advisor: the workload zoo and manifest joins.

Training rows are ``(workload, format, partition size) -> total
cycles`` observations.  They come from either

* a sweep run in-process over the :func:`workload_zoo` (the default of
  ``repro advisor train``), or
* one or more JSON-lines run manifests (``repro advisor train
  --from-manifest``), joined to the zoo by *recipe digest* — the same
  content identity the manifests and the serve layer already use — so
  a manifest produced by any machine or worker count trains the same
  model, byte for byte.

The held-out split is seeded and deterministic: the split parameters
are recorded in the trained artifact, and ``repro advisor bench``
reconstructs the exact workloads the model never saw.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..engine.specs import WorkloadSpec
from ..errors import AdvisorError
from .features import Features, extract_features

__all__ = [
    "TrainingRow",
    "workload_zoo",
    "split_holdout",
    "rows_from_outcome",
    "rows_from_manifest",
    "features_for_specs",
    "rows_digest",
]


@dataclass(frozen=True)
class TrainingRow:
    """One observed cell: a design point's exact cycle count."""

    workload: str
    recipe_digest: str
    format_name: str
    partition_size: int
    total_cycles: int

    def key(self) -> tuple:
        return (
            self.recipe_digest,
            self.workload,
            self.format_name,
            self.partition_size,
        )


def workload_zoo(seed: int = 0) -> tuple[WorkloadSpec, ...]:
    """The seeded workload zoo the advisor trains and is judged on.

    Small matrices spanning the structure axes the formats care about:
    uniform random at several densities, narrow-to-wide bands, and the
    Poisson stencil.  Names embed every parameter, so recipe digests
    and manifest joins are collision-free across sizes and seeds.
    """
    specs: list[WorkloadSpec] = []
    for n in (48, 64, 96):
        for density in (0.02, 0.05, 0.1, 0.2):
            for s in (seed, seed + 1):
                specs.append(
                    WorkloadSpec.random(
                        n, density, seed=s,
                        name=f"zoo-rand-n{n}-d{density:g}-s{s}",
                    )
                )
    for n in (64, 96, 128):
        for width in (2, 3, 5, 9, 17, 33):
            specs.append(
                WorkloadSpec.band(
                    n, width, seed=seed,
                    name=f"zoo-band-n{n}-w{width}-s{seed}",
                )
            )
    for grid in (5, 6, 7, 8, 9, 10, 11, 12, 13):
        specs.append(
            WorkloadSpec.poisson(grid, name=f"zoo-poisson-{grid}")
        )
    return tuple(specs)


def split_holdout(
    specs: Sequence[WorkloadSpec],
    fraction: float = 0.25,
    seed: int = 0,
) -> tuple[tuple[WorkloadSpec, ...], tuple[WorkloadSpec, ...]]:
    """Deterministic (train, held-out) split by workload.

    The split is by whole workloads — never by cells — so held-out
    accuracy measures generalization to unseen matrices, not
    interpolation within one.
    """
    if not 0.0 < fraction < 1.0:
        raise AdvisorError(
            f"holdout fraction must be in (0, 1), got {fraction}"
        )
    if len(specs) < 2:
        raise AdvisorError(
            "need >= 2 workloads to split out a held-out set"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(specs))
    n_holdout = min(
        max(1, round(fraction * len(specs))), len(specs) - 1
    )
    held = set(int(i) for i in order[:n_holdout])
    train = tuple(s for i, s in enumerate(specs) if i not in held)
    holdout = tuple(s for i, s in enumerate(specs) if i in held)
    return train, holdout


def rows_from_outcome(
    outcome, specs: Sequence[WorkloadSpec]
) -> list[TrainingRow]:
    """Training rows from a finished sweep of ``specs``."""
    digest_by_name = {spec.name: spec.recipe_digest for spec in specs}
    rows = []
    for result in outcome.results:
        digest = digest_by_name.get(result.workload)
        if digest is None:
            continue
        rows.append(
            TrainingRow(
                workload=result.workload,
                recipe_digest=digest,
                format_name=result.format_name,
                partition_size=result.partition_size,
                total_cycles=int(result.total_cycles),
            )
        )
    return rows


def rows_from_manifest(
    path: str | Path, specs: Sequence[WorkloadSpec]
) -> tuple[list[TrainingRow], list[str]]:
    """Join one run manifest against ``specs`` by recipe digest.

    Returns ``(rows, skipped)`` where ``skipped`` lists manifest
    workload names whose recipe digest matches none of ``specs`` —
    foreign cells are reported, not silently trained on.
    """
    from ..observability import read_manifest

    manifest = read_manifest(path)
    recipes = manifest.recipes()
    spec_by_digest = {spec.recipe_digest: spec for spec in specs}
    rows: list[TrainingRow] = []
    skipped: set[str] = set()
    for cell in manifest.cells:
        digest = recipes.get(cell["workload"], "")
        spec = spec_by_digest.get(digest)
        if spec is None:
            skipped.add(cell["workload"])
            continue
        rows.append(
            TrainingRow(
                workload=spec.name,
                recipe_digest=digest,
                format_name=cell["format"],
                partition_size=int(cell["partition_size"]),
                total_cycles=int(cell["total_cycles"]),
            )
        )
    return rows, sorted(skipped)


def features_for_specs(
    specs: Iterable[WorkloadSpec],
    feature_p: int,
    block_size: int = 4,
    sample_cap: int = 8192,
) -> dict[str, Features]:
    """Extracted features per recipe digest (matrix built once each)."""
    table: dict[str, Features] = {}
    for spec in specs:
        if spec.recipe_digest in table:
            continue
        matrix = spec.build().matrix
        table[spec.recipe_digest] = extract_features(
            matrix, feature_p, block_size, sample_cap
        )
    return table


def rows_digest(rows: Iterable[TrainingRow]) -> str:
    """Content digest of a row set, order-independent.

    Stamped into the artifact's ``training`` block: two trainings that
    saw the same observations — whatever the sweep worker count or
    manifest file order — carry the same digest.
    """
    payload = repr(
        sorted((row.key(), row.total_cycles) for row in rows)
    )
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=16
    ).hexdigest()
