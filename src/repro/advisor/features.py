"""Cheap matrix features for the learned fast-path advisor.

The exact characterization pays a full :func:`~repro.partition.profile_table`
pass per partition size plus one hardware-model evaluation per format.
The advisor replaces all of that with one O(features) prediction, so
the feature extractor has to be cheap, deterministic, and robust:

* **cheap** — the matrix is subsampled to at most :data:`SAMPLE_CAP`
  entries (a deterministic stride over the canonical sorted triplets)
  before the single profile pass, so extraction cost is bounded no
  matter how large the workload is;
* **deterministic** — the same ``(matrix, p)`` always yields the same
  vector, bit for bit, and every reduction over per-tile statistics
  sorts its operands first, so the vector is invariant to the tile
  iteration order of the :class:`~repro.partition.ProfileTable` it was
  computed from (the hypothesis suite pins both properties);
* **robust** — every entry is finite for the degenerate inputs the
  serve layer can produce: empty matrices, fully dense tiles,
  single-row matrices.

The vector layout is :data:`FEATURE_NAMES`; it is part of the
``advisor_model/v1`` artifact contract, so reordering, adding or
removing a feature requires retraining and bumping the artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AdvisorError
from ..matrix import SparseMatrix
from ..partition import ProfileTable, count_partitions, profile_table

__all__ = [
    "FEATURE_NAMES",
    "DEFAULT_FEATURE_P",
    "SAMPLE_CAP",
    "Features",
    "MatrixSummary",
    "matrix_summary",
    "sample_matrix",
    "features_from_table",
    "extract_features",
]

#: Partition size the advisor profiles at (one pass, not three).
DEFAULT_FEATURE_P = 16

#: Entries kept by the deterministic subsample before profiling.
SAMPLE_CAP = 8192

#: The feature vector layout — part of the advisor_model/v1 contract.
FEATURE_NAMES: tuple[str, ...] = (
    "log_nnz",
    "log_rows",
    "log_cols",
    "density",
    "bandwidth",
    "nonzero_tile_fraction",
    "tile_density_mean",
    "tile_density_var",
    "tile_density_skew",
    "row_density_mean",
    "row_density_var",
    "nnz_row_fraction_mean",
    "max_row_nnz_mean",
    "max_row_nnz_max",
    "max_col_nnz_mean",
    "row_len_cv_mean",
    "diag_count_mean",
    "dia_fill_mean",
    "dia_span_mean",
    "block_fill_mean",
    "block_row_fraction_mean",
    "log_csr_size",
    "log_ell_size",
    "log_dia_size",
    "log_bcsr_size",
    "log_dense_size",
)


@dataclass(frozen=True)
class MatrixSummary:
    """Whole-matrix scalars that survive subsampling.

    Computed from the full triplets (all O(nnz) or O(1)), unlike the
    tile statistics, which are computed on the subsample.
    """

    n_rows: int
    n_cols: int
    nnz: int
    bandwidth: int


@dataclass(frozen=True)
class Features:
    """One extracted feature vector plus the tiling it was built at."""

    p: int
    block_size: int
    vector: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.vector) != len(FEATURE_NAMES):
            raise AdvisorError(
                f"feature vector has {len(self.vector)} entries; the "
                f"schema defines {len(FEATURE_NAMES)}"
            )

    def as_array(self) -> np.ndarray:
        return np.asarray(self.vector, dtype=np.float64)


def matrix_summary(matrix: SparseMatrix) -> MatrixSummary:
    """Full-matrix scalars: shape, nnz and bandwidth (max ``|c - r|``)."""
    if matrix.nnz:
        spread = np.abs(
            matrix.cols.astype(np.int64) - matrix.rows.astype(np.int64)
        )
        bandwidth = int(spread.max())
    else:
        bandwidth = 0
    return MatrixSummary(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        nnz=matrix.nnz,
        bandwidth=bandwidth,
    )


def sample_matrix(
    matrix: SparseMatrix, cap: int = SAMPLE_CAP
) -> SparseMatrix:
    """Deterministic stride subsample down to at most ``cap`` entries.

    The triplets are already canonically sorted (row-major), so an
    evenly spaced index stride keeps the spatial structure while
    bounding the profiling cost.  Matrices at or under the cap are
    returned unchanged.
    """
    if cap < 1:
        raise AdvisorError(f"sample cap must be >= 1, got {cap}")
    if matrix.nnz <= cap:
        return matrix
    index = (np.arange(cap, dtype=np.int64) * matrix.nnz) // cap
    return SparseMatrix(
        matrix.shape,
        matrix.rows[index],
        matrix.cols[index],
        matrix.vals[index],
    )


def _sorted_sum(values: np.ndarray) -> float:
    """Order-invariant float sum: identical bytes for any permutation."""
    if values.size == 0:
        return 0.0
    return float(np.sort(values, kind="stable").sum())


def _mean(values: np.ndarray) -> float:
    if values.size == 0:
        return 0.0
    return _sorted_sum(values) / values.size


def _moments(values: np.ndarray) -> tuple[float, float, float]:
    """(mean, variance, skew) from order-invariant power sums."""
    if values.size == 0:
        return 0.0, 0.0, 0.0
    m1 = _mean(values)
    m2 = _mean(values * values)
    m3 = _mean(values * values * values)
    var = max(m2 - m1 * m1, 0.0)
    if var <= 1e-18:
        return m1, var, 0.0
    skew = (m3 - 3.0 * m1 * m2 + 2.0 * m1**3) / var**1.5
    return m1, var, skew


def features_from_table(
    table: ProfileTable, summary: MatrixSummary
) -> tuple[float, ...]:
    """Assemble the :data:`FEATURE_NAMES` vector from a profile table.

    Shared by :func:`extract_features` and the round-trip property
    suite (a table rebuilt via ``ProfileTable.from_profiles`` must
    yield the identical vector).
    """
    p = float(table.p)
    values: dict[str, float] = dict.fromkeys(FEATURE_NAMES, 0.0)
    values["log_nnz"] = float(np.log1p(summary.nnz))
    values["log_rows"] = float(np.log1p(summary.n_rows))
    values["log_cols"] = float(np.log1p(summary.n_cols))
    cells = summary.n_rows * summary.n_cols
    values["density"] = summary.nnz / cells if cells else 0.0
    values["bandwidth"] = summary.bandwidth / max(
        max(summary.n_rows, summary.n_cols) - 1, 1
    )
    total_tiles = count_partitions(
        (summary.n_rows, summary.n_cols), table.p
    )
    values["nonzero_tile_fraction"] = (
        table.n_tiles / total_tiles if total_tiles else 0.0
    )
    if table.n_tiles:
        mean, var, skew = _moments(table.density)
        values["tile_density_mean"] = mean
        values["tile_density_var"] = var
        values["tile_density_skew"] = skew
        mean, var, _ = _moments(table.row_density)
        values["row_density_mean"] = mean
        values["row_density_var"] = var
        values["nnz_row_fraction_mean"] = _mean(table.nnz_row_fraction)
        values["max_row_nnz_mean"] = _mean(table.max_row_nnz / p)
        values["max_row_nnz_max"] = float(table.max_row_nnz.max()) / p
        values["max_col_nnz_mean"] = _mean(table.max_col_nnz / p)
        # per-tile coefficient of variation of row lengths, from the
        # occupancy histogram: hist[k-1] rows hold exactly k entries
        lengths = np.arange(1, table.p + 1, dtype=np.float64)
        len_m1 = table.nnz / table.nnz_rows
        len_m2 = (table.row_nnz_hist @ (lengths * lengths)) / table.nnz_rows
        len_var = np.maximum(len_m2 - len_m1 * len_m1, 0.0)
        values["row_len_cv_mean"] = _mean(np.sqrt(len_var) / len_m1)
        values["diag_count_mean"] = _mean(
            table.n_diagonals / (2.0 * p - 1.0)
        )
        values["dia_fill_mean"] = _mean(
            table.nnz / (table.n_diagonals * table.dia_max_len)
        )
        values["dia_span_mean"] = _mean(table.dia_max_len / p)
        block = float(table.block_size)
        values["block_fill_mean"] = _mean(
            table.nnz / (table.n_blocks * block * block)
        )
        block_rows = float(-(-table.p // table.block_size))
        values["block_row_fraction_mean"] = _mean(
            table.nnz_block_rows / block_rows
        )
        # Per-format storage proxies.  The paper's latency model is
        # dominated by compressed bytes moved per tile, so the log of
        # each format's storage footprint is the single most predictive
        # regressor a per-format head can get.  Computed on the sample
        # and rescaled to the full matrix by the kept-nnz ratio.
        sample_nnz = _sorted_sum(table.nnz.astype(np.float64))
        rescale = summary.nnz / max(sample_nnz, 1.0)
        sizes = {
            "log_csr_size": sample_nnz
            + _sorted_sum(table.nnz_rows.astype(np.float64)),
            "log_ell_size": p
            * _sorted_sum(table.max_row_nnz.astype(np.float64)),
            "log_dia_size": _sorted_sum(
                table.dia_stored_len.astype(np.float64)
            ),
            "log_bcsr_size": block
            * block
            * _sorted_sum(table.n_blocks.astype(np.float64)),
        }
        for name, size in sizes.items():
            values[name] = float(np.log1p(rescale * size))
    values["log_dense_size"] = float(
        np.log1p(summary.n_rows * summary.n_cols)
    )
    return tuple(values[name] for name in FEATURE_NAMES)


def extract_features(
    matrix: SparseMatrix,
    p: int = DEFAULT_FEATURE_P,
    block_size: int = 4,
    sample_cap: int = SAMPLE_CAP,
) -> Features:
    """The advisor's O(features) view of one matrix.

    One bounded profile pass at one partition size — compare with the
    exact path's full pass per requested partition size.
    """
    summary = matrix_summary(matrix)
    sampled = sample_matrix(matrix, sample_cap)
    table = profile_table(sampled, p, block_size=block_size)
    return Features(
        p=p,
        block_size=block_size,
        vector=features_from_table(table, summary),
    )
