"""The ``advisor_model/v1`` artifact: a ridge head per design point.

The advisor is deliberately small: standardized features feed one
closed-form ridge regression per ``(format, partition size)`` head,
each predicting ``log1p(total_cycles)``.  Prediction is a handful of
dot products — O(features) — and training is a single
``numpy.linalg.solve`` per head, so the whole model trains from a
sweep manifest in well under a second and serializes to a few KB of
canonical JSON.

The artifact is versioned and self-verifying:

* ``schema`` tags the layout (reject-on-unknown-version);
* ``features`` embeds the feature schema the weights were trained
  against, checked on load against the running library's
  :data:`~repro.advisor.features.FEATURE_NAMES`;
* ``digest`` is a content digest over the canonical encoding of
  everything else, so corrupt or hand-edited artifacts are refused
  with a typed :class:`~repro.errors.AdvisorModelError` instead of
  silently mispredicting;
* ``training`` records where the weights came from (zoo seed, split,
  row-set digest) so a benchmark run can reconstruct the exact
  held-out split the model never saw.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import io_atomic
from ..errors import AdvisorModelError
from .features import FEATURE_NAMES, Features, extract_features

__all__ = [
    "ADVISOR_MODEL_SCHEMA",
    "RidgeHead",
    "AdvisorModel",
    "model_from_payload",
    "save_model",
    "load_model",
]

#: Version tag of the serialized artifact; bump on incompatible change.
ADVISOR_MODEL_SCHEMA = "advisor_model/v1"


def _canonical_bytes(payload: dict) -> bytes:
    """Deterministic encoding — the byte-identity/digest guarantee."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _payload_digest(payload: dict) -> str:
    body = {k: v for k, v in payload.items() if k != "digest"}
    return hashlib.blake2b(
        _canonical_bytes(body), digest_size=16
    ).hexdigest()


@dataclass(frozen=True)
class RidgeHead:
    """One trained target: predicts log1p(cycles) for a design point."""

    format_name: str
    partition_size: int
    bias: float
    weights: tuple[float, ...]

    def predict(self, standardized: np.ndarray) -> float:
        return self.bias + float(
            np.dot(np.asarray(self.weights), standardized)
        )


@dataclass(frozen=True)
class AdvisorModel:
    """A trained fast-path advisor, ready to rank design points."""

    feature_p: int
    block_size: int
    sample_cap: int
    ridge_lambda: float
    mean: tuple[float, ...]
    scale: tuple[float, ...]
    heads: tuple[RidgeHead, ...]
    training: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(FEATURE_NAMES)
        if len(self.mean) != n or len(self.scale) != n:
            raise AdvisorModelError(
                "standardization vectors must match the feature schema "
                f"({n} features); got mean[{len(self.mean)}], "
                f"scale[{len(self.scale)}]"
            )
        if not self.heads:
            raise AdvisorModelError("an advisor model needs >= 1 head")
        for head in self.heads:
            if len(head.weights) != n:
                raise AdvisorModelError(
                    f"head ({head.format_name}, p={head.partition_size}) "
                    f"has {len(head.weights)} weights; expected {n}"
                )

    # ------------------------------------------------------------------
    @property
    def formats(self) -> tuple[str, ...]:
        return tuple(sorted({h.format_name for h in self.heads}))

    @property
    def partitions(self) -> tuple[int, ...]:
        return tuple(sorted({h.partition_size for h in self.heads}))

    def covers(self, formats, partitions) -> list[str]:
        """Design points the model has no head for (empty = covered)."""
        trained = {(h.format_name, h.partition_size) for h in self.heads}
        return [
            f"({name}, p={p})"
            for p in partitions
            for name in formats
            if (name, p) not in trained
        ]

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def standardize(self, features: Features) -> np.ndarray:
        return (features.as_array() - np.asarray(self.mean)) / np.asarray(
            self.scale
        )

    def predict_log_cycles(
        self, features: Features
    ) -> dict[tuple[str, int], float]:
        """Predicted ``log1p(total_cycles)`` per trained design point."""
        z = self.standardize(features)
        return {
            (head.format_name, head.partition_size): head.predict(z)
            for head in self.heads
        }

    def predict_matrix(self, matrix) -> dict[tuple[str, int], float]:
        """Predicted cycles (not log) straight from a matrix."""
        features = extract_features(
            matrix, self.feature_p, self.block_size, self.sample_cap
        )
        return {
            key: float(np.expm1(value))
            for key, value in self.predict_log_cycles(features).items()
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        payload = {
            "schema": ADVISOR_MODEL_SCHEMA,
            "feature_p": self.feature_p,
            "block_size": self.block_size,
            "sample_cap": self.sample_cap,
            "ridge_lambda": self.ridge_lambda,
            "features": list(FEATURE_NAMES),
            "standardize": {
                "mean": list(self.mean),
                "scale": list(self.scale),
            },
            "heads": [
                {
                    "format": head.format_name,
                    "partition_size": head.partition_size,
                    "bias": head.bias,
                    "weights": list(head.weights),
                }
                for head in self.heads
            ],
            "training": dict(self.training),
        }
        payload["digest"] = _payload_digest(payload)
        return payload

    def to_bytes(self) -> bytes:
        return _canonical_bytes(self.to_payload()) + b"\n"

    @property
    def digest(self) -> str:
        # Cached in __dict__ (the dataclass is frozen): the digest is
        # re-read on every fast query's provenance stamp, and
        # re-serializing the whole artifact each time would eat a
        # measurable slice of the fast path's latency budget.
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = self.to_payload()["digest"]
            self.__dict__["_digest"] = cached
        return cached


def model_from_payload(payload: object) -> AdvisorModel:
    """Validate a parsed artifact payload into an :class:`AdvisorModel`.

    Strict: unknown schema versions, a feature schema that disagrees
    with the running library, and digest mismatches are all refused.
    """
    if not isinstance(payload, dict):
        raise AdvisorModelError(
            "advisor model must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema != ADVISOR_MODEL_SCHEMA:
        raise AdvisorModelError(
            f"unsupported advisor model schema {schema!r} "
            f"(expected {ADVISOR_MODEL_SCHEMA}); retrain with "
            "`repro advisor train`"
        )
    features = payload.get("features")
    if tuple(features or ()) != FEATURE_NAMES:
        raise AdvisorModelError(
            "feature schema mismatch: the artifact was trained on "
            f"{features!r} but this library computes "
            f"{list(FEATURE_NAMES)!r}; retrain with "
            "`repro advisor train`"
        )
    recorded = payload.get("digest")
    expected = _payload_digest(payload)
    if recorded != expected:
        raise AdvisorModelError(
            f"advisor model digest mismatch: recorded {recorded!r}, "
            f"recomputed {expected!r} (corrupt or edited artifact)"
        )
    try:
        standardize = payload["standardize"]
        heads = tuple(
            RidgeHead(
                format_name=str(entry["format"]),
                partition_size=int(entry["partition_size"]),
                bias=float(entry["bias"]),
                weights=tuple(float(w) for w in entry["weights"]),
            )
            for entry in payload["heads"]
        )
        return AdvisorModel(
            feature_p=int(payload["feature_p"]),
            block_size=int(payload["block_size"]),
            sample_cap=int(payload["sample_cap"]),
            ridge_lambda=float(payload["ridge_lambda"]),
            mean=tuple(float(v) for v in standardize["mean"]),
            scale=tuple(float(v) for v in standardize["scale"]),
            heads=heads,
            training=dict(payload.get("training", {})),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise AdvisorModelError(
            f"malformed advisor model payload: {error!r}"
        ) from error


def save_model(model: AdvisorModel, path: str | Path) -> Path:
    """Write the canonical artifact bytes (digest included)."""
    return io_atomic.atomic_write_bytes(
        Path(path), model.to_bytes()
    )


def load_model(path: str | Path) -> AdvisorModel:
    """Read, parse and verify an ``advisor_model/v1`` artifact."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise AdvisorModelError(
            f"cannot read advisor model {path}: {error}"
        ) from error
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise AdvisorModelError(
            f"{path} is not valid JSON: {error}"
        ) from error
    return model_from_payload(payload)
