"""``recommend_fast``: O(features) format advice with exact fallback.

The fast path, end to end:

1. extract the bounded feature vector (one subsampled profile pass);
2. score every trained ``(format, partition size)`` head — a handful
   of dot products;
3. filter through the *exact* constraint check (resources and power
   are workload-independent, precomputed per design point);
4. rank by the predicted objective.

The prediction carries a **margin** — the relative gap between the
top two design points.  Below the caller's confidence threshold the
advice is not trusted: with ``verify=True`` the exact vectorized
model re-ranks the candidates and its answer wins; with
``verify=False`` (the serve layer, which has its own exact path) the
advice is returned flagged ``low_margin`` so the caller can fall back
itself.

Only the ``latency`` objective is predictable (the heads model cycle
counts); any other objective raises :class:`~repro.errors.AdvisorError`
so callers degrade to the exact path instead of getting a silently
wrong ranking.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.recommend import (
    Constraints,
    PredictedCandidate,
    PredictedRecommendation,
    Recommendation,
    rank_predictions,
    recommend,
)
from ..errors import AdvisorError
from ..hardware import DEFAULT_CONFIG, estimate_power, estimate_resources
from ..matrix import SparseMatrix
from .features import extract_features
from .model import AdvisorModel

__all__ = ["FastAdvice", "recommend_fast", "static_estimates"]


@functools.lru_cache(maxsize=256)
def _static_estimates(format_name: str, partition_size: int):
    """Workload-independent (resources, dynamic W) per design point.

    Cached so repeated fast queries never re-run the resource model.
    """
    config = DEFAULT_CONFIG.with_partition_size(partition_size)
    resources = estimate_resources(format_name, config)
    power = estimate_power(format_name, config, resources)
    return resources, power.dynamic_w


def static_estimates(format_name: str, partition_size: int):
    """Public, cached view of the exact static estimates."""
    return _static_estimates(format_name, partition_size)


@dataclass(frozen=True)
class FastAdvice:
    """The fast path's answer, with its provenance spelled out.

    ``verified`` means the exact model produced the ranking (the
    margin fell below the threshold and ``verify=True``);
    ``low_margin`` means the prediction was below threshold whether or
    not it was verified.
    """

    objective: str
    model_digest: str
    prediction: PredictedRecommendation
    margin: float
    margin_threshold: float
    low_margin: bool
    verified: bool
    exact: Recommendation | None = None

    @property
    def ranking(self) -> tuple[PredictedCandidate, ...]:
        return self.prediction.ranking

    @property
    def best_format(self) -> str:
        if self.exact is not None:
            return self.exact.format_name
        return self.prediction.format_name

    @property
    def best_partition_size(self) -> int:
        if self.exact is not None:
            return self.exact.partition_size
        return self.prediction.partition_size

    @property
    def n_rejected(self) -> int:
        return len(self.prediction.rejected)

    @property
    def source(self) -> str:
        return "verified" if self.verified else "fast"


def recommend_fast(
    matrix: SparseMatrix,
    model: AdvisorModel,
    objective: str = "latency",
    formats: Sequence[str] | None = None,
    partitions: Sequence[int] | None = None,
    constraints: Constraints | None = None,
    margin_threshold: float = 0.0,
    verify: bool = True,
) -> FastAdvice:
    """Rank design points for ``matrix`` in O(features).

    Raises :class:`AdvisorError` when the question is outside the
    model's coverage (objective other than latency, or a format /
    partition size with no trained head) — the caller's cue to use
    the exact path.
    """
    if objective != "latency":
        raise AdvisorError(
            f"the fast advisor predicts the 'latency' objective only; "
            f"{objective!r} needs the exact path"
        )
    if margin_threshold < 0:
        raise AdvisorError(
            f"margin threshold must be >= 0, got {margin_threshold}"
        )
    formats = tuple(formats) if formats is not None else model.formats
    partitions = (
        tuple(partitions) if partitions is not None
        else model.partitions
    )
    missing = model.covers(formats, partitions)
    if missing:
        raise AdvisorError(
            "the advisor model has no trained head for "
            + ", ".join(missing)
            + "; retrain with these design points or use the exact path"
        )
    features = extract_features(
        matrix, model.feature_p, model.block_size, model.sample_cap
    )
    predicted_log = model.predict_log_cycles(features)
    candidates = []
    for p in sorted(partitions):
        for name in sorted(formats):
            resources, dynamic_w = _static_estimates(name, p)
            candidates.append(
                PredictedCandidate(
                    format_name=name,
                    partition_size=p,
                    value=float(np.expm1(predicted_log[(name, p)])),
                    resources=resources,
                    dynamic_power_w=dynamic_w,
                )
            )
    prediction = rank_predictions(candidates, objective, constraints)
    margin = prediction.margin
    low_margin = (
        math.isfinite(margin) and margin < margin_threshold
    )
    exact = None
    if low_margin and verify:
        exact = recommend(
            matrix,
            objective=objective,
            formats=formats,
            partition_sizes=partitions,
            constraints=constraints,
        )
    return FastAdvice(
        objective=objective,
        model_digest=model.digest,
        prediction=prediction,
        margin=margin,
        margin_threshold=margin_threshold,
        low_margin=low_margin,
        verified=exact is not None,
        exact=exact,
    )
