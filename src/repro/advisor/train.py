"""Closed-form ridge training for the fast-path advisor.

Pure numpy, no solver dependencies: features are standardized over the
training workloads, and each ``(format, partition size)`` head solves

    (Zᵀ Z + λ I) w = Zᵀ y,    y = log1p(total_cycles)

via ``numpy.linalg.solve``.  Everything is deterministic — workloads
are processed in sorted-name order, observations are deduplicated by
content, and the resulting artifact is byte-identical across sweep
worker counts and manifest orderings (the determinism suite pins
this).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..engine.runner import SweepRunner
from ..engine.specs import WorkloadSpec
from ..errors import AdvisorError
from .dataset import (
    TrainingRow,
    features_for_specs,
    rows_digest,
    rows_from_outcome,
)
from .features import DEFAULT_FEATURE_P, SAMPLE_CAP
from .model import AdvisorModel, RidgeHead

__all__ = ["sweep_training_rows", "train_model"]


def sweep_training_rows(
    specs: Sequence[WorkloadSpec],
    formats: Sequence[str],
    partitions: Sequence[int],
    workers: int = 1,
) -> list[TrainingRow]:
    """Run the exact model over ``specs`` and collect training rows."""
    runner = SweepRunner(max_workers=workers, error_policy="fail_fast")
    outcome = runner.run_grid(
        list(specs), tuple(formats), partition_sizes=tuple(partitions)
    )
    return rows_from_outcome(outcome, specs)


def _standardize(
    matrix: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    mean = matrix.mean(axis=0)
    scale = matrix.std(axis=0)
    scale = np.where(scale > 1e-12, scale, 1.0)
    return (matrix - mean) / scale, mean, scale


def train_model(
    specs: Sequence[WorkloadSpec],
    rows: Sequence[TrainingRow],
    *,
    feature_p: int = DEFAULT_FEATURE_P,
    block_size: int = 4,
    sample_cap: int = SAMPLE_CAP,
    ridge_lambda: float = 0.3,
    training: Mapping | None = None,
) -> AdvisorModel:
    """Fit one ridge head per observed (format, partition size).

    ``specs`` supplies the matrices (features are extracted once per
    workload); ``rows`` supplies the targets.  Rows whose recipe
    digest matches none of ``specs`` are ignored; a head is trained on
    exactly the workloads it was observed on.
    """
    if not rows:
        raise AdvisorError("no training rows; run or point at a sweep")
    known = {spec.recipe_digest for spec in specs}
    unique: dict[tuple, TrainingRow] = {}
    for row in rows:
        if row.recipe_digest in known:
            unique[row.key()] = row
    rows = sorted(unique.values(), key=TrainingRow.key)
    if not rows:
        raise AdvisorError(
            "no training rows match the given workloads (recipe "
            "digests disagree); was the manifest produced from a "
            "different zoo seed?"
        )
    observed = {row.recipe_digest for row in rows}
    used = sorted(
        (s for s in specs if s.recipe_digest in observed),
        key=lambda s: s.name,
    )
    features = features_for_specs(
        used, feature_p, block_size, sample_cap
    )
    design = np.array(
        [features[s.recipe_digest].vector for s in used],
        dtype=np.float64,
    )
    standardized, mean, scale = _standardize(design)
    row_index = {s.recipe_digest: i for i, s in enumerate(used)}

    by_head: dict[tuple[str, int], list[TrainingRow]] = {}
    for row in rows:
        by_head.setdefault(
            (row.format_name, row.partition_size), []
        ).append(row)

    heads: list[RidgeHead] = []
    identity = np.eye(design.shape[1])
    for (format_name, p), head_rows in sorted(by_head.items()):
        index = np.array(
            [row_index[r.recipe_digest] for r in head_rows]
        )
        z = standardized[index]
        y = np.log1p(
            np.array(
                [r.total_cycles for r in head_rows], dtype=np.float64
            )
        )
        bias = float(y.mean())
        weights = np.linalg.solve(
            z.T @ z + ridge_lambda * identity, z.T @ (y - bias)
        )
        heads.append(
            RidgeHead(
                format_name=format_name,
                partition_size=p,
                bias=bias,
                weights=tuple(float(w) for w in weights),
            )
        )

    meta = dict(training or {})
    meta.update(
        n_workloads=len(used),
        n_rows=len(rows),
        data_digest=rows_digest(rows),
    )
    return AdvisorModel(
        feature_p=feature_p,
        block_size=block_size,
        sample_cap=sample_cap,
        ridge_lambda=ridge_lambda,
        mean=tuple(float(v) for v in mean),
        scale=tuple(float(v) for v in scale),
        heads=tuple(heads),
        training=meta,
    )
