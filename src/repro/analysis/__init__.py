"""Reporting utilities: text tables, ASCII figures, experiment index."""

from .experiments import EXPERIMENTS, Experiment, experiment, experiment_ids
from .compare import MetricDelta, compare_records, comparison_table
from .figures import bar_chart, grouped_series, scatter_text
from .integrity import (
    detection_coverage_table,
    integrity_cost_table,
    integrity_report_text,
)
from .manifests import (
    manifest_diff_table,
    manifest_summary_table,
    profile_table,
)
from .report import characterization_report
from .tables import format_table, format_value
from .timeline import render_timeline

__all__ = [
    "EXPERIMENTS",
    "manifest_diff_table",
    "manifest_summary_table",
    "profile_table",
    "Experiment",
    "experiment",
    "experiment_ids",
    "MetricDelta",
    "compare_records",
    "comparison_table",
    "bar_chart",
    "grouped_series",
    "scatter_text",
    "format_table",
    "format_value",
    "render_timeline",
    "characterization_report",
    "detection_coverage_table",
    "integrity_cost_table",
    "integrity_report_text",
]
