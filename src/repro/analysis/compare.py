"""A/B comparison of saved characterization results.

Model constants, workload scales and format implementations all
evolve; this module diffs two record sets (as produced by
:mod:`repro.core.store`) coordinate by coordinate and reports the
metric deltas — the regression-tracking companion to the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import SimulationError
from .tables import format_table

__all__ = ["MetricDelta", "compare_records", "comparison_table"]

#: Metrics compared by default.
DEFAULT_METRICS = (
    "sigma",
    "total_cycles",
    "balance_ratio",
    "throughput_bytes_per_s",
    "bandwidth_utilization",
    "dynamic_power_w",
)


def _key(record: dict) -> tuple:
    return (
        record.get("workload"),
        record.get("format"),
        record.get("partition_size"),
    )


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change at one experiment coordinate."""

    workload: str
    format_name: str
    partition_size: int
    metric: str
    before: float
    after: float

    @property
    def absolute(self) -> float:
        return self.after - self.before

    @property
    def relative(self) -> float:
        """Relative change; 0 for unchanged, inf for 0 -> non-zero."""
        if self.before == 0.0:
            return float("inf") if self.after != 0.0 else 0.0
        return (self.after - self.before) / abs(self.before)


def compare_records(
    before: Sequence[dict],
    after: Sequence[dict],
    metrics: Sequence[str] = DEFAULT_METRICS,
    min_relative: float = 0.0,
) -> list[MetricDelta]:
    """Diff two record sets over their shared coordinates.

    Returns one :class:`MetricDelta` per (coordinate, metric) whose
    relative change exceeds ``min_relative``, sorted by magnitude.
    """
    before_by_key = {_key(r): r for r in before}
    after_by_key = {_key(r): r for r in after}
    shared = sorted(
        set(before_by_key) & set(after_by_key),
        key=lambda k: tuple(str(part) for part in k),
    )
    if not shared:
        raise SimulationError(
            "the record sets share no (workload, format, partition) "
            "coordinates"
        )
    deltas = []
    for key in shared:
        old, new = before_by_key[key], after_by_key[key]
        for metric in metrics:
            if metric not in old or metric not in new:
                continue
            delta = MetricDelta(
                workload=key[0],
                format_name=key[1],
                partition_size=key[2],
                metric=metric,
                before=float(old[metric]),
                after=float(new[metric]),
            )
            if abs(delta.relative) > min_relative:
                deltas.append(delta)
    deltas.sort(key=lambda d: abs(d.relative), reverse=True)
    return deltas


def comparison_table(
    deltas: Sequence[MetricDelta], limit: int = 20
) -> str:
    """Render the largest deltas as a text table."""
    rows = [
        [
            d.workload,
            d.format_name,
            d.partition_size,
            d.metric,
            d.before,
            d.after,
            f"{d.relative:+.1%}" if d.relative != float("inf") else "new",
        ]
        for d in deltas[:limit]
    ]
    return format_table(
        ["workload", "format", "p", "metric", "before", "after", "delta"],
        rows,
        title=f"Top {min(limit, len(deltas))} metric changes "
        f"({len(deltas)} total)",
    )
