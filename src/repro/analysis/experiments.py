"""Registry of the paper's tables and figures.

Maps every experiment ID to its workload, parameters, the modules that
implement it, and the benchmark that regenerates it — the per-
experiment index DESIGN.md documents.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError

__all__ = ["Experiment", "EXPERIMENTS", "experiment", "experiment_ids"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact of the paper's evaluation."""

    id: str
    artifact: str
    description: str
    workloads: str
    modules: tuple[str, ...]
    benchmark: str


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "T1", "Table 1", "Workload inventory (SuiteSparse stand-ins)",
        "20 Table 1 matrices",
        ("repro.workloads.suitesparse",),
        "benchmarks/test_table1_workloads.py",
    ),
    Experiment(
        "F3", "Figure 3", "Partition density & spatial-locality statistics",
        "SuiteSparse stand-ins, p in {8, 16, 32}",
        ("repro.partition",),
        "benchmarks/test_fig3_density_stats.py",
    ),
    Experiment(
        "F4", "Figure 4", "Decompression overhead sigma per matrix",
        "SuiteSparse stand-ins, p = 16",
        ("repro.core.simulator", "repro.hardware.decompressors"),
        "benchmarks/test_fig4_sigma_suitesparse.py",
    ),
    Experiment(
        "F5", "Figure 5", "Sigma vs density",
        "random matrices, density 1e-4 .. 0.5, p = 16",
        ("repro.workloads.random_matrices", "repro.core.simulator"),
        "benchmarks/test_fig5_sigma_random.py",
    ),
    Experiment(
        "F6", "Figure 6", "Sigma vs band width",
        "band matrices, width 1 .. 64, p = 16",
        ("repro.workloads.band", "repro.core.simulator"),
        "benchmarks/test_fig6_sigma_band.py",
    ),
    Experiment(
        "F7", "Figure 7", "Average sigma vs partition size",
        "all three groups, p in {8, 16, 32}",
        ("repro.core.sweep",),
        "benchmarks/test_fig7_sigma_partition.py",
    ),
    Experiment(
        "F8", "Figure 8", "Balance ratio (memory vs compute latency)",
        "all three groups, p in {8, 16, 32}",
        ("repro.hardware.pipeline", "repro.core.sweep"),
        "benchmarks/test_fig8_balance_ratio.py",
    ),
    Experiment(
        "F9", "Figure 9", "Throughput vs total latency",
        "8000 x 8000 matrices, p in {8, 16, 32}",
        ("repro.core.simulator",),
        "benchmarks/test_fig9_throughput.py",
    ),
    Experiment(
        "F10", "Figure 10", "Memory-bandwidth utilization vs density",
        "random matrices, p = 16",
        ("repro.formats", "repro.core.simulator"),
        "benchmarks/test_fig10_bw_random.py",
    ),
    Experiment(
        "F11", "Figure 11", "Memory-bandwidth utilization vs band width",
        "band matrices, p = 16",
        ("repro.formats", "repro.core.simulator"),
        "benchmarks/test_fig11_bw_band.py",
    ),
    Experiment(
        "F12", "Figure 12", "Bandwidth utilization vs partition size",
        "all three groups, p in {8, 16, 32}",
        ("repro.core.sweep",),
        "benchmarks/test_fig12_bw_partition.py",
    ),
    Experiment(
        "T2", "Table 2", "Resource utilization and dynamic power",
        "formats x p in {8, 16, 32}",
        ("repro.hardware.resources", "repro.hardware.power"),
        "benchmarks/test_table2_resources.py",
    ),
    Experiment(
        "F13", "Figure 13", "Dynamic power breakdown (logic/BRAM/signals)",
        "formats x p in {8, 16, 32}",
        ("repro.hardware.power",),
        "benchmarks/test_fig13_power_breakdown.py",
    ),
    Experiment(
        "F14", "Figure 14", "Normalized six-metric summary per group",
        "all three groups",
        ("repro.core.summary",),
        "benchmarks/test_fig14_summary.py",
    ),
)

_BY_ID = {exp.id: exp for exp in EXPERIMENTS}


def experiment(exp_id: str) -> Experiment:
    """Look up one experiment by ID (e.g. ``"F5"``)."""
    try:
        return _BY_ID[exp_id]
    except KeyError:
        raise WorkloadError(
            f"unknown experiment {exp_id!r}; known: "
            f"{', '.join(_BY_ID)}"
        ) from None


def experiment_ids() -> tuple[str, ...]:
    return tuple(_BY_ID)
