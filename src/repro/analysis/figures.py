"""Plain-text figure rendering (bars and series).

Each paper figure is regenerated as the numeric series behind it plus
an ASCII rendition, so a terminal run of the benchmark suite shows the
same shapes the paper plots.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["bar_chart", "grouped_series", "scatter_text"]

_BAR_WIDTH = 40


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    log_scale: bool = False,
    width: int = _BAR_WIDTH,
) -> str:
    """Horizontal ASCII bar chart of one labelled series."""
    if not values:
        return title
    finite = [v for v in values.values() if math.isfinite(v)]
    top = max(finite) if finite else 1.0
    lines = [title] if title else []
    label_width = max(len(label) for label in values)
    for label, value in values.items():
        if not math.isfinite(value):
            bar = "?"
        elif top <= 0:
            bar = ""
        elif log_scale and value > 0 and top > 1:
            fraction = math.log1p(value) / math.log1p(top)
            bar = "#" * max(1, int(round(fraction * width)))
        else:
            bar = "#" * int(round(max(value, 0.0) / top * width))
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.4g}")
    return "\n".join(lines)


def grouped_series(
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render several named series against shared x labels as a grid."""
    lines = [title] if title else []
    label_width = max([len(name) for name in series] + [6])
    cells = [f"{x!s:>10}" for x in x_labels]
    lines.append(" " * label_width + "".join(cells))
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} points, expected "
                f"{len(x_labels)}"
            )
        row = "".join(f"{v:>10.{precision}g}" for v in values)
        lines.append(name.ljust(label_width) + row)
    return "\n".join(lines)


def scatter_text(
    points: Mapping[str, tuple[float, float]],
    x_name: str,
    y_name: str,
    title: str = "",
) -> str:
    """List labelled (x, y) points plus the y/x ratio per point."""
    lines = [title] if title else []
    label_width = max(len(label) for label in points) if points else 5
    lines.append(
        f"{'label'.ljust(label_width)}  {x_name:>12}  {y_name:>12}  "
        f"{'ratio':>8}"
    )
    for label, (x, y) in points.items():
        ratio = y / x if x else math.inf
        lines.append(
            f"{label.ljust(label_width)}  {x:>12.4g}  {y:>12.4g}  "
            f"{ratio:>8.3g}"
        )
    return "\n".join(lines)
