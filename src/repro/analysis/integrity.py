"""Rendered tables for integrity-campaign reports.

Companion of :mod:`repro.core.integrity`: turns an
:class:`~repro.core.integrity.IntegrityReport` into the aligned
plain-text tables ``repro integrity`` prints — per-format detection
coverage (split by corruption kind) and the cost side (framing byte
overhead, integrity-check cycle overhead).
"""

from __future__ import annotations

from ..core.integrity import IntegrityReport
from .tables import format_table

__all__ = [
    "detection_coverage_table",
    "integrity_cost_table",
    "integrity_report_text",
]


def detection_coverage_table(report: IntegrityReport) -> str:
    """Per (format, kind): how injected corruption was caught."""
    rows = []
    for summary in report.summaries:
        for kc in summary.coverage:
            rows.append([
                summary.format_name,
                kc.kind,
                kc.injections,
                kc.structural,
                kc.crc,
                kc.harmless,
                kc.silent,
                kc.uncaught,
                kc.detected_fraction,
            ])
    return format_table(
        [
            "format", "kind", "inject", "struct", "crc",
            "harmless", "silent", "uncaught", "detected",
        ],
        rows,
        title=(
            f"Detection coverage ({report.shape[0]}x{report.shape[1]}, "
            f"nnz={report.nnz}, seed={report.seed})"
        ),
    )


def integrity_cost_table(report: IntegrityReport) -> str:
    """Per format: framing byte overhead and check cycle overhead."""
    rows = []
    for summary in report.summaries:
        if summary.check_overheads:
            for co in summary.check_overheads:
                rows.append([
                    summary.format_name,
                    co.partition_size,
                    summary.raw_bytes,
                    summary.framed_bytes,
                    summary.framing_overhead_fraction,
                    co.base_cycles,
                    co.checked_cycles,
                    co.overhead_fraction,
                ])
        else:
            # formats without a hardware decompressor model still have
            # the byte-accounting side
            rows.append([
                summary.format_name, "-",
                summary.raw_bytes, summary.framed_bytes,
                summary.framing_overhead_fraction, "-", "-", "-",
            ])
    return format_table(
        [
            "format", "p", "raw_B", "framed_B", "frame_ovh",
            "cycles", "checked", "cycle_ovh",
        ],
        rows,
        title="Integrity cost (framing bytes, check cycles)",
    )


def integrity_report_text(report: IntegrityReport) -> str:
    """Both tables plus the campaign-level verdict line."""
    verdict = (
        f"{report.total_injections} injections, "
        f"{report.total_uncaught} uncaught non-taxonomy exception(s)"
    )
    return "\n\n".join([
        detection_coverage_table(report),
        integrity_cost_table(report),
        verdict,
    ])
