"""Rendering and diffing of sweep run manifests.

The plain-text companion of :mod:`repro.observability.manifest`:
``manifest_summary_table`` is what ``python -m repro stats <manifest>``
prints, ``manifest_diff_table`` is the ``--against`` regression view
(built on :func:`repro.analysis.compare.compare_records`, since cell
records deliberately share the store-record field names), and
``profile_table`` summarizes live :class:`~repro.engine.RunTelemetry`
for ``repro sweep --profile``.
"""

from __future__ import annotations

from ..observability.manifest import Manifest
from .compare import compare_records, comparison_table
from .tables import format_table

__all__ = [
    "manifest_summary_table",
    "manifest_diff_table",
    "profile_table",
    "MANIFEST_DIFF_METRICS",
]

#: Cell metrics diffed by ``repro stats --against`` by default.
MANIFEST_DIFF_METRICS = (
    "total_cycles",
    "sigma",
    "balance_ratio",
    "total_bytes",
    "framed_total_bytes",
    "wall_s",
)


def _cache_rows(cache: dict) -> list[list]:
    hits = cache.get("hits", {})
    misses = cache.get("misses", {})
    rows = []
    for kind in sorted(set(hits) | set(misses)):
        hit, miss = hits.get(kind, 0), misses.get(kind, 0)
        total = hit + miss
        rate = hit / total if total else 0.0
        rows.append([kind, hit, miss, f"{rate:.1%}"])
    return rows


def manifest_summary_table(
    manifest: Manifest, slowest: int = 5
) -> str:
    """Human-readable digest of one run manifest."""
    header = manifest.header
    overview = format_table(
        ["field", "value"],
        [
            ["cells", manifest.n_cells],
            ["workloads", len(header.get("workloads", ()))],
            ["formats", ", ".join(header.get("formats", ()))],
            [
                "partition sizes",
                ", ".join(
                    str(p) for p in header.get("partition_sizes", ())
                ),
            ],
            ["workers", manifest.workers],
            ["chunks", header.get("n_chunks", 1)],
            ["wall time (s)", f"{manifest.wall_s:.3f}"],
            ["failed cells", manifest.n_failed],
        ],
        title="Sweep run manifest",
    )
    blocks = [overview]

    if manifest.failed:
        blocks.append(
            format_table(
                ["workload", "format", "p", "error", "attempts"],
                [
                    [
                        f["workload"],
                        f["format"],
                        f["partition_size"],
                        f"{f['error_type']}: {f['message']}"[:60],
                        f.get("attempts", 1),
                    ]
                    for f in manifest.failed
                ],
                title=f"Failed cells ({manifest.n_failed})",
            )
        )

    cache_rows = _cache_rows(manifest.cache_counters())
    if cache_rows:
        blocks.append(
            format_table(
                ["kind", "hits", "misses", "hit rate"],
                cache_rows,
                title="Cache effectiveness",
            )
        )

    by_workload: dict[str, list[dict]] = {}
    for cell in manifest.cells:
        by_workload.setdefault(cell["workload"], []).append(cell)
    if by_workload:
        blocks.append(
            format_table(
                ["workload", "cells", "wall (s)", "mean cycles"],
                [
                    [
                        name,
                        len(cells),
                        sum(c["wall_s"] for c in cells),
                        sum(c["total_cycles"] for c in cells)
                        / len(cells),
                    ]
                    for name, cells in sorted(by_workload.items())
                ],
                title="Per-workload totals",
            )
        )

    if slowest > 0 and manifest.cells:
        ranked = sorted(
            manifest.cells, key=lambda c: c["wall_s"], reverse=True
        )[:slowest]
        blocks.append(
            format_table(
                ["workload", "format", "p", "wall (ms)", "cycles"],
                [
                    [
                        c["workload"],
                        c["format"],
                        c["partition_size"],
                        c["wall_s"] * 1e3,
                        c["total_cycles"],
                    ]
                    for c in ranked
                ],
                title=f"Slowest {len(ranked)} cells",
            )
        )
    return "\n\n".join(blocks)


def manifest_diff_table(
    before: Manifest,
    after: Manifest,
    min_relative: float = 0.01,
    limit: int = 20,
    metrics: tuple[str, ...] = MANIFEST_DIFF_METRICS,
) -> str:
    """Cell-by-cell regression diff of two manifests.

    Model metrics (``total_cycles``, ``sigma``, ...) are deterministic,
    so any delta there is a real behavior change; ``wall_s`` deltas
    flag perf regressions of the runner itself (noisy — read with the
    usual benchmarking caveats).
    """
    lines = []
    removed = before.cell_coords() - after.cell_coords()
    added = after.cell_coords() - before.cell_coords()
    if removed:
        lines.append(f"cells only in baseline: {len(removed)}")
    if added:
        lines.append(f"cells only in new run: {len(added)}")
    deltas = compare_records(
        list(before.cells),
        list(after.cells),
        metrics=metrics,
        min_relative=min_relative,
    )
    if not deltas:
        lines.append(
            "no metric changes above the threshold "
            f"({min_relative:.1%}) on the shared cells"
        )
    else:
        lines.append(comparison_table(deltas, limit=limit))
    return "\n".join(lines)


def profile_table(telemetry, slowest: int = 5) -> str:
    """Summary of live :class:`~repro.engine.RunTelemetry`."""
    metrics = telemetry.metrics
    cell_timer = metrics.timer("sweep.cell")
    overview = format_table(
        ["field", "value"],
        [
            ["cells", len(telemetry.cells)],
            ["workers", telemetry.workers],
            ["chunks", telemetry.n_chunks],
            ["wall time (s)", f"{telemetry.wall_s:.3f}"],
            ["cell time total (s)", f"{cell_timer.total_s:.3f}"],
            ["cell time mean (ms)", f"{cell_timer.mean_s * 1e3:.2f}"],
        ],
        title="Sweep profile",
    )
    blocks = [overview]
    cache_counters = metrics.counters_with_prefix("cache.")
    if cache_counters:
        blocks.append(
            format_table(
                ["counter", "value"],
                [
                    [name, value]
                    for name, value in sorted(cache_counters.items())
                ],
                title="Cache counters",
            )
        )
    recovery_names = (
        "sweep.cells.failed", "sweep.cells.replayed",
        "sweep.pool_restarts", "sweep.chunk_retries",
        "sweep.chunk_bisections", "sweep.degraded",
    )
    recovery = {
        name: metrics.counter(name)
        for name in recovery_names
        if metrics.counter(name)
    }
    if recovery:
        blocks.append(
            format_table(
                ["counter", "value"],
                [[name, value] for name, value in sorted(recovery.items())],
                title="Robustness counters",
            )
        )
    if slowest > 0 and telemetry.cells:
        ranked = sorted(
            telemetry.cells, key=lambda c: c.wall_s, reverse=True
        )[:slowest]
        blocks.append(
            format_table(
                ["workload", "format", "p", "wall (ms)"],
                [
                    [
                        c.workload,
                        c.format_name,
                        c.partition_size,
                        c.wall_s * 1e3,
                    ]
                    for c in ranked
                ],
                title=f"Slowest {len(ranked)} cells",
            )
        )
    return "\n\n".join(blocks)
