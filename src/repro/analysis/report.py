"""One-stop characterization report.

Bundles everything the library measures about one matrix — the
Figure-3 statistics, the full format-by-partition metric grid, the
pipeline-bound diagnosis, the Figure-14 scores and the constrained
recommendation — into a single plain-text report.  Used by the CLI's
``report`` sub-command and handy as an executable summary of what the
paper's methodology says about a workload.
"""

from __future__ import annotations

from typing import Sequence

from ..core.recommend import Constraints, recommend
from ..core.simulator import SpmvSimulator
from ..core.summary import SUMMARY_METRICS, summarize
from ..formats.registry import PAPER_FORMATS
from ..hardware.config import DEFAULT_CONFIG, HardwareConfig
from ..hardware.trace import trace_pipeline
from ..matrix import SparseMatrix
from ..partition import PARTITION_SIZES, partition_statistics
from .tables import format_table
from .timeline import render_timeline

__all__ = ["characterization_report"]


def _header(matrix: SparseMatrix, name: str) -> list[str]:
    return [
        f"# Copernicus characterization: {name}",
        "",
        f"matrix: {matrix.n_rows} x {matrix.n_cols}, nnz {matrix.nnz}, "
        f"density {matrix.density:.4%}, bandwidth {matrix.bandwidth()}, "
        f"non-zero rows {matrix.nnz_rows()}",
        "",
    ]


def _locality_section(matrix: SparseMatrix) -> list[str]:
    rows = []
    for p in PARTITION_SIZES:
        stats = partition_statistics(matrix, p)
        rows.append(
            [
                p,
                stats.n_nonzero_partitions,
                stats.nonzero_partition_fraction,
                stats.avg_partition_density,
                stats.avg_row_density,
                stats.avg_nnz_row_fraction,
            ]
        )
    return [
        "## Partition statistics (Figure 3 view)",
        "",
        format_table(
            ["p", "nz parts", "nz frac", "part density", "row density",
             "nz-row frac"],
            rows,
        ),
        "",
    ]


def _metric_grid(
    matrix: SparseMatrix,
    formats: Sequence[str],
    base_config: HardwareConfig,
) -> list[str]:
    lines = ["## Metrics per format and partition size", ""]
    for p in PARTITION_SIZES:
        simulator = SpmvSimulator(base_config.with_partition_size(p))
        profiles = simulator.profiles(matrix)
        rows = []
        for name in formats:
            result = simulator.run_format(name, profiles, "")
            rows.append(
                [
                    name,
                    result.sigma,
                    result.total_seconds * 1e6,
                    result.balance_ratio,
                    result.throughput_bytes_per_s / 1e9,
                    result.bandwidth_utilization,
                    result.dynamic_power_w,
                ]
            )
        lines.append(
            format_table(
                ["format", "sigma", "latency us", "balance",
                 "thr GB/s", "bw util", "dyn W"],
                rows,
                title=f"partition size {p}",
            )
        )
        lines.append("")
    return lines


def _summary_section(
    matrix: SparseMatrix,
    formats: Sequence[str],
    base_config: HardwareConfig,
) -> list[str]:
    results = []
    for p in PARTITION_SIZES:
        simulator = SpmvSimulator(base_config.with_partition_size(p))
        profiles = simulator.profiles(matrix)
        results.extend(
            simulator.run_format(name, profiles, "") for name in formats
        )
    scores = sorted(
        summarize(results, formats), key=lambda s: s.overall, reverse=True
    )
    metric_names = list(SUMMARY_METRICS)
    return [
        "## Normalized scores (Figure 14 view; 1 = best)",
        "",
        format_table(
            ["format"] + metric_names + ["overall"],
            [
                [s.format_name]
                + [s.scores[m] for m in metric_names]
                + [s.overall]
                for s in scores
            ],
        ),
        "",
    ]


def _timeline_section(
    matrix: SparseMatrix, base_config: HardwareConfig
) -> list[str]:
    simulator = SpmvSimulator(base_config.with_partition_size(16))
    profiles = simulator.profiles(matrix)
    lines = ["## Pipeline timelines (16x16 partitions)", ""]
    for name in ("dense", "coo", "csc"):
        trace = trace_pipeline(simulator.config, name, profiles)
        lines.append(render_timeline(trace))
        lines.append("")
    return lines


def _recommendation_section(
    matrix: SparseMatrix, constraints: Constraints | None
) -> list[str]:
    lines = ["## Recommendation", ""]
    for objective in ("latency", "bandwidth", "energy"):
        choice = recommend(
            matrix, objective=objective, constraints=constraints
        )
        lines.append(
            f"* optimize {objective}: {choice.format_name} at "
            f"{choice.partition_size}x{choice.partition_size}"
        )
    lines.append("")
    return lines


def characterization_report(
    matrix: SparseMatrix,
    name: str = "workload",
    formats: Sequence[str] = PAPER_FORMATS,
    base_config: HardwareConfig = DEFAULT_CONFIG,
    constraints: Constraints | None = None,
) -> str:
    """Build the full plain-text report for one matrix."""
    lines: list[str] = []
    lines.extend(_header(matrix, name))
    lines.extend(_locality_section(matrix))
    lines.extend(_metric_grid(matrix, formats, base_config))
    lines.extend(_summary_section(matrix, formats, base_config))
    lines.extend(_timeline_section(matrix, base_config))
    lines.extend(_recommendation_section(matrix, constraints))
    return "\n".join(lines)
