"""Plain-text table rendering for benchmark and example output.

The benchmark harness prints the same rows the paper's tables and
figure series report; this module owns the formatting so every
experiment renders consistently.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell: floats compactly, everything else via str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned plain-text table."""
    rendered = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        h.ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
