"""ASCII timeline (Gantt) rendering of pipeline traces.

Turns a :class:`~repro.hardware.trace.PipelineTrace` into a terminal
chart: one lane per pipeline stage, ``#`` for busy cycles, ``.`` for
idle — making Section 4.2's "idle computation or pauses in data
transfer" directly visible.
"""

from __future__ import annotations

from typing import Sequence

from ..hardware.trace import PipelineTrace, StageInterval

__all__ = ["render_timeline"]

_DEFAULT_WIDTH = 72


def _lane(
    intervals: Sequence[StageInterval], total: int, width: int
) -> str:
    """Render one stage's busy pattern into ``width`` characters.

    Each cell covers ``total / width`` cycles and shows its busy
    fraction: ``#`` mostly busy, ``+`` partly busy, ``.`` idle.
    """
    if total <= 0:
        return " " * width
    busy = [0.0] * width
    cell_cycles = total / width
    for interval in intervals:
        first = int(interval.start / cell_cycles)
        last = min(int((interval.stop - 1) / cell_cycles), width - 1)
        for index in range(first, last + 1):
            cell_start = index * cell_cycles
            cell_stop = cell_start + cell_cycles
            overlap = min(interval.stop, cell_stop) - max(
                interval.start, cell_start
            )
            busy[index] += max(overlap, 0.0)
    cells = []
    for amount in busy:
        fraction = amount / cell_cycles
        if fraction > 0.66:
            cells.append("#")
        elif fraction > 0.05:
            cells.append("+")
        else:
            cells.append(".")
    return "".join(cells)


def render_timeline(
    trace: PipelineTrace, width: int = _DEFAULT_WIDTH
) -> str:
    """Render the three pipeline lanes plus an occupancy summary."""
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    total = trace.total_cycles
    lines = [
        f"pipeline timeline: {trace.format_name}, "
        f"p={trace.partition_size}, {trace.n_partitions} partitions, "
        f"{total} cycles ({trace.bound()}-bound)"
    ]
    for label, intervals, occupancy in (
        ("memory ", trace.memory, trace.memory_occupancy),
        ("compute", trace.compute, trace.compute_occupancy),
        ("write  ", trace.write, None),
    ):
        lane = _lane(intervals, total, width)
        suffix = f" {occupancy:5.1%}" if occupancy is not None else ""
        lines.append(f"{label} |{lane}|{suffix}")
    lines.append(
        f"bubbles: compute idle {trace.compute_idle_cycles} cy, "
        f"memory stalls {trace.memory_stall_cycles} cy"
    )
    return "\n".join(lines)
