"""Applications built on the SpMV kernel (Section 3.3): scientific
computation (CG), graph analytics (BFS / SSSP / components /
PageRank), and machine learning (pruned inference, SpMM, conv
lowering) — each running through encoded sparse formats."""

from .cg import CgResult, conjugate_gradient
from .conv import conv2d_as_spmm, im2col, prune_filters
from .engine import PartitionedSpmvEngine
from .graph_algorithms import (
    BfsResult,
    SsspResult,
    breadth_first_search,
    connected_components,
    single_source_shortest_paths,
)
from .nn import (
    SparseLayer,
    SparseMlp,
    embedding_reduction,
    identity,
    prune_dense_weights,
    random_pruned_mlp,
    relu,
)
from .pagerank import PageRankResult, pagerank, transition_matrix
from .solvers import (
    IterativeResult,
    gauss_seidel,
    jacobi,
    power_iteration,
)
from .semiring import (
    ARITHMETIC,
    BOOLEAN_OR_AND,
    TROPICAL_MIN_PLUS,
    Semiring,
    semiring_spmv,
)
from .spmm import sparse_sparse_matmul, spmm

__all__ = [
    "CgResult",
    "conjugate_gradient",
    "PartitionedSpmvEngine",
    "conv2d_as_spmm",
    "im2col",
    "prune_filters",
    "BfsResult",
    "SsspResult",
    "breadth_first_search",
    "connected_components",
    "single_source_shortest_paths",
    "ARITHMETIC",
    "BOOLEAN_OR_AND",
    "TROPICAL_MIN_PLUS",
    "Semiring",
    "semiring_spmv",
    "sparse_sparse_matmul",
    "spmm",
    "IterativeResult",
    "gauss_seidel",
    "jacobi",
    "power_iteration",
    "SparseLayer",
    "SparseMlp",
    "embedding_reduction",
    "identity",
    "prune_dense_weights",
    "random_pruned_mlp",
    "relu",
    "PageRankResult",
    "pagerank",
    "transition_matrix",
]
