"""Conjugate-gradient solver on the partitioned SpMV engine.

Section 3.3: large symmetric positive-definite PDE systems are solved
iteratively, and the key kernel of every iteration is SpMV.  This
solver runs that kernel through an encoded sparse format end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError, SimulationError
from ..matrix import SparseMatrix
from .engine import PartitionedSpmvEngine

__all__ = ["CgResult", "conjugate_gradient"]


@dataclass(frozen=True)
class CgResult:
    """Outcome of a conjugate-gradient solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    spmv_count: int
    """SpMV invocations performed — the paper's key-kernel count."""


def conjugate_gradient(
    matrix: SparseMatrix | PartitionedSpmvEngine,
    b: np.ndarray,
    format_name: str = "csr",
    partition_size: int = 16,
    tol: float = 1e-8,
    max_iterations: int | None = None,
) -> CgResult:
    """Solve ``A x = b`` for symmetric positive-definite ``A``.

    ``matrix`` may be a :class:`~repro.matrix.SparseMatrix` (encoded
    here into ``format_name``) or a pre-built engine.
    """
    if isinstance(matrix, PartitionedSpmvEngine):
        engine = matrix
    else:
        if not matrix.is_square:
            raise ShapeError(f"CG needs a square matrix, got {matrix.shape}")
        engine = PartitionedSpmvEngine(matrix, format_name, partition_size)
    rhs = np.asarray(b, dtype=np.float64).ravel()
    n = engine.shape[0]
    if rhs.size != n:
        raise ShapeError(f"b has length {rhs.size}, expected {n}")
    limit = 10 * n if max_iterations is None else max_iterations
    if limit < 1:
        raise SimulationError(f"max_iterations must be >= 1, got {limit}")

    x = np.zeros(n)
    residual = rhs.copy()
    direction = residual.copy()
    rs_old = float(residual @ residual)
    b_norm = float(np.linalg.norm(rhs))
    threshold = tol * max(b_norm, 1e-30)
    spmv_count = 0

    if np.sqrt(rs_old) <= threshold:
        return CgResult(x, 0, float(np.sqrt(rs_old)), True, 0)

    for iteration in range(1, limit + 1):
        a_dir = engine.multiply(direction)
        spmv_count += 1
        denom = float(direction @ a_dir)
        if denom <= 0.0:
            # matrix is not positive-definite along this direction.
            return CgResult(
                x, iteration, float(np.sqrt(rs_old)), False, spmv_count
            )
        alpha = rs_old / denom
        x = x + alpha * direction
        residual = residual - alpha * a_dir
        rs_new = float(residual @ residual)
        if np.sqrt(rs_new) <= threshold:
            return CgResult(
                x, iteration, float(np.sqrt(rs_new)), True, spmv_count
            )
        direction = residual + (rs_new / rs_old) * direction
        rs_old = rs_new

    return CgResult(x, limit, float(np.sqrt(rs_old)), False, spmv_count)
