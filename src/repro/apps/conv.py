"""Convolution lowered to sparse matrix multiplication.

Section 3.3: "convolving a 3D input with a given number of filters can
be represented as an equivalent matrix-matrix multiplication that
multiplies the 2D flatten weight matrix by the input matrix."  The
lowering here is the classic im2col: patches of the input become
columns, pruned filters become a sparse weight matrix, and the whole
layer runs through :func:`repro.apps.spmm.spmm`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError, WorkloadError
from ..matrix import SparseMatrix
from .nn import prune_dense_weights
from .spmm import spmm

__all__ = ["im2col", "conv2d_as_spmm", "prune_filters"]


def im2col(
    image: np.ndarray, kernel_size: int, stride: int = 1
) -> np.ndarray:
    """Unfold a ``(channels, H, W)`` image into a patch matrix.

    Returns a ``(channels * k * k, n_patches)`` matrix whose columns
    are the flattened receptive fields, scanned row-major.
    """
    array = np.asarray(image, dtype=np.float64)
    if array.ndim != 3:
        raise ShapeError(
            f"image must be (channels, H, W), got ndim={array.ndim}"
        )
    if kernel_size < 1:
        raise WorkloadError(f"kernel_size must be >= 1, got {kernel_size}")
    if stride < 1:
        raise WorkloadError(f"stride must be >= 1, got {stride}")
    channels, height, width = array.shape
    if height < kernel_size or width < kernel_size:
        raise ShapeError(
            f"kernel {kernel_size} exceeds image {height}x{width}"
        )
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    columns = np.empty(
        (channels * kernel_size * kernel_size, out_h * out_w)
    )
    patch = 0
    for row in range(0, out_h * stride, stride):
        for col in range(0, out_w * stride, stride):
            block = array[:, row : row + kernel_size,
                          col : col + kernel_size]
            columns[:, patch] = block.ravel()
            patch += 1
    return columns


def prune_filters(
    filters: np.ndarray, keep_fraction: float
) -> SparseMatrix:
    """Magnitude-prune a ``(out_channels, in_channels, k, k)`` filter
    bank into the flattened 2-D sparse weight matrix of the lowering."""
    array = np.asarray(filters, dtype=np.float64)
    if array.ndim != 4:
        raise ShapeError(
            f"filters must be (out, in, k, k), got ndim={array.ndim}"
        )
    flat = array.reshape(array.shape[0], -1)
    return prune_dense_weights(flat, keep_fraction)


def conv2d_as_spmm(
    image: np.ndarray,
    weights: SparseMatrix,
    kernel_size: int,
    stride: int = 1,
    format_name: str = "csr",
    partition_size: int = 16,
) -> np.ndarray:
    """Run one pruned convolutional layer through the SpMM kernel.

    ``weights`` is the flattened ``(out_channels, in*k*k)`` sparse
    filter matrix (see :func:`prune_filters`).  Returns the output
    feature map ``(out_channels, out_H, out_W)``.
    """
    patches = im2col(image, kernel_size, stride)
    if weights.n_cols != patches.shape[0]:
        raise ShapeError(
            f"weights expect patches of height {weights.n_cols}, "
            f"got {patches.shape[0]}"
        )
    flat_out = spmm(weights, patches, format_name, partition_size)
    channels, height, width = np.asarray(image).shape
    out_h = (height - kernel_size) // stride + 1
    out_w = (width - kernel_size) // stride + 1
    return flat_out.reshape(weights.n_rows, out_h, out_w)
