"""Partitioned SpMV execution engine.

The functional twin of the hardware model: a matrix is tiled exactly as
the accelerator would tile it, every non-zero tile is *encoded* in the
chosen sparse format, and each multiply traverses the encoded arrays
through the format's own decompression path.  The applications built on
top (CG, PageRank, sparse inference) therefore exercise the complete
encode -> decompress -> dot-product chain rather than a shortcut
through the original matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..formats.base import EncodedMatrix, SparseFormat
from ..formats.registry import get_format
from ..matrix import SparseMatrix
from ..partition import Partition, partition_matrix

__all__ = ["PartitionedSpmvEngine"]


@dataclass(frozen=True)
class _EncodedTile:
    grid_row: int
    grid_col: int
    encoded: EncodedMatrix


class PartitionedSpmvEngine:
    """SpMV through encoded partitions of one sparse format.

    Parameters
    ----------
    matrix:
        The operand matrix; encoded once at construction.
    format_name:
        Registry name of the sparse format to traverse.
    partition_size:
        Tile edge; mirrors the hardware hyperparameter.
    """

    def __init__(
        self,
        matrix: SparseMatrix,
        format_name: str = "csr",
        partition_size: int = 16,
        **format_kwargs: int,
    ) -> None:
        self.shape = matrix.shape
        self.partition_size = partition_size
        self.format: SparseFormat = get_format(format_name, **format_kwargs)
        tiles = partition_matrix(matrix, partition_size)
        self._tiles = [self._encode_tile(tile) for tile in tiles]

    def _encode_tile(self, tile: Partition) -> _EncodedTile:
        return _EncodedTile(
            grid_row=tile.grid_row,
            grid_col=tile.grid_col,
            encoded=self.format.encode(tile.block),
        )

    # ------------------------------------------------------------------
    @property
    def format_name(self) -> str:
        return self.format.name

    @property
    def n_tiles(self) -> int:
        """Number of non-zero partitions held (all-zero tiles skipped)."""
        return len(self._tiles)

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` by decompressing every encoded tile."""
        vector = np.asarray(x, dtype=np.float64).ravel()
        if vector.size != self.shape[1]:
            raise ShapeError(
                f"vector length {vector.size} != matrix columns "
                f"{self.shape[1]}"
            )
        p = self.partition_size
        padded = np.zeros(-(-self.shape[1] // p) * p)
        padded[: self.shape[1]] = vector
        out = np.zeros(-(-self.shape[0] // p) * p)
        for tile in self._tiles:
            x_slice = padded[tile.grid_col * p : (tile.grid_col + 1) * p]
            partial = self.format.spmv(tile.encoded, x_slice)
            row = tile.grid_row * p
            out[row : row + p] += partial
        return out[: self.shape[0]]

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.multiply(x)

    def __repr__(self) -> str:
        return (
            f"PartitionedSpmvEngine(shape={self.shape}, "
            f"format={self.format_name!r}, p={self.partition_size}, "
            f"tiles={self.n_tiles})"
        )
