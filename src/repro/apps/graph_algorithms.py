"""Vertex-centric graph algorithms on the semiring SpMV kernel.

Section 3.3 names breadth-first search, single-source shortest path
and PageRank as the SpMV-shaped graph workloads; PageRank lives in
:mod:`repro.apps.pagerank`, the other two live here, plus connected
components as the natural extension.  Each iteration is one semiring
SpMV over the (transposed) adjacency structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError, SimulationError
from ..matrix import SparseMatrix
from .semiring import (
    BOOLEAN_OR_AND,
    TROPICAL_MIN_PLUS,
    Semiring,
    semiring_spmv,
)

#: Label propagation: take the neighbour's label as-is (edge weights
#: are structure only) and reduce with min.
_MIN_SELECT = Semiring(
    "min-select", np.minimum, lambda weights, labels: labels, np.inf
)

__all__ = [
    "BfsResult",
    "SsspResult",
    "breadth_first_search",
    "single_source_shortest_paths",
    "connected_components",
]


def _check_source(graph: SparseMatrix, source: int) -> None:
    if not graph.is_square:
        raise ShapeError(f"adjacency must be square, got {graph.shape}")
    if not 0 <= source < graph.n_rows:
        raise SimulationError(
            f"source {source} out of range [0, {graph.n_rows})"
        )


@dataclass(frozen=True)
class BfsResult:
    """Levels per vertex (-1 = unreachable) and iteration count."""

    levels: np.ndarray
    iterations: int
    spmv_count: int

    def reachable(self) -> np.ndarray:
        return self.levels >= 0


def breadth_first_search(graph: SparseMatrix, source: int) -> BfsResult:
    """Level-synchronous BFS: each level is one boolean-semiring SpMV.

    The frontier vector is expanded through the transposed adjacency
    (``frontier_next[v] = OR over u of A[u, v] AND frontier[u]``).
    """
    _check_source(graph, source)
    n = graph.n_rows
    transposed = graph.transpose()
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.zeros(n)
    frontier[source] = 1.0
    spmv_count = 0
    for level in range(1, n + 1):
        expanded = semiring_spmv(transposed, frontier, BOOLEAN_OR_AND)
        spmv_count += 1
        fresh = (expanded > 0) & (levels < 0)
        if not fresh.any():
            return BfsResult(levels, level - 1, spmv_count)
        levels[fresh] = level
        frontier = fresh.astype(np.float64)
    return BfsResult(levels, n, spmv_count)


@dataclass(frozen=True)
class SsspResult:
    """Distances per vertex (inf = unreachable) and iteration count."""

    distances: np.ndarray
    iterations: int
    spmv_count: int
    converged: bool


def single_source_shortest_paths(
    graph: SparseMatrix,
    source: int,
    max_iterations: int | None = None,
) -> SsspResult:
    """Bellman-Ford relaxation as tropical-semiring SpMV.

    Edge weights are the stored values (must be non-negative for the
    distances to be meaningful in the usual sense, but the relaxation
    itself is plain Bellman-Ford and converges for any graph without
    negative cycles).
    """
    _check_source(graph, source)
    if graph.nnz and graph.vals.min() < 0:
        raise SimulationError("edge weights must be non-negative")
    n = graph.n_rows
    limit = n if max_iterations is None else max_iterations
    if limit < 1:
        raise SimulationError(f"max_iterations must be >= 1, got {limit}")
    transposed = graph.transpose()
    distances = np.full(n, np.inf)
    distances[source] = 0.0
    spmv_count = 0
    for iteration in range(1, limit + 1):
        relaxed = semiring_spmv(transposed, distances, TROPICAL_MIN_PLUS)
        spmv_count += 1
        updated = np.minimum(distances, relaxed)
        if np.array_equal(
            updated, distances
        ) or np.allclose(updated, distances, equal_nan=True):
            return SsspResult(distances, iteration - 1, spmv_count, True)
        distances = updated
    return SsspResult(distances, limit, spmv_count, False)


def connected_components(graph: SparseMatrix) -> np.ndarray:
    """Component label per vertex (undirected interpretation).

    Label propagation: every vertex repeatedly adopts the minimum
    label among itself and its neighbours — a min-semiring SpMV per
    round over the symmetrized adjacency.
    """
    if not graph.is_square:
        raise ShapeError(f"adjacency must be square, got {graph.shape}")
    n = graph.n_rows
    symmetric = graph.add(graph.transpose())
    # propagation runs on reachability, not weights.
    structure = SparseMatrix(
        symmetric.shape,
        symmetric.rows,
        symmetric.cols,
        np.ones(symmetric.nnz),
    )
    labels = np.arange(n, dtype=np.float64)
    for _ in range(n):
        neighbour_min = semiring_spmv(structure, labels, _MIN_SELECT)
        updated = np.minimum(labels, neighbour_min)
        if np.array_equal(updated, labels):
            break
        labels = updated
    return labels.astype(np.int64)
