"""Sparse neural-network inference on the partitioned SpMV engine.

Section 3.3's third domain: pruned model inference is SpMV (or
matrix-matrix products built from the same dot-product engine), and
recommendation-style embedding reductions are dot products too.  The
layers here hold pruned weight matrices encoded in a sparse format and
run every forward pass through that format's decompression path.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ShapeError, WorkloadError
from ..matrix import SparseMatrix
from ..workloads.random_matrices import random_matrix
from .engine import PartitionedSpmvEngine

__all__ = [
    "relu",
    "identity",
    "SparseLayer",
    "SparseMlp",
    "prune_dense_weights",
    "random_pruned_mlp",
    "embedding_reduction",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


def identity(x: np.ndarray) -> np.ndarray:
    """No-op activation (for output layers)."""
    return x


def prune_dense_weights(
    weights: np.ndarray, keep_fraction: float
) -> SparseMatrix:
    """Magnitude-prune a dense weight matrix.

    Keeps the largest-magnitude ``keep_fraction`` of the entries — the
    "common practice is to prune those values" of Section 3.1.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise WorkloadError(
            f"keep_fraction must be in (0, 1], got {keep_fraction}"
        )
    array = np.asarray(weights, dtype=np.float64)
    if array.ndim != 2:
        raise ShapeError(f"weights must be 2-D, got ndim={array.ndim}")
    keep = max(1, int(round(keep_fraction * array.size)))
    threshold = np.sort(np.abs(array), axis=None)[-keep]
    pruned = np.where(np.abs(array) >= threshold, array, 0.0)
    return SparseMatrix.from_dense(pruned)


class SparseLayer:
    """One pruned linear layer: ``activation(W @ x + bias)``."""

    def __init__(
        self,
        weights: SparseMatrix,
        bias: np.ndarray | None = None,
        activation: Callable[[np.ndarray], np.ndarray] = relu,
        format_name: str = "csr",
        partition_size: int = 16,
    ) -> None:
        self.engine = PartitionedSpmvEngine(
            weights, format_name, partition_size
        )
        self.bias = (
            np.zeros(weights.n_rows)
            if bias is None
            else np.asarray(bias, dtype=np.float64).ravel()
        )
        if self.bias.size != weights.n_rows:
            raise ShapeError(
                f"bias length {self.bias.size} != output size "
                f"{weights.n_rows}"
            )
        self.activation = activation

    @property
    def in_features(self) -> int:
        return self.engine.shape[1]

    @property
    def out_features(self) -> int:
        return self.engine.shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.activation(self.engine.multiply(x) + self.bias)


class SparseMlp:
    """A stack of sparse layers sharing one format choice."""

    def __init__(self, layers: Sequence[SparseLayer]) -> None:
        if not layers:
            raise WorkloadError("an MLP needs at least one layer")
        for upper, lower in zip(layers[1:], layers[:-1]):
            if upper.in_features != lower.out_features:
                raise ShapeError(
                    f"layer size mismatch: {lower.out_features} -> "
                    f"{upper.in_features}"
                )
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64).ravel()
        for layer in self.layers:
            out = layer.forward(out)
        return out


def random_pruned_mlp(
    layer_sizes: Sequence[int],
    density: float = 0.2,
    format_name: str = "csr",
    partition_size: int = 16,
    seed: int = 0,
) -> SparseMlp:
    """Build a random pruned MLP (densities 0.1-0.5 mirror the paper's
    machine-learning random workloads)."""
    if len(layer_sizes) < 2:
        raise WorkloadError("need at least input and output sizes")
    layers = []
    for index, (n_in, n_out) in enumerate(
        zip(layer_sizes[:-1], layer_sizes[1:])
    ):
        weights = random_matrix(
            n_out, density, seed=seed + index, n_cols=n_in
        )
        last = index == len(layer_sizes) - 2
        layers.append(
            SparseLayer(
                weights,
                activation=identity if last else relu,
                format_name=format_name,
                partition_size=partition_size,
            )
        )
    return SparseMlp(layers)


def embedding_reduction(
    table: np.ndarray, indices: Sequence[int]
) -> np.ndarray:
    """Recommendation-model embedding lookup + sum reduction.

    Section 3.3: "sparse embedding-table look-ups end up as a reduction
    operation ... implemented using a dot-product engine".  Implemented
    as the equivalent dot product between a sparse one-hot-sum vector
    and the table.
    """
    array = np.asarray(table, dtype=np.float64)
    if array.ndim != 2:
        raise ShapeError(f"table must be 2-D, got ndim={array.ndim}")
    selector = np.zeros(array.shape[0])
    for index in indices:
        if not 0 <= index < array.shape[0]:
            raise ShapeError(
                f"embedding index {index} out of range "
                f"[0, {array.shape[0]})"
            )
        selector[index] += 1.0
    return selector @ array


