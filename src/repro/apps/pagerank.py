"""PageRank on the partitioned SpMV engine.

Section 3.3: vertex-centric graph algorithms reduce to repeated SpMV
over the adjacency matrix.  The power iteration here multiplies the
column-normalized transition matrix — encoded in any sparse format —
against the rank vector until it stabilizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError, SimulationError
from ..matrix import SparseMatrix
from .engine import PartitionedSpmvEngine

__all__ = ["PageRankResult", "pagerank", "transition_matrix"]


@dataclass(frozen=True)
class PageRankResult:
    """Outcome of a PageRank power iteration."""

    ranks: np.ndarray
    iterations: int
    delta: float
    converged: bool
    spmv_count: int


def transition_matrix(adjacency: SparseMatrix) -> SparseMatrix:
    """Column-stochastic transition matrix ``M[i, j] = A[j, i]/deg(j)``.

    Each column ``j`` distributes vertex ``j``'s rank over its
    out-neighbours; dangling vertices (zero out-degree) are handled in
    the iteration by redistributing their rank uniformly.
    """
    if not adjacency.is_square:
        raise ShapeError(
            f"adjacency must be square, got {adjacency.shape}"
        )
    out_degree = adjacency.row_nnz().astype(np.float64)
    weights = 1.0 / out_degree[adjacency.rows]
    return SparseMatrix(
        adjacency.shape, adjacency.cols, adjacency.rows, weights
    )


def pagerank(
    adjacency: SparseMatrix,
    format_name: str = "csr",
    partition_size: int = 16,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
) -> PageRankResult:
    """Rank the vertices of ``adjacency`` (rows = sources)."""
    if not 0.0 < damping < 1.0:
        raise SimulationError(f"damping must be in (0, 1), got {damping}")
    if max_iterations < 1:
        raise SimulationError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    n = adjacency.n_rows
    engine = PartitionedSpmvEngine(
        transition_matrix(adjacency), format_name, partition_size
    )
    dangling = adjacency.row_nnz() == 0
    ranks = np.full(n, 1.0 / n)
    spmv_count = 0
    for iteration in range(1, max_iterations + 1):
        dangling_mass = float(ranks[dangling].sum())
        spread = engine.multiply(ranks)
        spmv_count += 1
        new_ranks = (
            damping * (spread + dangling_mass / n)
            + (1.0 - damping) / n
        )
        delta = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if delta <= tol:
            return PageRankResult(ranks, iteration, delta, True, spmv_count)
    return PageRankResult(ranks, max_iterations, delta, False, spmv_count)
