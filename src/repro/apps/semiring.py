"""Semiring-generalized SpMV.

Section 3.3 derives graph analytics from SpMV: "graph algorithms, such
as breadth-first search, single-source shortest path, and PageRank ...
can be implemented as a sparse matrix-vector operation" where the
vector-vector phase and the reduction phase together form a
dot-product.  Swapping the (+, x) pair for another semiring turns the
same engine into each algorithm's kernel:

* arithmetic (+, x) — PageRank, numeric SpMV;
* tropical (min, +) — single-source shortest path relaxation;
* boolean (or, and) — breadth-first search frontier expansion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ShapeError
from ..matrix import SparseMatrix

__all__ = [
    "Semiring",
    "ARITHMETIC",
    "TROPICAL_MIN_PLUS",
    "BOOLEAN_OR_AND",
    "semiring_spmv",
]


@dataclass(frozen=True)
class Semiring:
    """An algebraic (add, multiply, identity) triple for SpMV.

    ``add`` must be associative/commutative with ``zero`` as identity;
    ``multiply`` distributes over ``add``.  Both operate element-wise
    on numpy arrays so the engine stays vectorized.  When ``add`` is a
    numpy ufunc the row reduction uses its scatter form (``ufunc.at``);
    otherwise a plain per-entry fold runs.
    """

    name: str
    add: Callable[[np.ndarray, np.ndarray], np.ndarray]
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float

    def reduce(self, values: np.ndarray, groups: np.ndarray,
               n_groups: int) -> np.ndarray:
        """Reduce ``values`` into ``n_groups`` buckets with ``add``."""
        out = np.full(n_groups, self.zero)
        if isinstance(self.add, np.ufunc):
            self.add.at(out, groups, values)
            return out
        for group, value in zip(groups, values):
            out[group] = self.add(out[group], value)
        return out


def _np_and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.logical_and(a, b).astype(np.float64)


#: Ordinary numeric SpMV.
ARITHMETIC = Semiring("arithmetic", np.add, np.multiply, 0.0)

#: Shortest-path relaxation: path cost = min over (edge + distance).
TROPICAL_MIN_PLUS = Semiring("tropical", np.minimum, np.add, np.inf)

#: Reachability: frontier = OR over (edge AND visited); on {0, 1}
#: floats OR is exactly max.
BOOLEAN_OR_AND = Semiring("boolean", np.maximum, _np_and, 0.0)


def semiring_spmv(
    matrix: SparseMatrix,
    x: np.ndarray,
    semiring: Semiring = ARITHMETIC,
) -> np.ndarray:
    """Compute ``A (x) x`` under the given semiring.

    The traversal mirrors the dot-product engine: per stored entry one
    ``multiply`` against the operand vector, then a per-row ``add``
    reduction — exactly the two vertex-centric phases of Section 3.3.
    """
    vector = np.asarray(x, dtype=np.float64).ravel()
    if vector.size != matrix.n_cols:
        raise ShapeError(
            f"vector length {vector.size} != matrix columns "
            f"{matrix.n_cols}"
        )
    if not matrix.nnz:
        return np.full(matrix.n_rows, semiring.zero)
    products = semiring.multiply(matrix.vals, vector[matrix.cols])
    return semiring.reduce(products, matrix.rows, matrix.n_rows)
