"""Classic iterative solvers beyond CG.

Section 3.3 names Symmetric Gauss-Seidel as the smoother inside CG
pipelines; Jacobi is its embarrassingly parallel sibling and the
textbook example of an iteration that is *pure* SpMV.  Both are
provided on the same partitioned engine so any sparse format can carry
them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError, SimulationError
from ..matrix import SparseMatrix
from .engine import PartitionedSpmvEngine

__all__ = ["IterativeResult", "jacobi", "gauss_seidel", "power_iteration"]


@dataclass(frozen=True)
class IterativeResult:
    """Outcome of a stationary iterative solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    spmv_count: int


def _split_diagonal(matrix: SparseMatrix) -> tuple[np.ndarray, SparseMatrix]:
    """(diagonal vector, off-diagonal remainder) of a square matrix."""
    if not matrix.is_square:
        raise ShapeError(f"need a square matrix, got {matrix.shape}")
    on_diag = matrix.rows == matrix.cols
    diagonal = np.zeros(matrix.n_rows)
    diagonal[matrix.rows[on_diag]] = matrix.vals[on_diag]
    if np.any(diagonal == 0.0):
        raise SimulationError(
            "matrix has zero diagonal entries; Jacobi/Gauss-Seidel "
            "need a full diagonal"
        )
    remainder = SparseMatrix(
        matrix.shape,
        matrix.rows[~on_diag],
        matrix.cols[~on_diag],
        matrix.vals[~on_diag],
    )
    return diagonal, remainder


def jacobi(
    matrix: SparseMatrix,
    b: np.ndarray,
    format_name: str = "csr",
    partition_size: int = 16,
    tol: float = 1e-10,
    max_iterations: int = 10_000,
) -> IterativeResult:
    """Jacobi iteration: ``x <- D^-1 (b - R x)``.

    Each step is exactly one SpMV with the off-diagonal remainder,
    encoded once in the chosen format.
    """
    rhs = np.asarray(b, dtype=np.float64).ravel()
    if rhs.size != matrix.n_rows:
        raise ShapeError(f"b has length {rhs.size}, expected {matrix.n_rows}")
    if max_iterations < 1:
        raise SimulationError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    diagonal, remainder = _split_diagonal(matrix)
    engine = PartitionedSpmvEngine(remainder, format_name, partition_size)
    x = np.zeros(matrix.n_rows)
    threshold = tol * max(float(np.linalg.norm(rhs)), 1e-30)
    spmv_count = 0
    for iteration in range(1, max_iterations + 1):
        x_next = (rhs - engine.multiply(x)) / diagonal
        spmv_count += 1
        residual = float(np.linalg.norm(matrix.spmv(x_next) - rhs))
        x = x_next
        if residual <= threshold:
            return IterativeResult(x, iteration, residual, True, spmv_count)
    return IterativeResult(x, max_iterations, residual, False, spmv_count)


def gauss_seidel(
    matrix: SparseMatrix,
    b: np.ndarray,
    tol: float = 1e-10,
    max_iterations: int = 10_000,
    symmetric: bool = False,
) -> IterativeResult:
    """(Symmetric) Gauss-Seidel iteration.

    Forward sweep ``(D + L) x = b - U x`` solved row by row;
    ``symmetric=True`` appends the backward sweep, the smoother the
    paper cites from the HPCG-style CG pipeline.
    """
    rhs = np.asarray(b, dtype=np.float64).ravel()
    if rhs.size != matrix.n_rows:
        raise ShapeError(f"b has length {rhs.size}, expected {matrix.n_rows}")
    if max_iterations < 1:
        raise SimulationError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    diagonal, _ = _split_diagonal(matrix)
    n = matrix.n_rows
    # row-wise views for the triangular sweeps (CSR-style slices).
    order = np.argsort(matrix.rows, kind="stable")
    sorted_rows = matrix.rows[order]
    sorted_cols = matrix.cols[order]
    sorted_vals = matrix.vals[order]
    starts = np.searchsorted(sorted_rows, np.arange(n))
    stops = np.searchsorted(sorted_rows, np.arange(n) + 1)

    def sweep(x: np.ndarray, reverse: bool) -> None:
        row_range = range(n - 1, -1, -1) if reverse else range(n)
        for row in row_range:
            cols = sorted_cols[starts[row] : stops[row]]
            vals = sorted_vals[starts[row] : stops[row]]
            off = cols != row
            acc = float(vals[off] @ x[cols[off]])
            x[row] = (rhs[row] - acc) / diagonal[row]

    x = np.zeros(n)
    threshold = tol * max(float(np.linalg.norm(rhs)), 1e-30)
    spmv_count = 0
    for iteration in range(1, max_iterations + 1):
        sweep(x, reverse=False)
        spmv_count += 1
        if symmetric:
            sweep(x, reverse=True)
            spmv_count += 1
        residual = float(np.linalg.norm(matrix.spmv(x) - rhs))
        if residual <= threshold:
            return IterativeResult(x, iteration, residual, True, spmv_count)
    return IterativeResult(x, max_iterations, residual, False, spmv_count)


def power_iteration(
    matrix: SparseMatrix,
    format_name: str = "csr",
    partition_size: int = 16,
    tol: float = 1e-12,
    max_iterations: int = 2_000,
    seed: int = 0,
) -> tuple[float, np.ndarray, int]:
    """Dominant eigenpair via repeated SpMV.

    Returns ``(eigenvalue, eigenvector, iterations)``.
    """
    if not matrix.is_square:
        raise ShapeError(f"need a square matrix, got {matrix.shape}")
    if max_iterations < 1:
        raise SimulationError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    engine = PartitionedSpmvEngine(matrix, format_name, partition_size)
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.5, 1.5, size=matrix.n_rows)
    x /= np.linalg.norm(x)
    eigenvalue = 0.0
    for iteration in range(1, max_iterations + 1):
        y = engine.multiply(x)
        norm = float(np.linalg.norm(y))
        if norm == 0.0:
            return 0.0, x, iteration
        y /= norm
        new_eigenvalue = float(y @ engine.multiply(y))
        if abs(new_eigenvalue - eigenvalue) <= tol * max(
            abs(new_eigenvalue), 1e-30
        ):
            return new_eigenvalue, y, iteration
        eigenvalue = new_eigenvalue
        x = y
    return eigenvalue, x, max_iterations
