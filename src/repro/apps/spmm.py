"""Sparse matrix-matrix multiplication on the SpMV engine.

Section 3.3: "machine learning applications consist of SpMV or sparse
matrix-matrix multiplication, both of which rely on the same
underlying dot-product engine."  SpMM here is exactly that: the sparse
operand is encoded once, and every column of the dense operand streams
through the partitioned SpMV engine.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..matrix import SparseMatrix
from .engine import PartitionedSpmvEngine

__all__ = ["spmm", "sparse_sparse_matmul"]


def spmm(
    matrix: SparseMatrix | PartitionedSpmvEngine,
    dense: np.ndarray,
    format_name: str = "csr",
    partition_size: int = 16,
) -> np.ndarray:
    """Compute ``A @ B`` for sparse ``A`` and dense ``B``.

    ``A`` is encoded once (or a pre-built engine is reused); each of
    ``B``'s columns costs one engine pass.
    """
    if isinstance(matrix, PartitionedSpmvEngine):
        engine = matrix
    else:
        engine = PartitionedSpmvEngine(matrix, format_name, partition_size)
    operand = np.asarray(dense, dtype=np.float64)
    if operand.ndim == 1:
        operand = operand[:, np.newaxis]
    if operand.ndim != 2:
        raise ShapeError(f"B must be 1-D or 2-D, got ndim={operand.ndim}")
    if operand.shape[0] != engine.shape[1]:
        raise ShapeError(
            f"inner dimensions disagree: A is {engine.shape}, "
            f"B is {operand.shape}"
        )
    out = np.empty((engine.shape[0], operand.shape[1]))
    for col in range(operand.shape[1]):
        out[:, col] = engine.multiply(operand[:, col])
    return out


def sparse_sparse_matmul(
    a: SparseMatrix,
    b: SparseMatrix,
    format_name: str = "csr",
    partition_size: int = 16,
) -> SparseMatrix:
    """Compute ``A @ B`` for two sparse operands.

    ``B`` is materialized column-by-column through the engine; the
    result is re-sparsified (the hardware never recompresses — the
    paper's platform returns dense vectors — so this is a host-side
    convenience built on the same kernel).
    """
    if a.n_cols != b.n_rows:
        raise ShapeError(
            f"inner dimensions disagree: {a.shape} @ {b.shape}"
        )
    product = spmm(a, b.to_dense(), format_name, partition_size)
    return SparseMatrix.from_dense(product)
