"""Scalar-vs-batch pipeline benchmark.

Times :meth:`~repro.hardware.pipeline.StreamingPipeline.run` (the
struct-of-arrays batch path) against
:meth:`~repro.hardware.pipeline.StreamingPipeline.run_scalar` (the
per-profile reference loop) on paper-scale synthetic workloads, checks
the two agree bit for bit, and reports throughput as cells/sec (matrix
cells swept per second) and tiles/sec (non-zero partitions timed per
second).

Used by ``benchmarks/bench_speed.py`` and the ``repro bench``
sub-command; both write the ``BENCH_pipeline.json`` report.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Sequence

from . import io_atomic
from .errors import SimulationError
from .formats.registry import PAPER_FORMATS
from .hardware.config import HardwareConfig
from .hardware.pipeline import StreamingPipeline
from .matrix import SparseMatrix
from .observability import machine_metadata
from .partition import profile_table
from .workloads import band_matrix, random_matrix

__all__ = [
    "BenchResult",
    "bench_pipeline",
    "bench_report",
    "write_report",
    "BENCH_REPORT_SCHEMA",
]

#: Schema tag stamped into every report for forward compatibility.
BENCH_REPORT_SCHEMA = "bench_pipeline/v1"


@dataclass(frozen=True)
class BenchResult:
    """One (workload, format) scalar-vs-batch timing comparison."""

    workload: str
    format_name: str
    partition_size: int
    n: int
    nnz: int
    n_tiles: int
    scalar_s: float
    batch_s: float

    @property
    def speedup(self) -> float:
        if self.batch_s == 0:
            return float("inf")
        return self.scalar_s / self.batch_s

    @property
    def cells(self) -> int:
        """Matrix cells covered by one pipeline evaluation."""
        return self.n * self.n

    @property
    def batch_cells_per_s(self) -> float:
        return self.cells / self.batch_s if self.batch_s else float("inf")

    @property
    def scalar_cells_per_s(self) -> float:
        return (
            self.cells / self.scalar_s if self.scalar_s else float("inf")
        )

    @property
    def batch_tiles_per_s(self) -> float:
        return (
            self.n_tiles / self.batch_s if self.batch_s else float("inf")
        )

    @property
    def scalar_tiles_per_s(self) -> float:
        return (
            self.n_tiles / self.scalar_s if self.scalar_s else float("inf")
        )

    def as_dict(self) -> dict:
        record = asdict(self)
        record.update(
            speedup=self.speedup,
            cells=self.cells,
            batch_cells_per_s=self.batch_cells_per_s,
            scalar_cells_per_s=self.scalar_cells_per_s,
            batch_tiles_per_s=self.batch_tiles_per_s,
            scalar_tiles_per_s=self.scalar_tiles_per_s,
        )
        return record


def _best_time(run: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``run`` (min filters noise)."""
    best = math.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_workloads(
    n: int, density: float, band_width: int, seed: int
) -> list[tuple[str, SparseMatrix]]:
    return [
        (f"random-{density:g}", random_matrix(n, density, seed=seed)),
        (f"band-{band_width}", band_matrix(n, band_width, seed=seed)),
    ]


def bench_pipeline(
    n: int = 8000,
    p: int = 8,
    density: float = 0.01,
    band_width: int = 64,
    formats: Sequence[str] = PAPER_FORMATS,
    repeats: int = 1,
    seed: int = 0,
) -> list[BenchResult]:
    """Time batch vs scalar ``StreamingPipeline.run`` on both workloads.

    Profiles each matrix once; the batch path consumes the
    :class:`~repro.partition.ProfileTable` directly and the scalar path
    consumes the pre-materialized profile objects, so the comparison
    isolates the pipeline evaluation itself.  Every pair is checked for
    bit-identical totals before it is reported.
    """
    config = HardwareConfig(partition_size=p)
    results: list[BenchResult] = []
    for workload, matrix in _bench_workloads(n, density, band_width, seed):
        table = profile_table(matrix, p, block_size=config.block_size)
        profiles = table.profiles()
        for format_name in formats:
            pipeline = StreamingPipeline(config, format_name)
            batch_s = _best_time(lambda: pipeline.run(table), repeats)
            scalar_s = _best_time(
                lambda: pipeline.run_scalar(profiles), repeats
            )
            batch = pipeline.run(table)
            scalar = pipeline.run_scalar(profiles)
            if batch != scalar:
                raise SimulationError(
                    f"batch/scalar mismatch for {format_name} on "
                    f"{workload}: {batch.total_cycles} != "
                    f"{scalar.total_cycles} total cycles"
                )
            results.append(
                BenchResult(
                    workload=workload,
                    format_name=format_name,
                    partition_size=p,
                    n=n,
                    nnz=matrix.nnz,
                    n_tiles=table.n_tiles,
                    scalar_s=scalar_s,
                    batch_s=batch_s,
                )
            )
    return results


def bench_report(
    results: Sequence[BenchResult],
    n: int,
    p: int,
    density: float,
    band_width: int,
    repeats: int,
) -> dict:
    """The ``BENCH_pipeline.json`` payload for a finished run."""
    speedups = [r.speedup for r in results]
    geomean = (
        math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if speedups
        else 0.0
    )
    return {
        "schema": BENCH_REPORT_SCHEMA,
        "machine": machine_metadata(),
        "config": {
            "n": n,
            "partition_size": p,
            "density": density,
            "band_width": band_width,
            "repeats": repeats,
        },
        "results": [r.as_dict() for r in results],
        "summary": {
            "min_speedup": min(speedups, default=0.0),
            "max_speedup": max(speedups, default=0.0),
            "geomean_speedup": geomean,
        },
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write the report as indented JSON; returns the path."""
    return io_atomic.atomic_write_text(
        Path(path), json.dumps(report, indent=2) + "\n"
    )
