"""Distributed-sweep benchmark (``BENCH_distributed.json``).

Quantifies the two claims the queue backend makes:

1. **Scaling** — the same grid swept through ``backend="queue"`` at
   1, 2 and 4 workers, with a fixed per-cell service-time floor
   injected through the fault plan (``delay@every:1``).  On a
   single-core container the *compute* cannot parallelize, but the
   service floor models the I/O- and memory-bound stalls that
   dominate real characterization cells, and those overlap across
   worker processes exactly like blocking I/O would.  The report
   records the machine's ``cpu_count`` and the injected floor so the
   numbers cannot be mistaken for CPU-bound speedup.  Every run
   writes a checkpoint; the digests are recorded per worker count so
   the report doubles as evidence the backends are bit-identical.

2. **Out-of-core profiling** — peak RSS of profiling a ``.mtx`` file
   much larger than the streaming memory budget, measured in child
   processes via ``resource.getrusage``, for the materializing path
   (``read_matrix_market`` + ``profile_table``) and the streaming
   path (``streaming_profile_table``).

Used by ``benchmarks/bench_distributed.py`` and the
``repro bench-distributed`` sub-command.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Sequence

from .engine import SweepRunner, WorkloadSpec, checkpoint_digest
from .engine.distributed import QueueOptions
from . import io_atomic
from .errors import SimulationError
from .formats.registry import PAPER_FORMATS
from .observability import machine_metadata

__all__ = [
    "BENCH_DISTRIBUTED_SCHEMA",
    "bench_distributed",
    "bench_queue_scaling",
    "bench_streaming_rss",
    "scaling_specs",
    "write_distributed_report",
]

#: Schema tag stamped into every report for forward compatibility.
BENCH_DISTRIBUTED_SCHEMA = "bench_distributed/v1"

#: Speedup floor at two workers the committed report must clear.
SCALING_GATE_2_WORKERS = 1.7


def scaling_specs(n: int = 48, n_workloads: int = 8) -> list[WorkloadSpec]:
    """A grid of small, cheap-to-build workload specs.

    Alternates random and band recipes so the queue's digest sharding
    spreads chunks across shards rather than clustering one kind.
    """
    specs: list[WorkloadSpec] = []
    for index in range(n_workloads):
        if index % 2 == 0:
            density = 0.02 + 0.02 * (index // 2)
            specs.append(
                WorkloadSpec.random(n, density, seed=10 + index)
            )
        else:
            width = 4 << (index // 2)
            specs.append(WorkloadSpec.band(n, width, seed=10 + index))
    return specs


def bench_queue_scaling(
    worker_counts: Sequence[int] = (1, 2, 4),
    cell_cost_s: float = 0.25,
    n: int = 48,
    n_workloads: int = 8,
    formats: Sequence[str] = PAPER_FORMATS,
    partitions: Sequence[int] = (8,),
    lease_timeout_s: float = 30.0,
) -> dict:
    """Sweep one grid through the queue backend at each worker count.

    The fault plan ``delay@every:1#delay=...#times=none`` injects the
    same service-time floor into every cell attempt, so the serial
    wall time is ``n_cells * cell_cost_s`` plus overhead and the
    ideal speedup at ``w`` workers is ``w``.
    """
    if cell_cost_s <= 0:
        raise SimulationError(
            f"cell_cost_s must be > 0, got {cell_cost_s}"
        )
    specs = scaling_specs(n, n_workloads)
    faults = f"delay@every:1#delay={cell_cost_s}#times=none"
    n_cells = len(specs) * len(formats) * len(partitions)
    rows: list[dict] = []
    base_wall: float | None = None
    with tempfile.TemporaryDirectory(prefix="bench-queue-") as tmp:
        for workers in worker_counts:
            checkpoint = Path(tmp) / f"w{workers}.jsonl"
            runner = SweepRunner(
                max_workers=workers,
                backend="queue",
                error_policy="fail_fast",
                faults=faults,
                checkpoint=checkpoint,
                queue_options=QueueOptions(
                    lease_timeout_s=lease_timeout_s
                ),
            )
            start = time.perf_counter()
            outcome = runner.run_grid(
                specs, list(formats), partition_sizes=list(partitions)
            )
            wall = time.perf_counter() - start
            if len(outcome.results) != n_cells:
                raise SimulationError(
                    f"queue sweep at {workers} workers returned "
                    f"{len(outcome.results)} cells, expected {n_cells}"
                )
            if base_wall is None:
                base_wall = wall
            rows.append({
                "workers": workers,
                "wall_s": wall,
                "cells_per_s": n_cells / wall,
                "speedup_vs_1": base_wall / wall,
                "checkpoint_digest": checkpoint_digest(checkpoint),
            })
    ideal_serial_s = n_cells * cell_cost_s
    return {
        "cell_cost_s": cell_cost_s,
        "n_workloads": len(specs),
        "formats": list(formats),
        "partitions": [int(p) for p in partitions],
        "n_cells": n_cells,
        "n_chunks": len(specs),
        "ideal_serial_s": ideal_serial_s,
        "digests_identical": len(
            {row["checkpoint_digest"] for row in rows}
        ) == 1,
        "rows": rows,
    }


#: Child-process probe: profile one .mtx and report its peak RSS.
#: ``ru_maxrss`` is KiB on Linux, covering the whole interpreter, so
#: both modes pay the same baseline and the delta is the data.
_RSS_PROBE = """\
import json, resource, sys
path, mode, p, budget = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), float(sys.argv[4])
)
if mode == "stream":
    from repro.io import streaming_profile_table
    table = streaming_profile_table(path, p, memory_budget_mb=budget)
else:
    from repro.io import read_matrix_market
    from repro.partition import profile_table
    table = profile_table(read_matrix_market(path), p)
peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "n_tiles": int(table.n_tiles),
    "nnz": int(table.nnz.sum()),
    "peak_rss_kib": int(peak_kib),
}))
"""


def _write_band_mtx(path: Path, n: int, width: int) -> int:
    """Stream a band ``.mtx`` to disk without materializing it.

    Returns the entry count.  Row-by-row generation keeps the writer
    itself out-of-core, so the benchmark can emit files bigger than
    the budget it is about to test against.
    """
    half = width // 2
    n_entries = sum(
        min(n - 1, i + half) - max(0, i - half) + 1 for i in range(n)
    )
    with open(path, "w", encoding="ascii") as stream:
        stream.write(
            "%%MatrixMarket matrix coordinate real general\n"
        )
        stream.write(f"{n} {n} {n_entries}\n")
        lines: list[str] = []
        for i in range(n):
            row = i + 1
            for j in range(max(0, i - half), min(n - 1, i + half) + 1):
                lines.append(f"{row} {j + 1} 1.0\n")
            if len(lines) >= 65536:
                stream.write("".join(lines))
                lines.clear()
        stream.write("".join(lines))
    return n_entries


def _probe_rss(path: Path, mode: str, p: int, budget_mb: float) -> dict:
    src = str(Path(__file__).resolve().parent.parent)
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable, "-c", _RSS_PROBE,
            str(path), mode, str(p), str(budget_mb),
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise SimulationError(
            f"rss probe ({mode}) failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def bench_streaming_rss(
    n: int = 20000,
    width: int = 101,
    p: int = 64,
    memory_budget_mb: float = 8.0,
) -> dict:
    """Peak-RSS comparison of materializing vs streaming profiling."""
    with tempfile.TemporaryDirectory(prefix="bench-rss-") as tmp:
        path = Path(tmp) / "band.mtx"
        n_entries = _write_band_mtx(path, n, width)
        file_bytes = path.stat().st_size
        rows = []
        for mode in ("materialize", "stream"):
            probe = _probe_rss(path, mode, p, memory_budget_mb)
            if probe["nnz"] != n_entries:
                raise SimulationError(
                    f"rss probe ({mode}) profiled {probe['nnz']} "
                    f"entries, expected {n_entries}"
                )
            rows.append({"mode": mode, **probe})
    by_mode = {row["mode"]: row for row in rows}
    triplet_mb = n_entries * 24 / (1 << 20)
    stream_kib = by_mode["stream"]["peak_rss_kib"]
    return {
        "n": n,
        "width": width,
        "p": p,
        "n_entries": n_entries,
        "file_mb": file_bytes / (1 << 20),
        "triplet_mb": triplet_mb,
        "memory_budget_mb": memory_budget_mb,
        "rows": rows,
        "rss_reduction": (
            by_mode["materialize"]["peak_rss_kib"] / stream_kib
            if stream_kib else float("inf")
        ),
    }


def bench_distributed(quick: bool = False) -> dict:
    """Run both sections and assemble the ``bench_distributed/v1`` report.

    ``quick`` shrinks the grid and the out-of-core matrix for CI
    smoke runs; quick reports are not expected to clear the scaling
    gate (process startup dominates sub-second sweeps).
    """
    if quick:
        scaling = bench_queue_scaling(
            worker_counts=(1, 2),
            cell_cost_s=0.05,
            n_workloads=4,
            formats=("csr", "coo"),
        )
        streaming = bench_streaming_rss(n=4000, width=21)
    else:
        scaling = bench_queue_scaling()
        streaming = bench_streaming_rss()
    by_workers = {row["workers"]: row for row in scaling["rows"]}
    speedup_2 = (
        by_workers[2]["speedup_vs_1"] if 2 in by_workers else None
    )
    max_workers = max(by_workers)
    return {
        "schema": BENCH_DISTRIBUTED_SCHEMA,
        "machine": machine_metadata(),
        "config": {
            "quick": quick,
            "scaling_gate_2_workers": SCALING_GATE_2_WORKERS,
        },
        "scaling": scaling,
        "streaming": streaming,
        "summary": {
            "speedup_2_workers": speedup_2,
            "speedup_max_workers": by_workers[max_workers][
                "speedup_vs_1"
            ],
            "digests_identical": scaling["digests_identical"],
            "rss_reduction": streaming["rss_reduction"],
        },
    }


def check_distributed_report(report: dict) -> list[str]:
    """Gate failures for a full (non-quick) report; empty = pass."""
    problems: list[str] = []
    summary = report["summary"]
    if not summary["digests_identical"]:
        problems.append(
            "checkpoint digests differ across worker counts"
        )
    speedup_2 = summary["speedup_2_workers"]
    if speedup_2 is not None and speedup_2 < SCALING_GATE_2_WORKERS:
        problems.append(
            f"2-worker speedup {speedup_2:.2f}x is below the "
            f"{SCALING_GATE_2_WORKERS}x gate"
        )
    streaming = report["streaming"]
    if streaming["triplet_mb"] <= streaming["memory_budget_mb"]:
        problems.append(
            "out-of-core matrix does not exceed the memory budget"
        )
    if summary["rss_reduction"] <= 1.0:
        problems.append(
            "streaming path did not reduce peak RSS"
        )
    return problems


def write_distributed_report(report: dict, path: str | Path) -> Path:
    """Write the report as indented, sorted JSON (diff-friendly)."""
    return io_atomic.atomic_write_text(
        Path(path),
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="ascii",
    )
