"""Chaos campaign runner: seeded crash/recovery schedules, hard-gated.

``repro chaos`` turns the deterministic fault layer
(:mod:`repro.engine.chaos`) into a verdict.  One campaign runs N
seeded *schedules*; each schedule injects a randomly drawn fault plan
into a real target and then checks hard invariants on what recovery
produced:

* **queue schedules** — a distributed queue sweep runs under the
  plan (torn shard/checkpoint writes, suppressed heartbeats, ENOSPC,
  worker and merge crashes).  Whatever state the crash leaves behind
  is repaired by the doctor (:mod:`repro.doctor`), the sweep is
  resumed chaos-free from the surviving checkpoint, and the campaign
  gates on: recovered checkpoint digest == the sequential reference
  digest, zero lost or duplicated cells, and a clean post-repair
  doctor audit.
* **serve schedules** — a live server takes seeded load while a
  drain (the campaign's ``sigterm@serve#midflight``) lands
  mid-flight.  Gates: no status outside {200, 429, 503} (transport
  refusals after the listener closes count as shed load, status 0),
  and a valid final ``metrics/v1`` snapshot on disk.

Every schedule's plan is drawn from ``random.Random(seed)``, so a
campaign is exactly reproducible: same ``(seed, n_schedules)``, same
faults at the same operation counts, same verdict.  A schedule that
violates any invariant lands in the report and
:func:`check_campaign` raises :class:`~repro.errors.ChaosError`
(CLI exit 2) — chaos findings are test failures, not log lines.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path
from random import Random

from . import io_atomic
from .doctor import diagnose_queue
from .engine import WorkloadSpec, checkpoint_digest
from .engine.chaos import ChaosPlan, ChaosSpec
from .engine.distributed import QueueOptions
from .engine.retry import RetryPolicy
from .engine.runner import SweepRunner
from .errors import ChaosCrash, ChaosError, CopernicusError
from .observability import METRICS_SCHEMA, machine_metadata

__all__ = [
    "BENCH_CHAOS_SCHEMA",
    "campaign_grid",
    "random_plan",
    "run_chaos_campaign",
    "check_campaign",
    "write_chaos_report",
]

#: Version tag of the chaos report; bump on incompatible change.
BENCH_CHAOS_SCHEMA = "bench_chaos/v1"

#: The small sweep grid every queue schedule runs (8 cells: fast
#: enough to crash and recover twenty times in one CI job, wide
#: enough that chunks land on both workers).
_SPEC_BUILDERS = (
    lambda: WorkloadSpec.random(48, 0.08, seed=101),
    lambda: WorkloadSpec.band(48, 5, seed=102),
)
_FORMATS = ("csr", "coo")
_PARTITIONS = (8, 16)

#: Requests per serve schedule, sized so a drain reliably lands while
#: some are still in flight.
_SERVE_REQUESTS = 32

#: Every ``serve_every``-th schedule is a serve schedule; the rest
#: are queue schedules.
_SERVE_EVERY = 5


def campaign_grid() -> list:
    """The workload specs every queue schedule sweeps."""
    return [build() for build in _SPEC_BUILDERS]


# ----------------------------------------------------------------------
# Fault-plan sampling (pure, seeded)
# ----------------------------------------------------------------------
_CATALOG = (
    lambda rng: ChaosSpec(
        "torn-write", "shards",
        frac=rng.choice((0.25, 0.5, 0.75)),
        after=rng.randrange(1, 5),
    ),
    lambda rng: ChaosSpec(
        "torn-write", "checkpoint",
        frac=rng.choice((0.25, 0.5, 0.75)),
        after=rng.randrange(1, 9),
    ),
    lambda rng: ChaosSpec(
        "stale-lease", "worker",
        after=rng.randrange(1, 3),
        times=None,
    ),
    lambda rng: ChaosSpec(
        "slow-io", "blobs",
        ms=rng.choice((5.0, 15.0, 30.0)),
        times=None,
    ),
    lambda rng: ChaosSpec(
        "disk-full", "shards", after=rng.randrange(2, 8)
    ),
    lambda rng: ChaosSpec(
        "disk-full", "checkpoint", after=rng.randrange(2, 9)
    ),
    lambda rng: ChaosSpec(
        "crash", "worker", after=rng.randrange(1, 5)
    ),
    lambda rng: ChaosSpec("crash", "merge"),
)


def random_plan(rng: Random) -> ChaosPlan:
    """One schedule's fault plan: one or (sometimes) two draws."""
    n_specs = 2 if rng.random() < 0.3 else 1
    return ChaosPlan.of(
        *(rng.choice(_CATALOG)(rng) for _ in range(n_specs))
    )


# ----------------------------------------------------------------------
# Queue schedules: inject -> crash -> doctor -> resume -> gate
# ----------------------------------------------------------------------
def _reference_digest(workdir: Path) -> tuple[str, int]:
    """The sequential no-chaos digest every recovery must reproduce."""
    checkpoint = workdir / "reference.jsonl"
    runner = SweepRunner(
        max_workers=1,
        error_policy="fail_fast",
        backend="inline",
        checkpoint=checkpoint,
    )
    outcome = runner.run_grid(
        campaign_grid(), _FORMATS, _PARTITIONS
    )
    return checkpoint_digest(checkpoint), len(outcome.results)


def _run_queue_schedule(
    index: int,
    rng: Random,
    workdir: Path,
    reference: str,
    n_cells: int,
    workers: int,
) -> dict:
    plan = random_plan(rng)
    checkpoint = workdir / f"schedule-{index}.jsonl"
    queue_dir = workdir / f"queue-{index}"
    crashed: str | None = None
    runner = SweepRunner(
        max_workers=workers,
        error_policy="collect",
        backend="queue",
        checkpoint=checkpoint,
        chaos=plan,
        queue_options=QueueOptions(
            queue_dir=str(queue_dir),
            lease_timeout_s=1.0,
            poll_interval_s=0.05,
            n_shards=4,
            keep_queue=True,
            speculate_factor=3.0,
            speculate_min_samples=4,
            speculate_floor_s=2.0,
        ),
    )
    try:
        runner.run_grid(campaign_grid(), _FORMATS, _PARTITIONS)
    except ChaosCrash as error:
        crashed = f"ChaosCrash: {error}"
    except (CopernicusError, OSError) as error:
        # an injected fault surfacing as ENOSPC / torn state mid-run
        # is still a crash the campaign must recover from; whether
        # the recovery is *correct* is decided by the gates below,
        # not by which exception carried the crash
        crashed = f"{type(error).__name__}: {error}"

    violations: list[str] = []

    # 1. repair whatever the crash left behind (requeue expired
    #    claims, drop torn tails, salvage stranded shard results)
    time.sleep(0.1)  # let crashed workers' leases age past zero
    repair = diagnose_queue(
        queue_dir,
        repair=True,
        lease_timeout_s=0.05,
        checkpoint=checkpoint,
    )

    # 2. resume chaos-free from the surviving checkpoint
    try:
        resumed = SweepRunner(
            max_workers=1,
            error_policy="fail_fast",
            backend="inline",
            checkpoint=checkpoint,
            resume=True,
        ).run_grid(campaign_grid(), _FORMATS, _PARTITIONS)
    except (CopernicusError, OSError) as error:
        violations.append(
            f"resume-failed: {type(error).__name__}: {error}"
        )
        resumed = None

    # 3. the hard gates
    recovered_digest = ""
    if resumed is not None:
        recovered_digest = checkpoint_digest(checkpoint)
        if recovered_digest != reference:
            violations.append(
                f"digest-mismatch: {recovered_digest[:16]} != "
                f"{reference[:16]}"
            )
        if len(resumed.results) != n_cells or not resumed.ok:
            violations.append(
                f"lost-cells: {len(resumed.results)}/{n_cells} "
                f"recovered, {resumed.n_failed} failed"
            )
        coords = [
            (r.workload, r.format_name, r.partition_size)
            for r in resumed.results
        ]
        if len(set(coords)) != len(coords):
            violations.append("duplicated-cells")
    check = diagnose_queue(
        queue_dir,
        repair=False,
        lease_timeout_s=3600.0,
        checkpoint=checkpoint,
    )
    if not check["clean"]:
        violations.append(
            "doctor-dirty: " + json.dumps(check["by_kind"])
        )

    return {
        "index": index,
        "kind": "queue",
        "plan": plan.describe(),
        "fault_kinds": sorted({s.kind for s in plan.specs}),
        "crashed": crashed,
        "recovered_digest": recovered_digest,
        "doctor": {
            "n_findings": repair["n_findings"],
            "n_repaired": repair["n_repaired"],
            "by_kind": repair["by_kind"],
        },
        "violations": violations,
    }


# ----------------------------------------------------------------------
# Serve schedules: load -> drain mid-flight -> gate
# ----------------------------------------------------------------------
async def _serve_schedule(
    index: int, rng: Random, workdir: Path
) -> dict:
    from .serve.loadgen import plan_requests, run_load
    from .serve.server import CharacterizationServer

    # one backend lane + a short admission queue: requests are still
    # in flight (running, queued, or 429-retrying) when the drain
    # lands, which is the scenario under test
    server = CharacterizationServer(
        "127.0.0.1", 0, max_inflight=1, queue_limit=2
    )
    await server.start()
    snapshot_path = workdir / f"serve-{index}.json"
    violations: list[str] = []
    try:
        planned = plan_requests(
            "unique", _SERVE_REQUESTS, seed=rng.randrange(1 << 20)
        )
        drain_after_s = rng.uniform(0.01, 0.08)
        load = asyncio.ensure_future(
            run_load(
                server.host,
                server.port,
                planned,
                concurrency=4,
                retry_policy=RetryPolicy(
                    max_attempts=3,
                    base_delay_s=0.05,
                    max_delay_s=0.2,
                ),
                retry_seed=index,
                tolerate_errors=True,
            )
        )
        await asyncio.sleep(drain_after_s)
        snapshot = await server.drain(
            timeout_s=5.0, snapshot_path=snapshot_path
        )
        outcomes, _ = await load
    finally:
        await server.aclose()

    statuses: dict[str, int] = {}
    for outcome in outcomes:
        key = str(outcome.status)
        statuses[key] = statuses.get(key, 0) + 1
    bad = {
        status
        for status in statuses
        if status not in {"0", "200", "429", "503"}
    }
    if bad:
        violations.append(
            "serve-bad-status: " + ",".join(sorted(bad))
        )
    if snapshot.get("schema") != METRICS_SCHEMA:
        violations.append("snapshot-bad-schema")
    try:
        on_disk = json.loads(snapshot_path.read_text())
        if on_disk.get("schema") != METRICS_SCHEMA:
            violations.append("snapshot-file-bad-schema")
    except (OSError, json.JSONDecodeError) as error:
        violations.append(
            f"snapshot-unreadable: {type(error).__name__}"
        )

    counters = snapshot.get("counters", {})
    return {
        "index": index,
        "kind": "serve",
        "plan": "sigterm@serve#midflight",
        "fault_kinds": ["sigterm"],
        "crashed": None,
        "statuses": statuses,
        "drain": {
            "refused": int(counters.get("serve.drain.refused", 0)),
            "cancelled": int(
                counters.get("serve.drain.cancelled", 0)
            ),
        },
        "violations": violations,
    }


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
def run_chaos_campaign(
    seed: int = 7,
    n_schedules: int = 20,
    *,
    workers: int = 2,
    workdir: "str | Path | None" = None,
) -> dict:
    """Run a full campaign and return the ``bench_chaos/v1`` report.

    Deterministic per ``(seed, n_schedules)``: schedule ``i`` draws
    its fault plan from ``Random(seed * 10007 + i)``.  The report
    records every schedule's verdict; use :func:`check_campaign` to
    turn violations into a :class:`~repro.errors.ChaosError`.
    """
    if n_schedules < 1:
        raise ChaosError(
            f"n_schedules must be >= 1, got {n_schedules}"
        )
    if workers < 1:
        raise ChaosError(f"workers must be >= 1, got {workers}")
    started = time.perf_counter()

    def _campaign(root: Path) -> dict:
        reference, n_cells = _reference_digest(root)
        schedules: list[dict] = []
        for index in range(n_schedules):
            rng = Random(seed * 10007 + index)
            if index % _SERVE_EVERY == _SERVE_EVERY - 1:
                record = asyncio.run(
                    _serve_schedule(index, rng, root)
                )
            else:
                record = _run_queue_schedule(
                    index, rng, root, reference, n_cells, workers
                )
            schedules.append(record)

        recoveries: dict[str, int] = {}
        for record in schedules:
            if record["violations"]:
                continue
            for kind in record["fault_kinds"]:
                recoveries[kind] = recoveries.get(kind, 0) + 1
        n_violations = sum(
            len(record["violations"]) for record in schedules
        )
        return {
            "schema": BENCH_CHAOS_SCHEMA,
            "machine": machine_metadata(),
            "config": {
                "seed": seed,
                "n_schedules": n_schedules,
                "workers": workers,
                "n_cells": n_cells,
                "serve_every": _SERVE_EVERY,
            },
            "reference": {"digest": reference, "n_cells": n_cells},
            "schedules": schedules,
            "summary": {
                "n_schedules": n_schedules,
                "n_queue": sum(
                    1 for r in schedules if r["kind"] == "queue"
                ),
                "n_serve": sum(
                    1 for r in schedules if r["kind"] == "serve"
                ),
                "n_crashed": sum(
                    1 for r in schedules if r["crashed"]
                ),
                "n_recovered": sum(
                    1 for r in schedules if not r["violations"]
                ),
                "n_violations": n_violations,
                "recoveries_by_fault_kind": dict(
                    sorted(recoveries.items())
                ),
                "uncaught_failures": 0,
                "wall_s": time.perf_counter() - started,
            },
        }

    if workdir is not None:
        root = Path(workdir)
        root.mkdir(parents=True, exist_ok=True)
        return _campaign(root)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        return _campaign(Path(tmp))


def check_campaign(report: dict) -> None:
    """Raise :class:`ChaosError` if any schedule violated a gate."""
    broken = [
        record
        for record in report["schedules"]
        if record["violations"]
    ]
    if not broken:
        return
    details = "; ".join(
        f"schedule {record['index']} ({record['plan']}): "
        + ", ".join(record["violations"])
        for record in broken
    )
    raise ChaosError(
        f"{report['summary']['n_violations']} invariant "
        f"violation(s) across {len(broken)} schedule(s): {details}"
    )


def write_chaos_report(report: dict, path: "str | Path") -> Path:
    """Atomically persist one campaign report."""
    target = Path(path)
    io_atomic.atomic_write_json(target, report)
    return target
