"""Command-line interface.

Everything the library computes is reachable from the shell::

    python -m repro formats
    python -m repro experiments
    python -m repro table1
    python -m repro table2
    python -m repro characterize --random 512 --density 0.02 -f csr -p 16
    python -m repro characterize --standin WG --all-formats
    python -m repro sweep --group band --metric sigma
    python -m repro sweep --group random --workers 4 --profile
    python -m repro sweep --group band --emit-metrics run.jsonl
    python -m repro sweep --group band --checkpoint ckpt.jsonl
    python -m repro sweep --group band --checkpoint ckpt.jsonl --resume
    python -m repro sweep --group random --error-policy fail_fast
    python -m repro sweep --group band --integrity-check
    python -m repro sweep --group band --backend queue --workers 4 \
        --checkpoint ckpt.jsonl
    python -m repro sweep --group band --backend queue --queue-dir q \
        --queue-workers 0   # coordinator only; join workers by hand
    python -m repro worker --queue q
    python -m repro checkpoint ckpt.jsonl
    python -m repro checkpoint ckpt.jsonl --digest
    python -m repro checkpoint ckpt.jsonl --compact --out tidy.jsonl
    python -m repro bench-distributed --quick
    python -m repro stats run.jsonl
    python -m repro stats run.jsonl --against baseline.jsonl
    python -m repro integrity --random 64 --density 0.08 --injections 50
    python -m repro advise --standin KR
    python -m repro advisor train --out advisor_model.json
    python -m repro advisor train --from-manifest run.jsonl
    python -m repro advisor bench --model advisor_model.json
    python -m repro advise --random 512 --density 0.02 --fast \
        --model advisor_model.json
    python -m repro serve --port 8787 --budget-s 5
    python -m repro serve --port 8787 --fast-model advisor_model.json
    python -m repro serve --port 8787 --metrics-snapshot final.json
    python -m repro serve --port 8787 --shed-p99-ms 250
    python -m repro loadgen --port 8787 --mix hot --requests 200
    python -m repro loadgen --spawn --requests 200 --seed 7
    python -m repro loadgen --spawn --mix hostile --require-containment
    python -m repro fuzz --cases 400 --save-crashes
    python -m repro fuzz --replay
    python -m repro guard --quick --output BENCH_guard.json
    python -m repro chaos --seed 7 --schedules 20
    python -m repro doctor q --checkpoint ckpt.jsonl --repair
    python -m repro doctor q --check

Each sub-command builds its workload, runs the characterization core,
and prints plain-text tables (``repro.analysis``).
"""

from __future__ import annotations

import argparse
from typing import Sequence

from .analysis import (
    EXPERIMENTS,
    characterization_report,
    compare_records,
    comparison_table,
    format_table,
    integrity_report_text,
    manifest_diff_table,
    manifest_summary_table,
    profile_table,
)
from .core import (
    SUMMARY_METRICS,
    SpmvSimulator,
    explore,
    load_records,
    pareto_frontier,
    run_integrity_campaign,
    summarize,
)
from .engine import SweepRunner
from .errors import CopernicusError, SimulationError, SweepCellError
from .formats import ALL_FORMATS, CORRUPTION_KINDS, PAPER_FORMATS, get_format
from .hardware import (
    DEFAULT_CONFIG,
    PAPER_TABLE2,
    HardwareConfig,
    estimate_power,
    estimate_resources,
)
from .matrix import SparseMatrix
from .partition import PARTITION_SIZES
from .workloads import (
    TABLE1,
    Workload,
    band_matrix,
    poisson_2d,
    random_matrix,
    standin_by_id,
    workload_group,
)

__all__ = ["main", "build_parser"]


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--random", type=int, metavar="N",
        help="uniform random N x N matrix (see --density)",
    )
    source.add_argument(
        "--band", type=int, metavar="N",
        help="band matrix of size N (see --width)",
    )
    source.add_argument(
        "--poisson", type=int, metavar="GRID",
        help="2-D Poisson stencil on a GRID x GRID domain",
    )
    source.add_argument(
        "--standin", metavar="ID",
        help="Table 1 stand-in by two-letter ID (e.g. WG, KR)",
    )
    parser.add_argument(
        "--density", type=float, default=0.01,
        help="density for --random (default 0.01)",
    )
    parser.add_argument(
        "--width", type=int, default=8,
        help="band width for --band (default 8)",
    )
    parser.add_argument(
        "--max-dim", type=int, default=2048,
        help="dimension cap for --standin (default 2048)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default 0)"
    )


def _build_workload(args: argparse.Namespace) -> tuple[str, SparseMatrix]:
    if args.random is not None:
        return (
            f"random-{args.density:g}",
            random_matrix(args.random, args.density, seed=args.seed),
        )
    if args.band is not None:
        return (
            f"band-{args.width}",
            band_matrix(args.band, args.width, seed=args.seed),
        )
    if args.poisson is not None:
        return f"poisson-{args.poisson}", poisson_2d(args.poisson)
    return (
        args.standin,
        standin_by_id(args.standin, max_dim=args.max_dim, seed=args.seed),
    )


def _cmd_formats(_: argparse.Namespace) -> str:
    rows = []
    for name in ALL_FORMATS:
        fmt = get_format(name)
        flags = []
        if name in PAPER_FORMATS:
            flags.append("paper")
        rows.append([name, type(fmt).__name__, ", ".join(flags)])
    return format_table(
        ["name", "class", "notes"], rows, title="Registered sparse formats"
    )


def _cmd_experiments(_: argparse.Namespace) -> str:
    rows = [
        [exp.id, exp.artifact, exp.description, exp.benchmark]
        for exp in EXPERIMENTS
    ]
    return format_table(
        ["id", "artifact", "description", "benchmark"],
        rows,
        title="Experiment index (see DESIGN.md)",
    )


def _cmd_table1(_: argparse.Namespace) -> str:
    rows = [
        [r.id, r.name, r.dim_millions, r.nnz_millions, r.kind, r.family]
        for r in TABLE1
    ]
    return format_table(
        ["ID", "Name", "Dim(M)", "NNZ(M)", "Kind", "stand-in family"],
        rows,
        title="Table 1: SuiteSparse matrices",
    )


def _cmd_table2(_: argparse.Namespace) -> str:
    rows = []
    for paper_row in PAPER_TABLE2:
        for p in PARTITION_SIZES:
            config = HardwareConfig(partition_size=p)
            resources = estimate_resources(paper_row.format_name, config)
            power = estimate_power(paper_row.format_name, config, resources)
            published = paper_row.at(p)
            rows.append(
                [
                    paper_row.format_name, p,
                    resources.bram_18k, published[0],
                    resources.ff_thousands, published[1],
                    resources.lut_thousands, published[2],
                    power.dynamic_w, published[3],
                ]
            )
    return format_table(
        ["format", "p", "BRAM", "(paper)", "FF k", "(paper)",
         "LUT k", "(paper)", "dyn W", "(paper)"],
        rows,
        title="Table 2: model vs published",
    )


def _cmd_characterize(args: argparse.Namespace) -> str:
    name, matrix = _build_workload(args)
    simulator = SpmvSimulator(HardwareConfig(partition_size=args.partition))
    formats = PAPER_FORMATS if args.all_formats else tuple(args.format)
    results = simulator.characterize_formats(matrix, formats, workload=name)
    rows = [
        [
            fmt,
            result.sigma,
            result.total_seconds * 1e6,
            result.balance_ratio,
            result.throughput_bytes_per_s / 1e9,
            result.bandwidth_utilization,
            result.dynamic_power_w,
        ]
        for fmt, result in results.items()
    ]
    return format_table(
        ["format", "sigma", "latency us", "balance", "thr GB/s",
         "bw util", "dyn W"],
        rows,
        title=f"Characterization of {name} ({matrix.n_rows}x"
        f"{matrix.n_cols}, nnz={matrix.nnz}, p={args.partition})",
    )


def _queue_options(args: argparse.Namespace):
    """Build QueueOptions from sweep flags, or None off the queue path."""
    if args.backend != "queue":
        return None
    from .engine.distributed import QueueOptions

    return QueueOptions(
        queue_dir=args.queue_dir,
        spawn_workers=args.queue_workers,
        lease_timeout_s=args.lease_timeout,
        keep_queue=args.keep_queue,
        speculate_factor=args.speculate,
    )


def _cmd_sweep(args: argparse.Namespace) -> str:
    workloads = workload_group(args.group)
    telemetry = args.profile or args.emit_metrics is not None
    runner = SweepRunner(
        max_workers=args.workers,
        telemetry=telemetry,
        error_policy=args.error_policy,
        max_retries=args.max_retries,
        chunk_timeout=args.chunk_timeout,
        faults=args.inject_faults,
        checkpoint=args.checkpoint,
        resume=args.resume,
        backend=args.backend,
        queue_options=_queue_options(args),
        chaos=args.inject_chaos,
    )
    base_config = (
        HardwareConfig(integrity_check=True)
        if args.integrity_check
        else DEFAULT_CONFIG
    )
    outcome = runner.run_grid(
        workloads,
        PAPER_FORMATS,
        partition_sizes=tuple(args.partitions),
        base_config=base_config,
    )
    cube = outcome.by_coords()
    blocks = []
    for p in args.partitions:
        rows = []
        for load in workloads:
            row: list = [load.name]
            for fmt in PAPER_FORMATS:
                result = cube.get((load.name, fmt, p))
                row.append(
                    "FAILED" if result is None
                    else getattr(result, args.metric)
                )
            rows.append(row)
        blocks.append(
            format_table(
                ["workload"] + list(PAPER_FORMATS),
                rows,
                title=f"{args.metric} sweep, group={args.group}, p={p}",
            )
        )
    if outcome.failures:
        blocks.append(
            format_table(
                ["workload", "format", "p", "error", "attempts"],
                [
                    [
                        f.workload,
                        f.format_name,
                        f.partition_size,
                        f"{f.error_type}: {f.message}"[:60],
                        f.attempts,
                    ]
                    for f in outcome.failures
                ],
                title=f"Failed cells ({outcome.n_failed})",
            )
        )
    if args.profile:
        blocks.append(profile_table(outcome.telemetry))
    if args.emit_metrics is not None:
        path = outcome.write_manifest(args.emit_metrics)
        blocks.append(f"run manifest written to {path}")
    return "\n\n".join(blocks)


def _cmd_integrity(args: argparse.Namespace) -> str:
    name, matrix = _build_workload(args)
    formats = (
        tuple(args.format) if args.format else ALL_FORMATS
    )
    report = run_integrity_campaign(
        matrix,
        format_names=formats,
        partition_sizes=tuple(args.partitions),
        kinds=tuple(args.kinds),
        injections=args.injections,
        seed=args.seed,
    )
    text = f"Integrity campaign on {name}\n\n" + integrity_report_text(
        report
    )
    if args.emit is not None:
        from pathlib import Path

        from . import io_atomic

        path = Path(args.emit)
        io_atomic.atomic_write_text(
            path, report.to_json(indent=2) + "\n"
        )
        text += f"\n\ndetection-coverage report written to {path}"
    return text


def _cmd_worker(args: argparse.Namespace) -> str:
    from .engine.distributed import run_worker

    stats = run_worker(
        args.queue,
        worker_id=args.worker_id,
        poll_interval_s=args.poll_interval,
        max_chunks=args.max_chunks,
        oneshot=args.oneshot,
    )
    return (
        f"worker {stats['worker']} (home shard {stats['home_shard']}) "
        f"finished: {stats['n_chunks']} chunks, {stats['n_cells']} "
        f"cells, {stats['n_stolen']} stolen from foreign shards"
    )


def _is_checkpoint_file(path) -> bool:
    """True iff ``path``'s header line is a sweep-checkpoint header."""
    import json

    from .engine.checkpoint import CHECKPOINT_KIND

    try:
        with open(path, encoding="utf-8") as handle:
            first = handle.readline()
        return json.loads(first).get("kind") == CHECKPOINT_KIND
    except (OSError, ValueError, AttributeError):
        return False


def _checkpoint_summary_text(summary: dict) -> str:
    lines = [
        f"checkpoint {summary['path']}",
        f"  digest: {summary['digest']}",
        f"  records: {summary['n_records']} "
        f"({summary['n_duplicate_cells']} superseded duplicates), "
        f"{summary['bytes']} bytes",
        f"  cells: {summary['n_cells']} finished, "
        f"{summary['n_failed']} failed, "
        f"{summary['n_encodings']} encoding summaries",
        f"  recorded wall time: {summary['recorded_wall_s']:.2f}s",
    ]
    if summary["cells_per_workload"]:
        lines.append("  cells per workload:")
        for workload, count in sorted(
            summary["cells_per_workload"].items()
        ):
            lines.append(f"    {workload}: {count}")
    for failed in summary["failed"]:
        lines.append(f"  FAILED {failed}")
    return "\n".join(lines)


def _cmd_checkpoint(args: argparse.Namespace) -> str:
    from pathlib import Path

    from .engine.checkpoint import (
        checkpoint_summary,
        compact_checkpoint,
    )
    from .errors import CheckpointError

    if not Path(args.path).is_file():
        raise CheckpointError(
            f"checkpoint not found: {args.path} (write one with "
            "`repro sweep --checkpoint PATH`)"
        )
    if args.compact:
        result = compact_checkpoint(args.path, output=args.out)
        return (
            f"compacted {args.path} -> {result['path']}: "
            f"{result['records_before']} -> {result['records_after']} "
            f"records ({result['dropped']} dropped), "
            f"{result['bytes_before']} -> {result['bytes_after']} "
            f"bytes\ndigest: {result['digest']}"
        )
    summary = checkpoint_summary(args.path)
    if args.digest:
        return summary["digest"]
    return _checkpoint_summary_text(summary)


def _cmd_stats(args: argparse.Namespace) -> str:
    from pathlib import Path

    from .errors import ManifestError
    from .observability import read_manifest

    # fail with a per-argument message before read_manifest's generic
    # one: with --against the user needs to know *which* path is bad
    hint = (
        "pass a JSON-lines manifest written by "
        "`repro sweep --emit-metrics PATH`"
    )
    if not Path(args.manifest).is_file():
        raise ManifestError(
            f"manifest not found: {args.manifest} ({hint})"
        )
    if _is_checkpoint_file(args.manifest):
        # checkpoints are JSON-lines too; route them to the richer
        # checkpoint summary instead of a manifest parse error
        from .engine.checkpoint import checkpoint_summary

        if args.against is not None:
            raise ManifestError(
                "--against diffs run manifests; to compare "
                "checkpoints, compare `repro checkpoint PATH "
                "--digest` outputs"
            )
        return _checkpoint_summary_text(
            checkpoint_summary(args.manifest)
        )
    if args.against is not None and not Path(args.against).is_file():
        raise ManifestError(
            f"--against baseline not found: {args.against} ({hint})"
        )
    manifest = read_manifest(args.manifest)
    if args.against is not None:
        baseline = read_manifest(args.against)
        return manifest_diff_table(
            baseline,
            manifest,
            min_relative=args.threshold,
            limit=args.limit,
        )
    return manifest_summary_table(manifest, slowest=args.slowest)


def _cmd_report(args: argparse.Namespace) -> str:
    name, matrix = _build_workload(args)
    return characterization_report(matrix, name)


def _cmd_compare(args: argparse.Namespace) -> str:
    deltas = compare_records(
        load_records(args.before),
        load_records(args.after),
        min_relative=args.threshold,
    )
    if not deltas:
        return "no metric changes above the threshold"
    return comparison_table(deltas, limit=args.limit)


def _cmd_pareto(args: argparse.Namespace) -> str:
    name, matrix = _build_workload(args)
    points = explore(matrix, lane_counts=tuple(args.lanes))
    frontier = pareto_frontier(points, tuple(args.objectives))
    rows = [
        [
            point.format_name,
            point.partition_size,
            point.n_lanes,
        ]
        + [point.metric(obj) for obj in args.objectives]
        for point in frontier
    ]
    return format_table(
        ["format", "p", "lanes"] + list(args.objectives),
        rows,
        title=f"Pareto frontier for {name} "
        f"({len(frontier)} of {len(points)} designs)",
    )


def _cmd_bench(args: argparse.Namespace) -> str:
    from .bench import bench_pipeline, bench_report, write_report

    n = 1024 if args.quick else args.n
    formats = (
        tuple(args.format) if args.format else PAPER_FORMATS
    )
    results = bench_pipeline(
        n=n,
        p=args.partition,
        density=args.density,
        band_width=args.band_width,
        formats=formats,
        repeats=args.repeats,
        seed=args.seed,
    )
    report = bench_report(
        results,
        n=n,
        p=args.partition,
        density=args.density,
        band_width=args.band_width,
        repeats=args.repeats,
    )
    path = write_report(report, args.output)
    rows = [
        [
            r.workload,
            r.format_name,
            r.n_tiles,
            r.scalar_s * 1e3,
            r.batch_s * 1e3,
            r.speedup,
            r.batch_cells_per_s / 1e6,
        ]
        for r in results
    ]
    summary = report["summary"]
    table = format_table(
        ["workload", "format", "tiles", "scalar ms", "batch ms",
         "speedup", "Mcells/s"],
        rows,
        title=f"Pipeline batch vs scalar, {n}x{n}, p={args.partition}",
    )
    return table + (
        f"\n\nspeedup: min {summary['min_speedup']:.1f}x, "
        f"geomean {summary['geomean_speedup']:.1f}x, "
        f"max {summary['max_speedup']:.1f}x"
        f"\nreport written to {path}"
    )


def _cmd_bench_distributed(args: argparse.Namespace) -> str:
    from .bench_distributed import (
        bench_distributed,
        check_distributed_report,
        write_distributed_report,
    )

    report = bench_distributed(quick=args.quick)
    path = write_distributed_report(report, args.output)
    scaling = report["scaling"]
    rows = [
        [
            row["workers"],
            row["wall_s"],
            row["cells_per_s"],
            row["speedup_vs_1"],
            row["checkpoint_digest"][:12],
        ]
        for row in scaling["rows"]
    ]
    table = format_table(
        ["workers", "wall s", "cells/s", "speedup", "digest"],
        rows,
        title=(
            f"Queue scaling, {scaling['n_cells']} cells, "
            f"{scaling['cell_cost_s']:g}s service floor"
        ),
    )
    streaming = report["streaming"]
    summary = report["summary"]
    lines = [
        table,
        "",
        f"out-of-core: {streaming['triplet_mb']:.1f} MB of triplets "
        f"profiled under a {streaming['memory_budget_mb']:g} MB "
        f"budget, peak RSS reduced "
        f"{summary['rss_reduction']:.1f}x",
        f"report written to {path}",
    ]
    if args.check and not args.quick:
        problems = check_distributed_report(report)
        if problems:
            raise SimulationError(
                "distributed benchmark gate failed: "
                + "; ".join(problems)
            )
        lines.append("gates passed")
    return "\n".join(lines)


def _cmd_advise(args: argparse.Namespace) -> str:
    if args.fast:
        return _cmd_advise_fast(args)
    name, matrix = _build_workload(args)
    workload = Workload(name=name, group="cli", matrix=matrix)
    results = SweepRunner(error_policy="fail_fast").run_grid(
        [workload], PAPER_FORMATS, partition_sizes=PARTITION_SIZES
    ).results
    scores = sorted(
        summarize(results, PAPER_FORMATS),
        key=lambda s: s.overall,
        reverse=True,
    )
    metric_names = list(SUMMARY_METRICS)
    table = format_table(
        ["rank", "format"] + metric_names + ["overall"],
        [
            [index + 1, score.format_name]
            + [score.scores[m] for m in metric_names]
            + [score.overall]
            for index, score in enumerate(scores)
        ],
        title=f"Format recommendation for {name} (1 = best)",
    )
    return table + f"\n\nrecommended format: {scores[0].format_name}"


def _cmd_advise_fast(args: argparse.Namespace) -> str:
    from pathlib import Path

    from .advisor import load_model, recommend_fast
    from .errors import AdvisorModelError

    # fail with a per-argument message before load_model's generic
    # one: the fix (train a model, or fix the path) is specific to
    # this flag
    if not Path(args.model).is_file():
        raise AdvisorModelError(
            f"--model not found: {args.model} (train one with "
            "`repro advisor train --out PATH`)"
        )
    model = load_model(args.model)
    name, matrix = _build_workload(args)
    advice = recommend_fast(
        matrix, model, margin_threshold=args.margin, verify=True
    )
    rows = [
        [index + 1, candidate.format_name, candidate.partition_size,
         round(candidate.value)]
        for index, candidate in enumerate(advice.ranking)
    ]
    table = format_table(
        ["rank", "format", "p", "predicted cycles"],
        rows,
        title=f"Fast format advice for {name} (1 = best)",
    )
    if advice.verified:
        provenance = (
            "margin below threshold; the exact model verified the "
            "answer"
        )
    else:
        provenance = "predicted (margin cleared the threshold)"
    return table + (
        f"\n\nrecommended: {advice.best_format} at "
        f"p={advice.best_partition_size}"
        f"\nmargin: {advice.margin:.4f} "
        f"(threshold {advice.margin_threshold:g}) — {provenance}"
        f"\nmodel: {advice.model_digest}"
    )


def _cmd_advisor_train(args: argparse.Namespace) -> str:
    from pathlib import Path

    from .advisor import (
        rows_from_manifest,
        rows_from_outcome,
        save_model,
        split_holdout,
        train_model,
        workload_zoo,
    )
    from .errors import AdvisorError

    zoo = workload_zoo(args.zoo_seed)
    train_specs, heldout = split_holdout(
        zoo, args.holdout, args.split_seed
    )
    formats = (
        tuple(args.formats) if args.formats else PAPER_FORMATS
    )
    partitions = tuple(args.partitions)
    lines: list[str] = []
    if args.from_manifest:
        hint = (
            "pass a JSON-lines manifest written by `repro advisor "
            "train --emit-manifest PATH` or `repro sweep "
            "--emit-metrics PATH`"
        )
        for path in args.from_manifest:
            if not Path(path).is_file():
                raise AdvisorError(
                    f"--from-manifest not found: {path} ({hint})"
                )
        rows = []
        for path in args.from_manifest:
            found, skipped = rows_from_manifest(path, train_specs)
            rows.extend(found)
            lines.append(
                f"{path}: {len(found)} training rows"
                + (
                    f", {len(skipped)} foreign workloads skipped"
                    if skipped
                    else ""
                )
            )
    else:
        runner = SweepRunner(
            max_workers=args.workers,
            telemetry=args.emit_manifest is not None,
            error_policy="fail_fast",
        )
        outcome = runner.run_grid(
            list(train_specs), formats, partition_sizes=partitions
        )
        rows = rows_from_outcome(outcome, train_specs)
        lines.append(
            f"swept {len(train_specs)} workloads x {len(formats)} "
            f"formats x {len(partitions)} partition sizes: "
            f"{len(rows)} training rows"
        )
        if args.emit_manifest is not None:
            path = outcome.write_manifest(args.emit_manifest)
            lines.append(f"training manifest written to {path}")
    model = train_model(
        train_specs,
        rows,
        feature_p=args.feature_p,
        ridge_lambda=args.ridge_lambda,
        # no row-provenance field here: a model trained from a sweep
        # and one trained from that sweep's manifest must be
        # byte-identical (data_digest already pins the observations)
        training={
            "zoo_seed": args.zoo_seed,
            "split_seed": args.split_seed,
            "holdout_fraction": args.holdout,
            "formats": sorted(formats),
            "partitions": sorted(partitions),
        },
    )
    out = save_model(model, args.out)
    lines.append(
        f"trained {len(model.heads)} heads on "
        f"{model.training['n_workloads']} workloads "
        f"({len(heldout)} held out)"
    )
    lines.append(f"model digest: {model.digest}")
    lines.append(f"advisor model written to {out}")
    return "\n".join(lines)


def _cmd_advisor_bench(args: argparse.Namespace) -> str:
    from pathlib import Path

    from .advisor import (
        bench_advisor,
        default_latency_specs,
        load_model,
        split_holdout,
        workload_zoo,
        write_advisor_report,
    )
    from .errors import AdvisorError, AdvisorModelError

    if not Path(args.model).is_file():
        raise AdvisorModelError(
            f"--model not found: {args.model} (train one with "
            "`repro advisor train --out PATH`)"
        )
    model = load_model(args.model)
    meta = model.training
    zoo = workload_zoo(int(meta.get("zoo_seed", 0)))
    _, heldout = split_holdout(
        zoo,
        float(meta.get("holdout_fraction", 0.25)),
        int(meta.get("split_seed", 0)),
    )
    report = bench_advisor(
        model,
        heldout,
        repeats=args.repeats,
        latency_specs=default_latency_specs(args.latency_n),
    )
    path = write_advisor_report(report, args.output)
    accuracy = report["accuracy"]
    latency = report["latency"]
    lines = [
        f"held-out accuracy over {report['config']['n_heldout']} "
        f"workloads x {report['config']['n_cells']} design points:",
        f"  spearman: mean {accuracy['spearman_mean']:.4f}, "
        f"min {accuracy['spearman_min']:.4f}",
        f"  agreement: top-1 {accuracy['top1_agreement']:.3f}, "
        f"top-3 {accuracy['top3_agreement']:.3f}",
        "advise latency (exact vs fast path):",
    ]
    for row in latency["per_workload"]:
        lines.append(
            f"  {row['workload']}: {row['exact_ms']:.1f} ms -> "
            f"{row['fast_ms']:.2f} ms ({row['speedup']:.0f}x)"
        )
    lines.append(
        f"  speedup: geomean {latency['speedup_geomean']:.0f}x, "
        f"min {latency['speedup_min']:.0f}x"
    )
    lines.append(f"report written to {path}")
    failures = []
    if (
        args.require_spearman is not None
        and accuracy["spearman_mean"] < args.require_spearman
    ):
        failures.append(
            f"spearman_mean {accuracy['spearman_mean']:.4f} < "
            f"required {args.require_spearman}"
        )
    if (
        args.require_top3 is not None
        and accuracy["top3_agreement"] < args.require_top3
    ):
        failures.append(
            f"top3_agreement {accuracy['top3_agreement']:.3f} < "
            f"required {args.require_top3}"
        )
    if (
        args.require_speedup is not None
        and latency["speedup_min"] < args.require_speedup
    ):
        failures.append(
            f"speedup_min {latency['speedup_min']:.1f}x < "
            f"required {args.require_speedup}x"
        )
    if failures:
        raise AdvisorError(
            "accuracy contract not met: " + "; ".join(failures)
        )
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> str:
    import asyncio
    from pathlib import Path

    from .serve import CharacterizationServer

    advisor_model = None
    if args.fast_model is not None:
        from .advisor import load_model
        from .errors import AdvisorModelError

        # load eagerly so a missing or corrupt artifact fails the boot
        # with a per-argument message instead of silently serving the
        # exact path only
        if not Path(args.fast_model).is_file():
            raise AdvisorModelError(
                f"--fast-model not found: {args.fast_model} (train "
                "one with `repro advisor train --out PATH`)"
            )
        advisor_model = load_model(args.fast_model)

    from .guard import GuardPolicy, SandboxLimits

    # the CLI server is the one that faces real clients, so the guard
    # layer (breaker + sandbox) is armed unless explicitly disabled;
    # shedding additionally needs an SLO threshold to act on
    guard_policy = None
    if not args.no_guard:
        guard_policy = GuardPolicy(
            breaker_threshold=args.breaker_threshold,
            breaker_recovery_s=args.breaker_recovery,
            breaker_probes=args.breaker_probes,
            shed_p99_ms=args.shed_p99_ms,
            shed_queue_depth=args.shed_queue_depth,
            shed_retry_after_s=args.shed_retry_after,
            cheap_lane_width=args.cheap_lane_width,
        )
    sandbox_limits = SandboxLimits(
        wall_s=args.sandbox_wall_s,
        rss_mb=args.sandbox_rss_mb,
    )

    async def _run() -> str:
        import signal

        server = CharacterizationServer(
            args.host,
            args.port,
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
            budget_s=args.budget_s,
            cache_size=args.cache_size,
            max_dim=args.max_dim,
            faults=args.inject_faults,
            advisor_model=advisor_model,
            advisor_margin=args.fast_margin,
            guard_policy=guard_policy,
            sandbox_limits=sandbox_limits,
        )
        await server.start()
        shedding = guard_policy is not None and (
            guard_policy.shed_p99_ms is not None
            or guard_policy.shed_queue_depth is not None
        )
        guard_state = (
            "off" if guard_policy is None
            else "breaker+shedding" if shedding
            else "breaker"
        )
        print(
            f"serving on http://{server.host}:{server.port}  "
            "(POST /characterize, POST /advise, GET /metrics, "
            f"GET /healthz; guard: {guard_state}; "
            "SIGTERM/Ctrl-C drains and stops)",
            flush=True,
        )
        # SIGTERM and SIGINT both take the graceful path: stop
        # accepting, give in-flight requests --drain-timeout to
        # finish (stragglers answer 503), flush a final metrics/v1
        # snapshot, then exit 0
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        hooked = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                hooked.append(signum)
            except (NotImplementedError, RuntimeError):
                pass
        forever = asyncio.ensure_future(server.serve_forever())
        stopped = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                {forever, stopped},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for task in (forever, stopped):
                task.cancel()
            await asyncio.gather(
                forever, stopped, return_exceptions=True
            )
            for signum in hooked:
                loop.remove_signal_handler(signum)
            await server.drain(
                timeout_s=args.drain_timeout,
                snapshot_path=args.metrics_snapshot,
            )
            await server.aclose()
        if args.metrics_snapshot is not None:
            return (
                "server drained and stopped; final metrics "
                f"snapshot written to {args.metrics_snapshot}"
            )
        return "server drained and stopped"

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        return "server stopped"


def _cmd_loadgen(args: argparse.Namespace) -> str:
    import asyncio
    from pathlib import Path

    from . import io_atomic
    from .errors import LoadGenError
    from .serve import CharacterizationServer
    from .serve.loadgen import run_loadgen

    async def _run() -> dict:
        server = None
        host, port = args.host, args.port
        if args.spawn:
            guard_policy = None
            if args.mix == "hostile":
                # hostile traffic against an unguarded private server
                # would just measure the absence of the defense line
                from .guard import GuardPolicy

                guard_policy = GuardPolicy()
            server = CharacterizationServer(
                host,
                0,
                max_inflight=args.max_inflight,
                budget_s=args.budget_s,
                guard_policy=guard_policy,
            )
            await server.start()
            port = server.port
        elif port is None:
            raise LoadGenError(
                "pass --port of a running `repro serve`, or --spawn "
                "to boot a private server for the run"
            )
        try:
            return await run_loadgen(
                host,
                port,
                mix=args.mix,
                requests=args.requests,
                seed=args.seed,
                concurrency=args.concurrency,
                retry_policy=retry_policy,
            )
        finally:
            if server is not None:
                await server.aclose()

    retry_policy = None
    if args.retry_attempts:
        from .engine.retry import RetryPolicy

        retry_policy = RetryPolicy(
            max_attempts=args.retry_attempts + 1
        )
    report = asyncio.run(_run())
    path = Path(args.output)
    io_atomic.atomic_write_json(path, report)
    if args.require_zero_5xx and report["n_5xx"]:
        raise LoadGenError(
            f"{report['n_5xx']} of {report['requests']} responses "
            f"were 5xx (statuses: {report['statuses']})"
        )
    server_stats = report["server"]
    if args.require_coalesce and server_stats["coalesce_hits"] == 0:
        raise LoadGenError(
            "no request coalesced onto an in-flight computation; "
            "expected coalesce hits under this mix "
            f"({report['mix']}, concurrency {report['concurrency']})"
        )
    latency = report["latency_ms"]
    lines = [
        f"mix={report['mix']} requests={report['requests']} "
        f"seed={report['seed']} concurrency={report['concurrency']}",
        f"throughput: {report['throughput_rps']:.1f} req/s "
        f"over {report['wall_s']:.2f}s",
        "latency ms: "
        f"p50={latency['p50']:.2f} p90={latency['p90']:.2f} "
        f"p99={latency['p99']:.2f} max={latency['max']:.2f}",
        f"statuses: {report['statuses']} (5xx: {report['n_5xx']}, "
        f"degraded: {report['n_degraded']})",
        f"retries: {report['retries']['total']} total over "
        f"{report['retries']['requests_retried']} requests, "
        f"{report['retries']['resolved_429']} resolved to 200",
        f"sources: {report['sources']}",
        "server: "
        f"coalesce {server_stats['coalesce_hits']} hits "
        f"({server_stats['coalesce_hit_rate']:.0%}), "
        f"cache {server_stats['cache_hits']} hits "
        f"({server_stats['cache_hit_rate']:.0%}), "
        f"{server_stats['computations']} backend computations",
        f"report written to {path}",
    ]
    hostile = report["hostile"]
    if hostile["requests"]:
        lines.insert(
            -1,
            f"hostile: {hostile['requests']} requests, "
            f"{hostile['contained']} contained, "
            f"{hostile['served_2xx']} served 2xx, "
            f"worker harm: {hostile['worker_harm']}",
        )
    if args.require_containment and hostile["worker_harm"]:
        raise LoadGenError(
            f"{hostile['worker_harm']} of {hostile['requests']} "
            "hostile requests harmed a worker (connection drop or "
            f"unhandled 5xx; statuses: {hostile['statuses']})"
        )
    return "\n".join(lines)


def _cmd_fuzz(args: argparse.Namespace) -> str:
    from pathlib import Path

    from . import io_atomic
    from .errors import FuzzError
    from .guard import (
        DEFAULT_CORPUS_DIR,
        Sandbox,
        SandboxLimits,
        fuzz_run,
        minimize_case,
        replay_corpus,
        save_case,
    )

    corpus_dir = Path(args.corpus)
    limits = SandboxLimits(wall_s=args.sandbox_wall_s)
    with Sandbox(limits) as sandbox:
        if args.replay:
            report = replay_corpus(corpus_dir, sandbox=sandbox)
            mode = f"replayed corpus {corpus_dir}"
        else:
            n_cases, budget_s = args.cases, args.budget_s
            if n_cases is None and budget_s is None:
                n_cases = 400
            report = fuzz_run(
                args.seed,
                n_cases=n_cases,
                budget_s=budget_s,
                sandbox=sandbox,
            )
            mode = f"fuzzed seed={args.seed}"
    verdicts = ", ".join(
        f"{kind}={count}"
        for kind, count in sorted(report.by_verdict.items())
    )
    lines = [
        f"{mode}: {report.tried} inputs in {report.wall_s:.1f}s",
        f"verdicts: {verdicts or 'none'}",
    ]
    saved: list[str] = []
    if report.crashes and args.save_crashes:
        # one minimized corpus entry per distinct signature — the
        # regression corpus records crash classes, not every instance
        seen: set = set()
        for outcome in report.crashes:
            if outcome.signature in seen:
                continue
            seen.add(outcome.signature)
            path = save_case(
                corpus_dir, minimize_case(outcome.case)
            )
            saved.append(str(path))
        lines.append(
            "minimized crash cases saved: " + ", ".join(saved)
        )
    if args.output is not None:
        io_atomic.atomic_write_json(
            Path(args.output), report.to_dict()
        )
        lines.append(f"report written to {args.output}")
    if report.crashes:
        signatures = ", ".join(report.crash_signatures)
        if args.no_gate:
            lines.append(
                f"CRASHES: {len(report.crashes)} ({signatures})"
            )
        else:
            raise FuzzError(
                f"{len(report.crashes)} of {report.tried} inputs "
                f"crashed the pipeline ({signatures})"
                + (
                    f"; minimized cases saved to {corpus_dir}"
                    if saved
                    else "; rerun with --save-crashes to record them"
                )
            )
    else:
        lines.append("no crashes: every input came back as a typed verdict")
    return "\n".join(lines)


def _cmd_guard(args: argparse.Namespace) -> str:
    from .guard import (
        check_guard_campaign,
        run_guard_campaign,
        write_guard_report,
    )

    fuzz_cases = args.fuzz_cases
    hostile_requests = args.hostile_requests
    if args.quick:
        fuzz_cases = min(fuzz_cases, 120)
        hostile_requests = min(hostile_requests, 16)
    report = run_guard_campaign(
        seed=args.seed,
        corpus_dir=args.corpus,
        fuzz_cases=fuzz_cases,
        fuzz_budget_s=args.fuzz_budget_s,
        hostile_requests=hostile_requests,
        concurrency=args.concurrency,
    )
    path = write_guard_report(report, args.output)
    summary = report["summary"]
    breaker = report["breaker"]
    shedding = report["shedding"]
    hostile = report["hostile"]["hostile"]
    lines = [
        f"guard campaign: seed={report['config']['seed']} "
        f"{summary['inputs_executed']} hostile inputs "
        f"in {summary['wall_s']:.1f}s",
        f"corpus: {report['corpus']['n_cases']} cases, "
        f"crashes: {len(report['corpus']['crash_signatures'])}, "
        f"unhandled: {len(report['corpus']['unhandled_exceptions'])}",
        f"fuzz: {report['fuzz']['inputs_tried']} inputs, "
        f"new crash signatures: "
        f"{len(report['fuzz']['new_crash_signatures'])}",
        f"breaker: opened={breaker['opened']} "
        f"recovered={breaker['recovered']} "
        f"transitions={breaker['transitions']}",
        f"shedding: high p99 {shedding['high_p99_ms']:.1f}ms all "
        f"served={shedding['high_all_served']}, low shed with "
        f"Retry-After={shedding['low_all_shed']}",
        f"hostile serve traffic: {hostile['requests']} requests, "
        f"{hostile['contained']} contained, worker harm: "
        f"{hostile['worker_harm']}",
        f"report written to {path}",
    ]
    failed = sorted(
        name
        for name, passed in summary["gates"].items()
        if not passed
    )
    if failed:
        lines.append(f"FAILED gates: {', '.join(failed)}")
    else:
        lines.append("all gates passed")
    if not args.no_gate:
        # raises GuardError (exit 2) after the report is on disk
        check_guard_campaign(report)
    return "\n".join(lines)


def _cmd_chaos(args: argparse.Namespace) -> str:
    from .chaos import (
        check_campaign,
        run_chaos_campaign,
        write_chaos_report,
    )

    report = run_chaos_campaign(
        seed=args.seed,
        n_schedules=args.schedules,
        workers=args.workers,
        workdir=args.workdir,
    )
    path = write_chaos_report(report, args.output)
    summary = report["summary"]
    recoveries = ", ".join(
        f"{kind}={count}"
        for kind, count in summary["recoveries_by_fault_kind"].items()
    )
    lines = [
        f"chaos campaign: seed={report['config']['seed']} "
        f"schedules={summary['n_schedules']} "
        f"({summary['n_queue']} queue, {summary['n_serve']} serve) "
        f"in {summary['wall_s']:.1f}s",
        f"reference digest: {report['reference']['digest'][:16]} "
        f"({report['reference']['n_cells']} cells)",
        f"crashed: {summary['n_crashed']}, recovered clean: "
        f"{summary['n_recovered']}, invariant violations: "
        f"{summary['n_violations']}",
        f"recoveries by fault kind: {recoveries or 'none'}",
        f"report written to {path}",
    ]
    if not args.no_gate:
        # raises ChaosError (exit 2) when any schedule violated an
        # invariant — after the report is on disk for the post-mortem
        check_campaign(report)
        lines.append("gates passed")
    return "\n".join(lines)


def _cmd_doctor(args: argparse.Namespace) -> str:
    from pathlib import Path

    from .doctor import diagnose
    from .errors import DoctorError

    if not Path(args.path).exists():
        raise DoctorError(
            f"nothing to diagnose: {args.path} is neither a queue "
            "directory nor a checkpoint file"
        )
    report = diagnose(
        args.path,
        repair=args.repair,
        lease_timeout_s=args.lease_timeout,
        checkpoint=args.checkpoint,
    )
    lines = [
        f"doctor report for {report['target']} ({report['kind']}, "
        + ("repair" if report["repair"] else "audit")
        + " mode)",
        f"  findings: {report['n_findings']} "
        f"({report['n_repaired']} repaired)",
    ]
    if report["by_kind"]:
        lines.append(
            "  by kind: "
            + ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(report["by_kind"].items())
            )
        )
    for finding in report["findings"]:
        marker = " [repaired]" if finding["repaired"] else ""
        lines.append(
            f"  - {finding['kind']}: {finding['path']} — "
            f"{finding['detail']}{marker}"
        )
    unrepaired = report["n_findings"] - report["n_repaired"]
    if args.check and unrepaired:
        raise DoctorError(
            f"{unrepaired} unrepaired finding(s) in {args.path} "
            f"(kinds: {sorted(report['by_kind'])}); run "
            "`repro doctor --repair` to fix"
        )
    lines.append(
        "clean" if unrepaired == 0
        else f"NOT CLEAN: {unrepaired} unrepaired finding(s)"
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Copernicus sparse-format characterization",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "formats", help="list registered sparse formats"
    ).set_defaults(handler=_cmd_formats)
    commands.add_parser(
        "experiments", help="list the paper's tables and figures"
    ).set_defaults(handler=_cmd_experiments)
    commands.add_parser(
        "table1", help="print Table 1 (workload inventory)"
    ).set_defaults(handler=_cmd_table1)
    commands.add_parser(
        "table2", help="print Table 2 (resources & power, model vs paper)"
    ).set_defaults(handler=_cmd_table2)

    characterize = commands.add_parser(
        "characterize", help="characterize formats on one workload"
    )
    _add_workload_arguments(characterize)
    characterize.add_argument(
        "-f", "--format", action="append", default=None,
        choices=sorted(ALL_FORMATS), help="format(s) to run",
    )
    characterize.add_argument(
        "--all-formats", action="store_true",
        help="run all eight paper formats",
    )
    characterize.add_argument(
        "-p", "--partition", type=int, default=16,
        help="partition size (default 16)",
    )
    characterize.set_defaults(handler=_cmd_characterize)

    sweep = commands.add_parser(
        "sweep", help="sweep a metric over a workload group"
    )
    sweep.add_argument(
        "--group", choices=("suitesparse", "random", "band"),
        default="random",
    )
    sweep.add_argument(
        "--metric", default="sigma",
        choices=(
            "sigma", "balance_ratio", "bandwidth_utilization",
            "throughput_bytes_per_s", "total_cycles",
        ),
    )
    sweep.add_argument(
        "--partitions", type=int, nargs="+", default=[16],
        help="partition sizes (default: 16)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep engine (default: 1)",
    )
    sweep.add_argument(
        "--backend", choices=("auto", "inline", "pool", "queue"),
        default="auto",
        help="execution backend: auto picks pool when --workers > 1, "
        "inline otherwise; queue runs a shared-directory work queue "
        "that external `repro worker` processes can join "
        "(default: auto)",
    )
    sweep.add_argument(
        "--queue-dir", metavar="DIR", default=None,
        help="work-queue directory for --backend queue; point "
        "`repro worker --queue DIR` at it from other machines "
        "(default: a private temporary queue)",
    )
    sweep.add_argument(
        "--queue-workers", type=int, default=None, metavar="N",
        help="local worker processes the queue coordinator spawns "
        "(default: --workers; 0 relies entirely on external workers)",
    )
    sweep.add_argument(
        "--lease-timeout", type=float, default=10.0, metavar="SECONDS",
        help="heartbeat staleness after which a claimed queue task is "
        "reclaimed from a presumed-dead worker (default 10)",
    )
    sweep.add_argument(
        "--keep-queue", action="store_true",
        help="keep the --queue-dir contents after the sweep instead "
        "of cleaning up (debugging aid)",
    )
    sweep.add_argument(
        "--speculate", type=float, default=None, metavar="FACTOR",
        help="straggler mitigation for --backend queue: re-dispatch "
        "a duplicate of any task claimed longer than FACTOR x the "
        "p95 completed-task duration (dedup by digest makes "
        "duplicates safe; default: off)",
    )
    sweep.add_argument(
        "--profile", action="store_true",
        help="collect telemetry and print a run profile "
        "(cache counters, slowest cells)",
    )
    sweep.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="write a JSON-lines run manifest to PATH "
        "(read it back with `repro stats`)",
    )
    sweep.add_argument(
        "--error-policy", choices=("collect", "fail_fast"),
        default="collect",
        help="collect: isolate per-cell failures and keep sweeping "
        "(default); fail_fast: abort on the first failure",
    )
    sweep.add_argument(
        "--max-retries", type=int, default=2,
        help="dispatch retries per chunk after a worker crash "
        "(default 2)",
    )
    sweep.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per chunk; a chunk exceeding it is "
        "treated like a crashed chunk (default: no budget)",
    )
    sweep.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="append finished cells to a JSON-lines checkpoint at "
        "PATH as they complete",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="replay cells already recorded in --checkpoint and "
        "execute only the rest",
    )
    sweep.add_argument(
        # deterministic fault injection for testing the recovery
        # machinery; see repro.engine.faults for the spec grammar
        "--inject-faults", metavar="SPECS", default=None,
        help=argparse.SUPPRESS,
    )
    sweep.add_argument(
        # deterministic filesystem/process chaos (torn writes,
        # ENOSPC, crashes); see repro.engine.chaos for the grammar
        "--inject-chaos", metavar="SPECS", default=None,
        help=argparse.SUPPRESS,
    )
    sweep.add_argument(
        "--integrity-check", action="store_true",
        help="charge CRC/structural check cycles in the memory-read "
        "stage (IntegrityCheckModel)",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    integrity = commands.add_parser(
        "integrity",
        help="seeded corruption campaign: detection coverage per format",
    )
    _add_workload_arguments(integrity)
    integrity.add_argument(
        "-f", "--format", action="append", default=None,
        choices=sorted(ALL_FORMATS),
        help="format(s) to campaign (default: all registered)",
    )
    integrity.add_argument(
        "--partitions", type=int, nargs="+", default=[8],
        help="partition sizes to tile and frame (default: 8)",
    )
    integrity.add_argument(
        "--kinds", nargs="+", default=list(CORRUPTION_KINDS),
        choices=list(CORRUPTION_KINDS),
        help="corruption kinds to inject (default: all)",
    )
    integrity.add_argument(
        "--injections", type=int, default=60,
        help="injections per (format, kind) (default 60)",
    )
    integrity.add_argument(
        "--emit", metavar="PATH", default=None,
        help="also write the report as JSON to PATH",
    )
    integrity.set_defaults(handler=_cmd_integrity)

    worker = commands.add_parser(
        "worker",
        help="join a sweep work queue and execute chunks until STOP",
    )
    worker.add_argument(
        "--queue", metavar="DIR", required=True,
        help="queue directory created by `repro sweep --backend "
        "queue --queue-dir DIR` (any shared filesystem works)",
    )
    worker.add_argument(
        "--worker-id", metavar="ID", default=None,
        help="stable worker identity for shard affinity and lease "
        "ownership (default: host-pid derived)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.05, metavar="SECONDS",
        help="idle sleep between claim attempts (default 0.05)",
    )
    worker.add_argument(
        "--max-chunks", type=int, default=None, metavar="N",
        help="exit after executing N chunks (testing aid)",
    )
    worker.add_argument(
        "--oneshot", action="store_true",
        help="exit as soon as no task is claimable instead of "
        "waiting for the STOP sentinel",
    )
    worker.set_defaults(handler=_cmd_worker)

    checkpoint = commands.add_parser(
        "checkpoint",
        help="inspect or compact a sweep checkpoint file",
    )
    checkpoint.add_argument(
        "path", help="checkpoint file (JSON lines, "
        "`repro sweep --checkpoint PATH`)",
    )
    checkpoint.add_argument(
        "--digest", action="store_true",
        help="print only the content digest (order- and "
        "wall-time-independent; equal digests mean identical results)",
    )
    checkpoint.add_argument(
        "--compact", action="store_true",
        help="rewrite the checkpoint keeping only the latest record "
        "per cell digest",
    )
    checkpoint.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the compacted checkpoint to PATH instead of "
        "replacing in place (only with --compact)",
    )
    checkpoint.set_defaults(handler=_cmd_checkpoint)

    stats = commands.add_parser(
        "stats",
        help="summarize or diff sweep run manifests and checkpoints",
    )
    stats.add_argument("manifest", help="manifest file (JSON lines)")
    stats.add_argument(
        "--against", metavar="BASELINE", default=None,
        help="baseline manifest to diff against (regression check)",
    )
    stats.add_argument(
        "--slowest", type=int, default=5,
        help="slowest cells to list in the summary (default 5)",
    )
    stats.add_argument(
        "--threshold", type=float, default=0.01,
        help="minimum relative change to report with --against "
        "(default 1%%)",
    )
    stats.add_argument(
        "--limit", type=int, default=20,
        help="diff rows to print with --against (default 20)",
    )
    stats.set_defaults(handler=_cmd_stats)

    advise = commands.add_parser(
        "advise", help="rank formats for a workload (Figure-14 style)"
    )
    _add_workload_arguments(advise)
    advise.add_argument(
        "--fast", action="store_true",
        help="answer from the learned advisor (O(features)) instead "
        "of simulating every design point; requires --model",
    )
    advise.add_argument(
        "--model", metavar="PATH", default=None,
        help="advisor_model/v1 artifact for --fast "
        "(train one with `repro advisor train`)",
    )
    advise.add_argument(
        "--margin", type=float, default=0.05,
        help="confidence threshold for --fast: predictions whose "
        "best-vs-runner-up gap falls below it are re-checked by the "
        "exact model (default 0.05)",
    )
    advise.set_defaults(handler=_cmd_advise)

    advisor = commands.add_parser(
        "advisor",
        help="train / benchmark the learned fast-path advisor",
    )
    advisor_commands = advisor.add_subparsers(
        dest="advisor_command", required=True
    )
    advisor_train = advisor_commands.add_parser(
        "train",
        help="fit the advisor on the workload zoo (or sweep manifests)",
    )
    advisor_train.add_argument(
        "--from-manifest", action="append", metavar="PATH",
        default=None,
        help="train from JSON-lines run manifest(s) joined to the zoo "
        "by recipe digest (repeatable; default: sweep in-process)",
    )
    advisor_train.add_argument(
        "--out", metavar="PATH", default="advisor_model.json",
        help="artifact path (default advisor_model.json)",
    )
    advisor_train.add_argument(
        "--zoo-seed", type=int, default=0,
        help="workload-zoo seed (default 0)",
    )
    advisor_train.add_argument(
        "--holdout", type=float, default=0.25,
        help="held-out workload fraction, never trained on "
        "(default 0.25)",
    )
    advisor_train.add_argument(
        "--split-seed", type=int, default=0,
        help="train/held-out split seed (default 0)",
    )
    advisor_train.add_argument(
        "--workers", type=int, default=1,
        help="sweep worker processes (default 1; the artifact is "
        "byte-identical for any worker count)",
    )
    advisor_train.add_argument(
        "--formats", nargs="+", default=None,
        choices=sorted(ALL_FORMATS),
        help="formats to train heads for (default: the eight paper "
        "formats)",
    )
    advisor_train.add_argument(
        "--partitions", type=int, nargs="+",
        default=list(PARTITION_SIZES),
        help="partition sizes to train heads for (default: 8 16 32)",
    )
    advisor_train.add_argument(
        "--feature-p", type=int, default=16,
        help="partition size the feature extractor profiles at "
        "(default 16)",
    )
    advisor_train.add_argument(
        "--ridge-lambda", type=float, default=0.3,
        help="ridge regularization strength (default 0.3)",
    )
    advisor_train.add_argument(
        "--emit-manifest", metavar="PATH", default=None,
        help="also write the training sweep's run manifest to PATH "
        "(feed it back with --from-manifest to reproduce the model)",
    )
    advisor_train.set_defaults(handler=_cmd_advisor_train)
    advisor_bench = advisor_commands.add_parser(
        "bench",
        help="measure the accuracy contract (bench_advisor/v1)",
    )
    advisor_bench.add_argument(
        "--model", metavar="PATH", required=True,
        help="advisor_model/v1 artifact to benchmark",
    )
    advisor_bench.add_argument(
        "--output", metavar="PATH", default="BENCH_advisor.json",
        help="report path (default BENCH_advisor.json)",
    )
    advisor_bench.add_argument(
        "--repeats", type=int, default=3,
        help="latency timing repeats, best-of reported (default 3)",
    )
    advisor_bench.add_argument(
        "--latency-n", type=int, default=2048,
        help="matrix dimension of the exact-vs-fast latency contest "
        "(default 2048)",
    )
    advisor_bench.add_argument(
        "--require-spearman", type=float, default=None, metavar="X",
        help="exit non-zero if held-out mean Spearman < X (CI gate)",
    )
    advisor_bench.add_argument(
        "--require-top3", type=float, default=None, metavar="X",
        help="exit non-zero if held-out top-3 agreement < X (CI gate)",
    )
    advisor_bench.add_argument(
        "--require-speedup", type=float, default=None, metavar="X",
        help="exit non-zero if the minimum fast-path speedup < Xx "
        "(CI gate)",
    )
    advisor_bench.set_defaults(handler=_cmd_advisor_bench)

    serve = commands.add_parser(
        "serve",
        help="run the characterization query server (HTTP/JSON)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port", type=int, default=8787,
        help="bind port; 0 picks an ephemeral port (default 8787)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=4,
        help="concurrent backend computations (default 4)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=16,
        help="computations allowed to queue before new work is "
        "refused with 429 (default 16)",
    )
    serve.add_argument(
        "--budget-s", type=float, default=None, metavar="SECONDS",
        help="per-request time budget; over budget a request degrades "
        "to an approximate answer instead of hanging "
        "(default: no budget)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="LRU result-cache capacity in entries (default 256)",
    )
    serve.add_argument(
        "--max-dim", type=int, default=2048,
        help="largest workload dimension a query may ask for "
        "(default 2048)",
    )
    serve.add_argument(
        # deterministic fault injection into every backend sweep;
        # robustness testing only (see repro.engine.faults)
        "--inject-faults", metavar="SPECS", default=None,
        help=argparse.SUPPRESS,
    )
    serve.add_argument(
        "--fast-model", metavar="PATH", default=None,
        help="advisor_model/v1 artifact: answer confident /advise "
        "queries from the learned fast path without simulating",
    )
    serve.add_argument(
        "--fast-margin", type=float, default=0.05,
        help="margin below which a fast prediction is not trusted "
        "and the exact path answers (default 0.05)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="on SIGTERM/SIGINT, seconds in-flight requests get to "
        "finish before being answered 503 (default 5)",
    )
    serve.add_argument(
        "--metrics-snapshot", metavar="PATH", default=None,
        help="write a final metrics/v1 snapshot to PATH during "
        "graceful shutdown (atomic write)",
    )
    serve.add_argument(
        "--no-guard", action="store_true",
        help="disable the overload-protection layer (per-route "
        "circuit breakers, priority shedding, bulkhead lanes); "
        "untrusted 'mtx' workloads stay sandboxed regardless",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=5, metavar="N",
        help="consecutive backend failures before a route's breaker "
        "opens and answers 503 immediately (default 5)",
    )
    serve.add_argument(
        "--breaker-recovery", type=float, default=5.0,
        metavar="SECONDS",
        help="seconds an open breaker waits before letting probe "
        "requests through (default 5)",
    )
    serve.add_argument(
        "--breaker-probes", type=int, default=1, metavar="N",
        help="concurrent probes a half-open breaker admits "
        "(default 1)",
    )
    serve.add_argument(
        "--shed-p99-ms", type=float, default=None, metavar="MS",
        help="rolling-window p99 latency SLO; over it, low-priority "
        "requests are shed with 503 + Retry-After, at 2x also "
        "normal-priority (default: shedding by latency off)",
    )
    serve.add_argument(
        "--shed-queue-depth", type=int, default=None, metavar="N",
        help="queue depth beyond which low-priority requests are "
        "shed (default: shedding by depth off)",
    )
    serve.add_argument(
        "--shed-retry-after", type=float, default=1.0,
        metavar="SECONDS",
        help="Retry-After hint on shed responses (default 1)",
    )
    serve.add_argument(
        "--cheap-lane-width", type=int, default=2, metavar="N",
        help="threads in the cheap bulkhead lane serving advisor "
        "fast-path answers and sandbox gating (default 2)",
    )
    serve.add_argument(
        "--sandbox-wall-s", type=float, default=10.0,
        metavar="SECONDS",
        help="wall-clock cap per sandboxed untrusted-matrix job "
        "(default 10)",
    )
    serve.add_argument(
        "--sandbox-rss-mb", type=float, default=512.0, metavar="MB",
        help="address-space headroom of the sandbox worker beyond "
        "its baseline (default 512)",
    )
    serve.set_defaults(handler=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen",
        help="replay a seeded traffic mix against a serve instance",
    )
    loadgen.add_argument(
        "--host", default="127.0.0.1", help="server address"
    )
    loadgen.add_argument(
        "--port", type=int, default=None,
        help="server port (omit with --spawn)",
    )
    loadgen.add_argument(
        "--spawn", action="store_true",
        help="boot a private in-process server for this run instead "
        "of targeting a running one",
    )
    loadgen.add_argument(
        "--mix",
        choices=("hot", "unique", "mixed", "hostile"),
        default="mixed",
        help="traffic mix: hot = hot-key skew, unique = all-miss "
        "flood, mixed = both plus /advise traffic, hostile = half "
        "the stream is seeded malformed-matrix requests from the "
        "fuzz generators (default mixed)",
    )
    loadgen.add_argument(
        "--requests", type=int, default=200,
        help="requests to send (default 200)",
    )
    loadgen.add_argument(
        "--seed", type=int, default=7,
        help="traffic-plan seed; same (mix, requests, seed) replays "
        "identical traffic (default 7)",
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=8,
        help="client connections in flight (default 8)",
    )
    loadgen.add_argument(
        "--max-inflight", type=int, default=4,
        help="backend concurrency of the --spawn server (default 4)",
    )
    loadgen.add_argument(
        "--budget-s", type=float, default=None, metavar="SECONDS",
        help="request budget of the --spawn server (default: none)",
    )
    loadgen.add_argument(
        "--output", metavar="PATH", default="BENCH_serve.json",
        help="bench_serve/v1 report path (default BENCH_serve.json)",
    )
    loadgen.add_argument(
        "--retry-attempts", type=int, default=3, metavar="N",
        help="retry a 429 up to N times with jittered exponential "
        "backoff, honoring the server's Retry-After as the delay "
        "floor (0 disables; default 3)",
    )
    loadgen.add_argument(
        "--require-zero-5xx", action="store_true",
        help="exit non-zero if any response was a 5xx (CI gate)",
    )
    loadgen.add_argument(
        "--require-coalesce", action="store_true",
        help="exit non-zero if no request coalesced onto an "
        "in-flight computation (CI gate)",
    )
    loadgen.add_argument(
        "--require-containment", action="store_true",
        help="exit non-zero if any hostile request harmed a worker "
        "(connection drop or unhandled 5xx) instead of being "
        "contained as a typed refusal (CI gate for --mix hostile)",
    )
    loadgen.set_defaults(handler=_cmd_loadgen)

    fuzz = commands.add_parser(
        "fuzz",
        help="fuzz the .mtx parser and format codecs with seeded "
        "hostile inputs; gate on typed verdicts only",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; same (seed, cases) generates identical "
        "inputs (default 0)",
    )
    fuzz.add_argument(
        "--cases", type=int, default=None, metavar="N",
        help="inputs to generate (default 400 when no --budget-s)",
    )
    fuzz.add_argument(
        "--budget-s", type=float, default=None, metavar="SECONDS",
        help="wall-clock fuzzing budget; stops at whichever of "
        "--cases / --budget-s comes first",
    )
    fuzz.add_argument(
        "--replay", action="store_true",
        help="re-execute the regression corpus instead of "
        "generating fresh inputs (CI mode)",
    )
    fuzz.add_argument(
        "--corpus", metavar="DIR", default="tests/corpus",
        help="regression-corpus directory (default tests/corpus)",
    )
    fuzz.add_argument(
        "--save-crashes", action="store_true",
        help="delta-debug each new crash to a minimal reproducer "
        "and save it into the corpus",
    )
    fuzz.add_argument(
        "--sandbox-wall-s", type=float, default=5.0,
        metavar="SECONDS",
        help="wall-clock cap per sandboxed deep-execution job "
        "(default 5)",
    )
    fuzz.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the full fuzz report as JSON to PATH",
    )
    fuzz.add_argument(
        "--no-gate", action="store_true",
        help="report crashes without exiting non-zero "
        "(triage aid)",
    )
    fuzz.set_defaults(handler=_cmd_fuzz)

    guard = commands.add_parser(
        "guard",
        help="run the untrusted-input defense campaign and gate on "
        "containment (bench_guard/v1)",
    )
    guard.add_argument(
        "--seed", type=int, default=7,
        help="campaign seed (default 7)",
    )
    guard.add_argument(
        "--fuzz-cases", type=int, default=400, metavar="N",
        help="fresh fuzz inputs in the fuzzing phase (default 400)",
    )
    guard.add_argument(
        "--fuzz-budget-s", type=float, default=None,
        metavar="SECONDS",
        help="wall-clock cap on the fuzzing phase (default: none; "
        "stops at whichever of cases/budget comes first)",
    )
    guard.add_argument(
        "--hostile-requests", type=int, default=40, metavar="N",
        help="hostile-mix requests against the live guarded server "
        "(default 40)",
    )
    guard.add_argument(
        "--concurrency", type=int, default=4,
        help="client connections of the hostile phase (default 4)",
    )
    guard.add_argument(
        "--corpus", metavar="DIR", default=None,
        help="regression-corpus directory "
        "(default: the committed tests/corpus)",
    )
    guard.add_argument(
        "--output", metavar="PATH", default="BENCH_guard.json",
        help="report path (default BENCH_guard.json)",
    )
    guard.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (120 fuzz cases, 16 hostile requests)",
    )
    guard.add_argument(
        "--no-gate", action="store_true",
        help="report failed gates without exiting non-zero "
        "(debugging aid)",
    )
    guard.set_defaults(handler=_cmd_guard)

    bench = commands.add_parser(
        "bench",
        help="time the batch pipeline against the scalar reference",
    )
    bench.add_argument(
        "--n", type=int, default=8000,
        help="matrix dimension (default 8000, the paper scale)",
    )
    bench.add_argument(
        "-p", "--partition", type=int, default=8,
        help="partition size (default 8)",
    )
    bench.add_argument(
        "--density", type=float, default=0.01,
        help="density of the random workload (default 0.01)",
    )
    bench.add_argument(
        "--band-width", type=int, default=64,
        help="width of the band workload (default 64)",
    )
    bench.add_argument(
        "-f", "--format", action="append", default=None,
        choices=sorted(ALL_FORMATS),
        help="format(s) to bench (default: the eight paper formats)",
    )
    bench.add_argument(
        "--repeats", type=int, default=1,
        help="timing repeats, best-of reported (default 1)",
    )
    bench.add_argument(
        "--seed", type=int, default=0, help="generator seed (default 0)"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="1024 x 1024 smoke run (CI-sized)",
    )
    bench.add_argument(
        "--output", metavar="PATH", default="BENCH_pipeline.json",
        help="JSON report path (default BENCH_pipeline.json)",
    )
    bench.set_defaults(handler=_cmd_bench)

    bench_distributed = commands.add_parser(
        "bench-distributed",
        help="measure queue-backend scaling and out-of-core RSS "
        "(bench_distributed/v1)",
    )
    bench_distributed.add_argument(
        "--quick", action="store_true",
        help="shrunken CI smoke run (no scaling gate)",
    )
    bench_distributed.add_argument(
        "--check", action="store_true",
        help="exit non-zero if a full run misses the scaling or "
        "out-of-core gates",
    )
    bench_distributed.add_argument(
        "--output", metavar="PATH", default="BENCH_distributed.json",
        help="JSON report path (default BENCH_distributed.json)",
    )
    bench_distributed.set_defaults(handler=_cmd_bench_distributed)

    chaos = commands.add_parser(
        "chaos",
        help="run seeded crash/recovery schedules and gate on "
        "invariants (bench_chaos/v1)",
    )
    chaos.add_argument(
        "--seed", type=int, default=7,
        help="campaign seed; same (seed, schedules) injects the "
        "identical fault sequence (default 7)",
    )
    chaos.add_argument(
        "--schedules", type=int, default=20,
        help="crash/recovery schedules to run (default 20)",
    )
    chaos.add_argument(
        "--workers", type=int, default=2,
        help="queue worker processes per schedule (default 2)",
    )
    chaos.add_argument(
        "--output", metavar="PATH", default="BENCH_chaos.json",
        help="report path (default BENCH_chaos.json)",
    )
    chaos.add_argument(
        "--workdir", metavar="DIR", default=None,
        help="keep schedule artifacts (queues, checkpoints, "
        "snapshots) under DIR instead of a private temporary "
        "directory (post-mortem aid)",
    )
    chaos.add_argument(
        "--no-gate", action="store_true",
        help="report invariant violations without exiting non-zero "
        "(debugging aid)",
    )
    chaos.set_defaults(handler=_cmd_chaos)

    doctor = commands.add_parser(
        "doctor",
        help="audit (and repair) queue / checkpoint state after a "
        "crash",
    )
    doctor.add_argument(
        "path",
        help="a queue directory (`repro sweep --backend queue "
        "--keep-queue`) or a checkpoint file",
    )
    doctor.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="canonical sweep checkpoint the queue was feeding; "
        "completed cells stranded in worker shards are salvaged "
        "into it with --repair",
    )
    doctor.add_argument(
        "--repair", action="store_true",
        help="fix what the audit finds: truncate torn tails, drop "
        "corrupt records, requeue expired claims, remove stray "
        "temps and orphan blobs, salvage shard results",
    )
    doctor.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any finding is left unrepaired "
        "(CI gate; combine with --repair for repair-then-verify)",
    )
    doctor.add_argument(
        "--lease-timeout", type=float, default=10.0,
        metavar="SECONDS",
        help="lease age beyond which a claimed task counts as "
        "expired (default 10)",
    )
    doctor.set_defaults(handler=_cmd_doctor)

    report = commands.add_parser(
        "report", help="full characterization report for one workload"
    )
    _add_workload_arguments(report)
    report.set_defaults(handler=_cmd_report)

    compare = commands.add_parser(
        "compare", help="diff two saved result files (JSON)"
    )
    compare.add_argument("before", help="baseline results file")
    compare.add_argument("after", help="new results file")
    compare.add_argument(
        "--threshold", type=float, default=0.01,
        help="minimum relative change to report (default 1%%)",
    )
    compare.add_argument(
        "--limit", type=int, default=20,
        help="rows to print (default 20)",
    )
    compare.set_defaults(handler=_cmd_compare)

    pareto = commands.add_parser(
        "pareto", help="Pareto frontier over (format, p, lanes)"
    )
    _add_workload_arguments(pareto)
    pareto.add_argument(
        "--objectives", nargs="+",
        default=["total_cycles", "dynamic_power_w"],
        help="two or more objective metrics",
    )
    pareto.add_argument(
        "--lanes", type=int, nargs="+", default=[1, 2, 4],
        help="lane counts to explore (default 1 2 4)",
    )
    pareto.set_defaults(handler=_cmd_pareto)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "characterize" and not (
        args.all_formats or args.format
    ):
        parser.error("pass -f/--format (repeatable) or --all-formats")
    if args.command == "sweep" and args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    if args.command == "sweep" and args.backend != "queue":
        if args.queue_dir is not None:
            parser.error("--queue-dir requires --backend queue")
        if args.queue_workers is not None:
            parser.error("--queue-workers requires --backend queue")
        if args.keep_queue:
            parser.error("--keep-queue requires --backend queue")
        if args.speculate is not None:
            parser.error("--speculate requires --backend queue")
    if args.command == "checkpoint":
        if args.out is not None and not args.compact:
            parser.error("--out requires --compact")
        if args.digest and args.compact:
            parser.error("--digest and --compact are exclusive")
    if args.command == "advise":
        if args.fast and args.model is None:
            parser.error("--fast requires --model PATH")
        if args.model is not None and not args.fast:
            parser.error("--model requires --fast")
    try:
        print(args.handler(args))
    except SweepCellError as error:
        message = f"error: {error}\n"
        if error.traceback_text:
            message = f"{error.traceback_text}\n{message}"
        parser.exit(2, message)
    except CopernicusError as error:
        parser.exit(2, f"error: {error}\n")
    return 0
