"""Characterization core: simulator, sweeps, and summaries."""

from .dse import DesignPoint, explore, pareto_frontier
from .integrity import (
    CLASSIFICATIONS,
    CheckOverhead,
    FormatIntegritySummary,
    IntegrityReport,
    KindCoverage,
    classify_damaged_frame,
    run_integrity_campaign,
)
from .recommend import (
    OBJECTIVES,
    Constraints,
    Objective,
    Recommendation,
    recommend,
    recommend_from_results,
)
from .results import CharacterizationResult
from .simulator import SpmvSimulator, characterize
from .store import (
    load_records,
    records_by,
    result_to_record,
    save_results,
)
from .summary import SUMMARY_METRICS, FormatScore, summarize
from .sweep import (
    group_results,
    mean_metric,
    mean_sigma_by_format,
    sweep,
    sweep_formats,
    sweep_partition_sizes,
)

__all__ = [
    "DesignPoint",
    "explore",
    "pareto_frontier",
    "CLASSIFICATIONS",
    "CheckOverhead",
    "FormatIntegritySummary",
    "IntegrityReport",
    "KindCoverage",
    "classify_damaged_frame",
    "run_integrity_campaign",
    "OBJECTIVES",
    "Constraints",
    "Objective",
    "Recommendation",
    "recommend",
    "recommend_from_results",
    "CharacterizationResult",
    "SpmvSimulator",
    "characterize",
    "load_records",
    "records_by",
    "result_to_record",
    "save_results",
    "SUMMARY_METRICS",
    "FormatScore",
    "summarize",
    "group_results",
    "mean_metric",
    "mean_sigma_by_format",
    "sweep",
    "sweep_formats",
    "sweep_partition_sizes",
]
