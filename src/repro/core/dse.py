"""Design-space exploration: Pareto frontiers over format choices.

Section 4.2 frames resource utilization and power as "our other
metrics for the full design-space exploration"; a single recommended
point (:mod:`repro.core.recommend`) hides the trade-offs.  This module
enumerates the (format, partition size, lane count) space under device
constraints and extracts the Pareto-optimal set for any pair (or more)
of objectives — e.g. latency vs dynamic power, or throughput vs BRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import SimulationError
from ..hardware.config import DEFAULT_CONFIG, HardwareConfig
from ..hardware.multi import MultiLanePipeline
from ..matrix import SparseMatrix
from ..partition import PARTITION_SIZES
from .simulator import SpmvSimulator

__all__ = ["DesignPoint", "explore", "pareto_frontier"]

#: Objective name -> (extractor key, higher_is_better).
_OBJECTIVES: dict[str, bool] = {
    "total_cycles": False,
    "throughput_bytes_per_s": True,
    "bandwidth_utilization": True,
    "dynamic_power_w": False,
    "energy_j": False,
    "bram_18k": False,
    "ff": False,
    "lut": False,
}


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated accelerator configuration."""

    format_name: str
    partition_size: int
    n_lanes: int
    metrics: dict

    def metric(self, name: str) -> float:
        try:
            return float(self.metrics[name])
        except KeyError:
            raise SimulationError(
                f"design point has no metric {name!r}; available: "
                f"{sorted(self.metrics)}"
            ) from None

    def dominates(self, other: "DesignPoint",
                  objectives: Sequence[str]) -> bool:
        """Pareto dominance: at least as good everywhere, better
        somewhere."""
        at_least_as_good = True
        strictly_better = False
        for name in objectives:
            higher = _OBJECTIVES[name]
            mine, theirs = self.metric(name), other.metric(name)
            better = mine > theirs if higher else mine < theirs
            worse = mine < theirs if higher else mine > theirs
            if worse:
                at_least_as_good = False
                break
            if better:
                strictly_better = True
        return at_least_as_good and strictly_better

    def __repr__(self) -> str:
        return (
            f"DesignPoint({self.format_name!r}, p={self.partition_size}, "
            f"lanes={self.n_lanes})"
        )


def explore(
    matrix: SparseMatrix,
    formats: Sequence[str] = (
        "csr", "bcsr", "csc", "lil", "ell", "coo", "dia",
    ),
    partition_sizes: Sequence[int] = PARTITION_SIZES,
    lane_counts: Sequence[int] = (1,),
    base_config: HardwareConfig = DEFAULT_CONFIG,
    fit_device: bool = True,
    max_workers: int = 1,
) -> list[DesignPoint]:
    """Evaluate every (format, partition size, lanes) combination.

    Multi-lane points scale resources linearly and take their timing
    from the shared-bus lane model; ``fit_device`` drops designs that
    exceed the xq7z020.  The single-lane characterizations run through
    the sweep engine, so ``max_workers > 1`` fans the (format,
    partition size) grid out over worker processes.
    """
    # imported here: repro.engine depends on repro.core at import time
    from ..engine import SweepRunner
    from ..workloads.registry import Workload

    workload = Workload(name="dse", group="dse", matrix=matrix)
    # fail fast: the DSE indexes the full cube, a missing cell would
    # only surface later as an opaque KeyError
    cube = SweepRunner(
        max_workers=max_workers, error_policy="fail_fast"
    ).run_grid(
        [workload], formats, partition_sizes, base_config
    ).by_coords()

    points: list[DesignPoint] = []
    for p in partition_sizes:
        config = base_config.with_partition_size(p)
        simulator = SpmvSimulator(config)
        profiles: list | None = None
        for name in formats:
            single = cube[("dse", name, p)]
            for lanes in lane_counts:
                pipeline = MultiLanePipeline(config, name, lanes)
                resources = pipeline.resources()
                if fit_device and not resources.fits_device:
                    continue
                if lanes == 1:
                    total_cycles = single.total_cycles
                else:
                    if profiles is None:
                        profiles = simulator.profiles(matrix)
                    total_cycles = pipeline.run(profiles).total_cycles
                seconds = config.seconds(total_cycles)
                power_w = single.dynamic_power_w * lanes
                metrics = {
                    "total_cycles": total_cycles,
                    "total_seconds": seconds,
                    "throughput_bytes_per_s": (
                        single.total_bytes / seconds if seconds else 0.0
                    ),
                    "bandwidth_utilization": (
                        single.bandwidth_utilization
                    ),
                    "dynamic_power_w": power_w,
                    "energy_j": (
                        (power_w + single.static_power_w) * seconds
                    ),
                    "bram_18k": resources.bram_18k,
                    "ff": resources.ff,
                    "lut": resources.lut,
                }
                points.append(
                    DesignPoint(
                        format_name=name,
                        partition_size=p,
                        n_lanes=lanes,
                        metrics=metrics,
                    )
                )
    if not points:
        raise SimulationError(
            "no design fits the device; relax fit_device or shrink the "
            "search space"
        )
    return points


def pareto_frontier(
    points: Sequence[DesignPoint],
    objectives: Sequence[str] = ("total_cycles", "dynamic_power_w"),
) -> list[DesignPoint]:
    """The non-dominated subset of ``points`` for the objectives."""
    for name in objectives:
        if name not in _OBJECTIVES:
            raise SimulationError(
                f"unknown objective {name!r}; choose from "
                f"{', '.join(_OBJECTIVES)}"
            )
    if len(objectives) < 2:
        raise SimulationError("a frontier needs at least two objectives")
    frontier = [
        point
        for point in points
        if not any(
            other.dominates(point, objectives)
            for other in points
            if other is not point
        )
    ]
    key = objectives[0]
    return sorted(frontier, key=lambda p: p.metric(key))
