"""Detection-coverage characterization of the stream-integrity layer.

The framing layer (:mod:`repro.formats.integrity`) claims two things:
structural validation catches malformed encodings, and the per-plane
CRC catches payload damage that stays structurally plausible.  This
module *measures* those claims with a seeded corruption campaign:

1. the workload matrix is tiled exactly as the streaming pipeline
   would stream it (:func:`repro.partition.partition_matrix`), and
   every non-zero tile is encoded and framed per format;
2. for every (format, corruption kind) pair, ``injections`` damaged
   copies of those frames are produced by a
   :class:`~repro.formats.corrupt.StreamCorruptor` — bit flips at a
   target BER, truncated bursts, tampered header/plane words;
3. each damaged frame runs through the strict decode path and is
   classified into exactly one outcome:

   ``structural``
       :func:`~repro.formats.integrity.unframe` (CRC off) or strict
       :func:`~repro.formats.integrity.safe_decode` raised a
       :class:`~repro.errors.CopernicusError` — the damage broke the
       container or the encoding invariants.
   ``crc``
       The stream parsed and validated, but a frame checksum
       mismatched — the payload damage only the CRC could see.
   ``silent``
       Every check passed yet the decoded matrix differs from the
       pristine tile: undetected corruption, the number the
       experiment exists to expose.
   ``harmless``
       Every check passed and the decode is bit-identical (the
       injection hit padding or was masked by the encoding).

   Any exception that is *not* a :class:`~repro.errors.CopernicusError`
   counts as ``uncaught`` — a hardening bug, asserted zero by the
   test suite.

4. per partition size, the campaign also prices the detection: the
   streaming pipeline's cycle count with and without the
   :class:`~repro.hardware.IntegrityCheckModel` in the memory-read
   stage, plus the raw-vs-framed transfer byte overhead.

Everything derives from ``(seed, injection index)``, so a campaign is
a pure function of its arguments: same seed, same report, bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import CopernicusError
from ..formats.base import EncodedMatrix
from ..formats.corrupt import (
    CORRUPTION_KINDS,
    CorruptionSpec,
    StreamCorruptor,
)
from ..formats.integrity import frame, safe_decode, unframe
from ..formats.registry import ALL_FORMATS, get_format
from ..hardware.config import DEFAULT_CONFIG, HardwareConfig
from ..hardware.decompressors import MODELED_FORMATS, VARIANT_FORMATS
from ..hardware.pipeline import StreamingPipeline
from ..matrix import SparseMatrix
from ..partition import partition_matrix, profile_table

__all__ = [
    "CLASSIFICATIONS",
    "KindCoverage",
    "CheckOverhead",
    "FormatIntegritySummary",
    "IntegrityReport",
    "classify_damaged_frame",
    "run_integrity_campaign",
]

#: Mutually exclusive outcomes of one injection, in report order.
CLASSIFICATIONS = ("structural", "crc", "harmless", "silent", "uncaught")

#: Per-kind corruption rules the campaign injects.  Bit flips target
#: the payload (the span the CRC guards); truncation and tampering hit
#: the whole frame, so header damage is exercised too.
_CAMPAIGN_SPECS = {
    "bitflip": CorruptionSpec("bitflip", plane="payload", ber=1e-3),
    "truncate": CorruptionSpec("truncate", plane="*", fraction=0.25),
    "tamper": CorruptionSpec("tamper", plane="*"),
}


@dataclass(frozen=True)
class KindCoverage:
    """Classification counts for one (format, corruption kind)."""

    kind: str
    injections: int
    structural: int = 0
    crc: int = 0
    harmless: int = 0
    silent: int = 0
    uncaught: int = 0

    @property
    def detected(self) -> int:
        return self.structural + self.crc

    @property
    def detected_fraction(self) -> float:
        if self.injections == 0:
            return 0.0
        return self.detected / self.injections

    @property
    def silent_fraction(self) -> float:
        if self.injections == 0:
            return 0.0
        return self.silent / self.injections

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "injections": self.injections,
            "structural": self.structural,
            "crc": self.crc,
            "harmless": self.harmless,
            "silent": self.silent,
            "uncaught": self.uncaught,
            "detected_fraction": self.detected_fraction,
        }


@dataclass(frozen=True)
class CheckOverhead:
    """Pipeline cycle cost of in-line integrity checking at one ``p``."""

    partition_size: int
    base_cycles: int
    checked_cycles: int

    @property
    def overhead_cycles(self) -> int:
        return self.checked_cycles - self.base_cycles

    @property
    def overhead_fraction(self) -> float:
        if self.base_cycles == 0:
            return 0.0
        return self.overhead_cycles / self.base_cycles

    def to_dict(self) -> dict:
        return {
            "partition_size": self.partition_size,
            "base_cycles": self.base_cycles,
            "checked_cycles": self.checked_cycles,
            "overhead_fraction": self.overhead_fraction,
        }


@dataclass(frozen=True)
class FormatIntegritySummary:
    """One format's detection coverage and integrity cost."""

    format_name: str
    n_tiles: int
    coverage: tuple[KindCoverage, ...]
    raw_bytes: int
    framed_bytes: int
    check_overheads: tuple[CheckOverhead, ...] = ()

    @property
    def injections(self) -> int:
        return sum(kc.injections for kc in self.coverage)

    @property
    def uncaught(self) -> int:
        return sum(kc.uncaught for kc in self.coverage)

    @property
    def silent(self) -> int:
        return sum(kc.silent for kc in self.coverage)

    @property
    def detected_fraction(self) -> float:
        total = self.injections
        if total == 0:
            return 0.0
        return sum(kc.detected for kc in self.coverage) / total

    @property
    def framing_overhead_fraction(self) -> float:
        if self.raw_bytes == 0:
            return 0.0
        return (self.framed_bytes - self.raw_bytes) / self.raw_bytes

    def kind(self, name: str) -> KindCoverage:
        for kc in self.coverage:
            if kc.kind == name:
                return kc
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "format": self.format_name,
            "n_tiles": self.n_tiles,
            "raw_bytes": self.raw_bytes,
            "framed_bytes": self.framed_bytes,
            "framing_overhead_fraction": self.framing_overhead_fraction,
            "coverage": [kc.to_dict() for kc in self.coverage],
            "check_overheads": [
                co.to_dict() for co in self.check_overheads
            ],
        }


@dataclass(frozen=True)
class IntegrityReport:
    """The full campaign output: one summary per format."""

    shape: tuple[int, int]
    nnz: int
    seed: int
    injections_per_kind: int
    kinds: tuple[str, ...]
    partition_sizes: tuple[int, ...]
    summaries: tuple[FormatIntegritySummary, ...] = field(default=())

    @property
    def total_injections(self) -> int:
        return sum(s.injections for s in self.summaries)

    @property
    def total_uncaught(self) -> int:
        return sum(s.uncaught for s in self.summaries)

    def summary_for(self, format_name: str) -> FormatIntegritySummary:
        for summary in self.summaries:
            if summary.format_name == format_name:
                return summary
        raise KeyError(format_name)

    def to_dict(self) -> dict:
        return {
            "shape": list(self.shape),
            "nnz": self.nnz,
            "seed": self.seed,
            "injections_per_kind": self.injections_per_kind,
            "kinds": list(self.kinds),
            "partition_sizes": list(self.partition_sizes),
            "total_injections": self.total_injections,
            "total_uncaught": self.total_uncaught,
            "formats": [s.to_dict() for s in self.summaries],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


# ----------------------------------------------------------------------
# Classification of one damaged frame
# ----------------------------------------------------------------------
def classify_damaged_frame(damaged: bytes, truth: SparseMatrix) -> str:
    """Strict-mode fate of one damaged frame (one of CLASSIFICATIONS).

    The CRC surface is separated from the structural surface by
    parsing twice: once with checksums off (isolating container and
    encoding invariants) and once with them on.  A checksum mismatch
    on an otherwise valid stream is what the CRC — and only the
    CRC — bought.
    """
    # bit-flipped float payloads legitimately decode to inf/nan;
    # canonicalization sums them, which is not an FP error here
    with np.errstate(all="ignore"):
        return _classify(damaged, truth)


def _classify(damaged: bytes, truth: SparseMatrix) -> str:
    try:
        try:
            encoded, _ = unframe(damaged, mode="strict", verify_crc=False)
        except CopernicusError:
            return "structural"
        crc_hit = False
        try:
            unframe(damaged, mode="strict", verify_crc=True)
        except CopernicusError:
            crc_hit = True
        try:
            decoded, _ = safe_decode(encoded, mode="strict")
        except CopernicusError:
            return "crc" if crc_hit else "structural"
        if crc_hit:
            return "crc"
        return "harmless" if decoded == truth else "silent"
    except Exception:  # noqa: BLE001 — a non-taxonomy escape is the finding
        return "uncaught"


def _campaign_spec(kind: str) -> CorruptionSpec:
    if kind in _CAMPAIGN_SPECS:
        return _CAMPAIGN_SPECS[kind]
    return CorruptionSpec(kind)


def _format_tiles(
    matrix: SparseMatrix,
    format_name: str,
    partition_sizes: tuple[int, ...],
) -> tuple[list[SparseMatrix], list[EncodedMatrix], list[bytes]]:
    """Every non-zero tile of ``matrix``, encoded and framed."""
    codec = get_format(format_name)
    truths: list[SparseMatrix] = []
    encodings: list[EncodedMatrix] = []
    frames: list[bytes] = []
    for p in partition_sizes:
        for partition in partition_matrix(matrix, p):
            encoded = codec.encode(partition.block)
            truths.append(codec.decode(encoded))
            encodings.append(encoded)
            frames.append(frame(encoded))
    return truths, encodings, frames


def _check_overheads(
    matrix: SparseMatrix,
    format_name: str,
    partition_sizes: tuple[int, ...],
    config: HardwareConfig,
) -> tuple[CheckOverhead, ...]:
    """Checked-vs-unchecked pipeline cycles per partition size."""
    if (
        format_name not in MODELED_FORMATS
        and format_name not in VARIANT_FORMATS
    ):
        return ()
    overheads = []
    for p in partition_sizes:
        base_config = replace(
            config.with_partition_size(p), integrity_check=False
        )
        checked_config = replace(base_config, integrity_check=True)
        table = profile_table(
            matrix, p, block_size=base_config.block_size
        )
        base = StreamingPipeline(base_config, format_name).run(table)
        checked = StreamingPipeline(checked_config, format_name).run(table)
        overheads.append(
            CheckOverhead(
                partition_size=p,
                base_cycles=base.total_cycles,
                checked_cycles=checked.total_cycles,
            )
        )
    return tuple(overheads)


def run_integrity_campaign(
    matrix: SparseMatrix,
    format_names: tuple[str, ...] = ALL_FORMATS,
    partition_sizes: tuple[int, ...] = (8,),
    kinds: tuple[str, ...] = CORRUPTION_KINDS,
    injections: int = 60,
    seed: int = 0,
    config: HardwareConfig = DEFAULT_CONFIG,
) -> IntegrityReport:
    """Measure detection coverage of the framed decode path.

    ``injections`` is per (format, kind); the report therefore holds
    ``len(kinds) * injections`` classified injections per format.
    Injection ``i`` of a kind targets tile ``i mod n_tiles``, cycling
    through every framed tile of every requested partition size.
    """
    corruptor = StreamCorruptor(seed=seed)
    summaries = []
    for format_name in format_names:
        truths, encodings, frames = _format_tiles(
            matrix, format_name, partition_sizes
        )
        raw_bytes = sum(
            sum(array.nbytes for array in encoded.arrays.values())
            for encoded in encodings
        )
        framed_bytes = sum(len(data) for data in frames)
        coverage = []
        for kind in kinds:
            spec = _campaign_spec(kind)
            counts = dict.fromkeys(CLASSIFICATIONS, 0)
            n_injections = injections if frames else 0
            for index in range(n_injections):
                tile = index % len(frames)
                damaged = corruptor.corrupt_frame(
                    frames[tile], spec, key=(format_name, kind, index)
                )
                counts[classify_damaged_frame(damaged, truths[tile])] += 1
            coverage.append(
                KindCoverage(kind=kind, injections=n_injections, **counts)
            )
        summaries.append(
            FormatIntegritySummary(
                format_name=format_name,
                n_tiles=len(frames),
                coverage=tuple(coverage),
                raw_bytes=raw_bytes,
                framed_bytes=framed_bytes,
                check_overheads=_check_overheads(
                    matrix, format_name, partition_sizes, config
                ),
            )
        )
    return IntegrityReport(
        shape=matrix.shape,
        nnz=matrix.nnz,
        seed=seed,
        injections_per_kind=injections,
        kinds=tuple(kinds),
        partition_sizes=tuple(partition_sizes),
        summaries=tuple(summaries),
    )
