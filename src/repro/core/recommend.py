"""Format recommendation under constraints.

The paper's stated purpose is to give architects "hints to ... mindfully
choose appropriate sparse formats" and to show "which parameters must be
tuned ... to optimize for a particular metric" (Section 1).  This module
turns the characterization results into that decision procedure: pick
the best (format, partition size) pair for a chosen objective, subject
to the resource and power budgets of a target device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import SimulationError
from ..hardware.config import DEFAULT_CONFIG, HardwareConfig
from ..matrix import SparseMatrix
from ..partition import PARTITION_SIZES
from .results import CharacterizationResult
from .simulator import SpmvSimulator

__all__ = [
    "OBJECTIVES",
    "Objective",
    "Constraints",
    "Recommendation",
    "PredictedCandidate",
    "PredictedRecommendation",
    "recommend",
    "recommend_from_results",
    "rank_predictions",
]

#: Result attribute and direction per objective name.
_OBJECTIVES: dict[str, tuple[str, bool]] = {
    "latency": ("total_cycles", False),
    "throughput": ("throughput_bytes_per_s", True),
    "bandwidth": ("bandwidth_utilization", True),
    "overhead": ("sigma", False),
    "energy": ("energy_j", False),
    "power": ("dynamic_power_w", False),
}

#: The recognized objective names, in declaration order.
OBJECTIVES: tuple[str, ...] = tuple(_OBJECTIVES)


@dataclass(frozen=True)
class Objective:
    """What to optimize: one of latency / throughput / bandwidth /
    overhead / energy / power."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in _OBJECTIVES:
            raise SimulationError(
                f"unknown objective {self.name!r}; choose from "
                f"{', '.join(_OBJECTIVES)}"
            )

    def value(self, result: CharacterizationResult) -> float:
        attribute, _ = _OBJECTIVES[self.name]
        return float(getattr(result, attribute))

    def better(self, a: float, b: float) -> bool:
        """Is ``a`` strictly better than ``b``?"""
        _, higher = _OBJECTIVES[self.name]
        return a > b if higher else a < b


@dataclass(frozen=True)
class Constraints:
    """Device budgets a candidate design must respect.

    Defaults are the xq7z020 the paper targets (Table 2 totals); pass
    smaller numbers to model a tighter device or a shared fabric.
    """

    max_bram_18k: int = 140
    max_ff: int = 106_400
    max_lut: int = 53_200
    max_dynamic_power_w: float = float("inf")

    def admits(self, result: CharacterizationResult) -> bool:
        return self.admits_static(
            result.resources, result.dynamic_power_w
        )

    def admits_static(self, resources, dynamic_power_w: float) -> bool:
        """Constraint check from resources/power alone.

        Resources and power are workload-independent, so the learned
        fast path can apply the *exact* constraint filter to predicted
        candidates without running a single simulation.  ``resources``
        may be ``None`` to skip the fabric budgets.
        """
        if resources is not None and not (
            resources.bram_18k <= self.max_bram_18k
            and resources.ff <= self.max_ff
            and resources.lut <= self.max_lut
        ):
            return False
        return dynamic_power_w <= self.max_dynamic_power_w


@dataclass(frozen=True)
class Recommendation:
    """The chosen design point plus every evaluated alternative."""

    best: CharacterizationResult
    objective: Objective
    candidates: tuple[CharacterizationResult, ...]
    rejected: tuple[CharacterizationResult, ...]

    @property
    def format_name(self) -> str:
        return self.best.format_name

    @property
    def partition_size(self) -> int:
        return self.best.partition_size

    def ranking(self) -> list[CharacterizationResult]:
        """Feasible candidates, best first."""
        return sorted(
            self.candidates,
            key=self.objective.value,
            reverse=_OBJECTIVES[self.objective.name][1],
        )


@dataclass(frozen=True)
class PredictedCandidate:
    """One design point scored by a predictor instead of simulation.

    ``value`` is the predicted objective value (cycles for the latency
    objective); ``resources`` / ``dynamic_power_w`` carry the *exact*
    workload-independent estimates so constraint filtering stays
    exact even on the fast path.
    """

    format_name: str
    partition_size: int
    value: float
    resources: object = None
    dynamic_power_w: float = 0.0


@dataclass(frozen=True)
class PredictedRecommendation:
    """A predicted ranking plus the margin the verifier gates on."""

    objective: Objective
    ranking: tuple[PredictedCandidate, ...]
    rejected: tuple[PredictedCandidate, ...]

    @property
    def best(self) -> PredictedCandidate:
        return self.ranking[0]

    @property
    def format_name(self) -> str:
        return self.best.format_name

    @property
    def partition_size(self) -> int:
        return self.best.partition_size

    @property
    def margin(self) -> float:
        """Relative gap between the predicted best and the runner-up.

        The fast path's confidence signal: a small margin means the
        top two design points are predicted too close to call, and the
        caller should fall back to the exact model.  Infinite when
        there is no runner-up.
        """
        if len(self.ranking) < 2:
            return float("inf")
        first = self.ranking[0].value
        second = self.ranking[1].value
        return abs(second - first) / max(abs(first), 1e-12)


def rank_predictions(
    candidates: Sequence[PredictedCandidate],
    objective: str = "latency",
    constraints: Constraints | None = None,
) -> PredictedRecommendation:
    """Rank predicted design points under the exact constraint filter.

    The prediction-side counterpart of :func:`recommend_from_results`:
    same objective directions, same constraint semantics, same
    no-feasible-candidate failure.
    """
    goal = Objective(objective)
    budget = constraints or Constraints()
    feasible: list[PredictedCandidate] = []
    rejected: list[PredictedCandidate] = []
    for candidate in candidates:
        if budget.admits_static(
            candidate.resources, candidate.dynamic_power_w
        ):
            feasible.append(candidate)
        else:
            rejected.append(candidate)
    if not feasible:
        raise SimulationError(
            "no (format, partition) combination satisfies the "
            "constraints; relax the budgets or widen the search"
        )
    ranking = sorted(
        feasible,
        key=lambda c: c.value,
        reverse=_OBJECTIVES[goal.name][1],
    )
    return PredictedRecommendation(
        objective=goal,
        ranking=tuple(ranking),
        rejected=tuple(rejected),
    )


def recommend(
    matrix: SparseMatrix,
    objective: str = "latency",
    formats: Sequence[str] = (
        "csr", "bcsr", "csc", "lil", "ell", "coo", "dia",
    ),
    partition_sizes: Sequence[int] = PARTITION_SIZES,
    constraints: Constraints | None = None,
    base_config: HardwareConfig = DEFAULT_CONFIG,
) -> Recommendation:
    """Pick the best (format, partition size) for ``matrix``.

    Every combination is characterized on the hardware model; designs
    violating ``constraints`` are excluded, and the survivor optimizing
    ``objective`` wins.
    """
    results: list[CharacterizationResult] = []
    for p in partition_sizes:
        simulator = SpmvSimulator(base_config.with_partition_size(p))
        profiles = simulator.profiles(matrix)
        for name in formats:
            results.append(
                simulator.run_format(name, profiles, workload="")
            )
    return recommend_from_results(results, objective, constraints)


def recommend_from_results(
    results: Sequence[CharacterizationResult],
    objective: str = "latency",
    constraints: Constraints | None = None,
) -> Recommendation:
    """Rank already-characterized design points.

    The constraint/objective half of :func:`recommend`, split out so
    callers that computed the characterization elsewhere — the sweep
    engine, the characterization server's cached results — can reuse
    the decision procedure without re-simulating.
    """
    goal = Objective(objective)
    budget = constraints or Constraints()
    feasible: list[CharacterizationResult] = []
    rejected: list[CharacterizationResult] = []
    for result in results:
        if budget.admits(result):
            feasible.append(result)
        else:
            rejected.append(result)
    if not feasible:
        raise SimulationError(
            "no (format, partition) combination satisfies the "
            "constraints; relax the budgets or widen the search"
        )
    best = feasible[0]
    for candidate in feasible[1:]:
        if goal.better(goal.value(candidate), goal.value(best)):
            best = candidate
    return Recommendation(
        best=best,
        objective=goal,
        candidates=tuple(feasible),
        rejected=tuple(rejected),
    )
