"""Result records produced by the characterization simulator."""

from __future__ import annotations

from dataclasses import dataclass

from ..formats.base import SizeBreakdown
from ..formats.integrity import frame_overhead_bytes
from ..hardware.pipeline import PipelineResult
from ..hardware.power import PowerBreakdown
from ..hardware.resources import ResourceEstimate

__all__ = ["CharacterizationResult"]


@dataclass(frozen=True)
class CharacterizationResult:
    """Every Copernicus metric for one (matrix, format, partition size).

    Attributes
    ----------
    workload / format_name / partition_size:
        The experiment coordinates.
    sigma:
        Decompression latency overhead (Equation 1): this format's
        compute latency over the dense baseline's on the same non-zero
        partitions.  Exactly 1.0 for the dense format.
    pipeline:
        Full per-partition timing detail.
    size:
        Total transferred bytes (values, padding, metadata).
    clock_mhz:
        Clock used to convert cycles to seconds.
    resources / power:
        The static design-space metrics for this format at this
        partition size (workload-independent).
    """

    workload: str
    format_name: str
    partition_size: int
    sigma: float
    pipeline: PipelineResult
    size: SizeBreakdown
    clock_mhz: float
    resources: ResourceEstimate
    power: PowerBreakdown

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        """Pipelined end-to-end cycles for the whole matrix."""
        return self.pipeline.total_cycles

    @property
    def total_seconds(self) -> float:
        return self.total_cycles / (self.clock_mhz * 1e6)

    @property
    def memory_cycles(self) -> int:
        return self.pipeline.memory_cycles

    @property
    def compute_cycles(self) -> int:
        return self.pipeline.compute_cycles

    @property
    def decompress_cycles(self) -> int:
        return self.pipeline.decompress_cycles

    @property
    def balance_ratio(self) -> float:
        """Mean memory/compute latency ratio (1 = perfectly balanced)."""
        return self.pipeline.mean_balance_ratio

    # ------------------------------------------------------------------
    # Throughput & bandwidth
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.size.total_bytes

    @property
    def throughput_bytes_per_s(self) -> float:
        """Bytes processed per second (Section 4.2)."""
        seconds = self.total_seconds
        if seconds == 0.0:
            return 0.0
        return self.total_bytes / seconds

    @property
    def bandwidth_utilization(self) -> float:
        """Useful bytes over all transmitted bytes."""
        return self.size.bandwidth_utilization

    @property
    def framing_overhead_bytes(self) -> int:
        """Container-header bytes if every tile ships as a checksummed
        frame (:func:`repro.formats.integrity.frame`): one fixed-size
        header per streamed partition."""
        return self.pipeline.n_partitions * frame_overhead_bytes(
            self.format_name
        )

    @property
    def framed_total_bytes(self) -> int:
        """Total transferred bytes under checksummed tile framing."""
        return self.total_bytes + self.framing_overhead_bytes

    # ------------------------------------------------------------------
    # Power / energy
    # ------------------------------------------------------------------
    @property
    def dynamic_power_w(self) -> float:
        return self.power.dynamic_w

    @property
    def static_power_w(self) -> float:
        return self.power.static_w

    @property
    def energy_j(self) -> float:
        """Total (dynamic + static) energy of the run."""
        return self.power.energy_j(self.total_seconds)

    def __repr__(self) -> str:
        return (
            f"CharacterizationResult({self.workload!r}, "
            f"{self.format_name!r}, p={self.partition_size}, "
            f"sigma={self.sigma:.3g})"
        )
