"""The characterization simulator.

Ties the substrates together: a matrix is profiled into non-zero
partitions once, then streamed through each format's hardware model to
produce a :class:`~repro.core.results.CharacterizationResult` holding
every metric the paper reports.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import SimulationError
from ..hardware.config import DEFAULT_CONFIG, HardwareConfig
from ..hardware.pipeline import StreamingPipeline
from ..hardware.power import estimate_power
from ..hardware.resources import estimate_resources
from ..matrix import SparseMatrix
from ..partition import (
    PartitionProfile,
    ProfileTable,
    profile_partitions,
    profile_table,
)
from .results import CharacterizationResult

__all__ = ["SpmvSimulator", "characterize"]


class SpmvSimulator:
    """Characterizes sparse formats on the modelled accelerator.

    Parameters
    ----------
    config:
        Hardware configuration; ``partition_size`` is the tiling and
        engine width.  Defaults to the paper's platform at 16 x 16.
    """

    def __init__(self, config: HardwareConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def profiles(self, matrix: SparseMatrix) -> list[PartitionProfile]:
        """Profile the matrix's non-zero partitions (reusable)."""
        return profile_partitions(
            matrix,
            self.config.partition_size,
            block_size=self.config.block_size,
        )

    def profile_table(self, matrix: SparseMatrix) -> ProfileTable:
        """Columnar profile of the non-zero partitions (the fast path)."""
        return profile_table(
            matrix,
            self.config.partition_size,
            block_size=self.config.block_size,
        )

    def dense_compute_cycles(self, n_partitions: int) -> int:
        """Equation 1's denominator summed over the partitions."""
        p = self.config.partition_size
        return n_partitions * p * self.config.dot_product_cycles()

    def run_format(
        self,
        format_name: str,
        profiles: ProfileTable | Sequence[PartitionProfile],
        workload: str = "",
    ) -> CharacterizationResult:
        """Characterize one format over pre-computed profiles.

        Accepts a :class:`ProfileTable` (preferred — the pipeline stays
        on the vectorized batch path) or a profile sequence.
        """
        if not len(profiles):
            raise SimulationError(
                "cannot characterize an all-zero matrix: no non-zero "
                "partitions to stream"
            )
        pipeline = StreamingPipeline(self.config, format_name)
        result = pipeline.run(profiles)
        dense_cycles = self.dense_compute_cycles(len(profiles))
        sigma = result.compute_cycles / dense_cycles
        resources = estimate_resources(format_name, self.config)
        return CharacterizationResult(
            workload=workload,
            format_name=format_name,
            partition_size=self.config.partition_size,
            sigma=sigma,
            pipeline=result,
            size=result.transferred,
            clock_mhz=self.config.clock_mhz,
            resources=resources,
            power=estimate_power(format_name, self.config, resources),
        )

    def characterize(
        self,
        matrix: SparseMatrix,
        format_name: str,
        workload: str = "",
    ) -> CharacterizationResult:
        """Characterize one format on one matrix."""
        return self.run_format(
            format_name, self.profile_table(matrix), workload
        )

    def characterize_formats(
        self,
        matrix: SparseMatrix,
        format_names: Sequence[str],
        workload: str = "",
    ) -> dict[str, CharacterizationResult]:
        """Characterize several formats, profiling the matrix once."""
        table = self.profile_table(matrix)
        return {
            name: self.run_format(name, table, workload)
            for name in format_names
        }


def characterize(
    matrix: SparseMatrix,
    format_name: str,
    partition_size: int = 16,
    workload: str = "",
) -> CharacterizationResult:
    """One-shot convenience wrapper around :class:`SpmvSimulator`."""
    config = DEFAULT_CONFIG.with_partition_size(partition_size)
    return SpmvSimulator(config).characterize(matrix, format_name, workload)
