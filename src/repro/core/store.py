"""Serialization of characterization results.

Sweeps over the full experiment cube take minutes; persisting the
results lets reporting, plotting and regression tracking run without
re-simulating.  Records are stored as plain JSON — one flat dict per
(workload, format, partition size) with every derived metric — so any
external tool can consume them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from ..errors import SimulationError
from .results import CharacterizationResult

__all__ = [
    "result_to_record",
    "save_results",
    "load_records",
    "records_by",
]

#: Schema version written into every file.
SCHEMA_VERSION = 1

_METRIC_FIELDS = (
    "sigma",
    "total_cycles",
    "total_seconds",
    "memory_cycles",
    "compute_cycles",
    "decompress_cycles",
    "balance_ratio",
    "total_bytes",
    "throughput_bytes_per_s",
    "bandwidth_utilization",
    "dynamic_power_w",
    "static_power_w",
    "energy_j",
)


def result_to_record(result: CharacterizationResult) -> dict:
    """Flatten one result into a JSON-serializable dict."""
    record = {
        "workload": result.workload,
        "format": result.format_name,
        "partition_size": result.partition_size,
        "clock_mhz": result.clock_mhz,
        "n_partitions": result.pipeline.n_partitions,
        "bram_18k": result.resources.bram_18k,
        "ff": result.resources.ff,
        "lut": result.resources.lut,
    }
    for field in _METRIC_FIELDS:
        record[field] = float(getattr(result, field))
    return record


def save_results(
    results: Sequence[CharacterizationResult],
    path: str | Path,
    metadata: dict | None = None,
) -> None:
    """Write a result list to a JSON file."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "metadata": metadata or {},
        "records": [result_to_record(r) for r in results],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )


def load_records(path: str | Path) -> list[dict]:
    """Read the flat records back from a JSON file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SimulationError(
            f"unsupported results schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    records = payload.get("records")
    if not isinstance(records, list):
        raise SimulationError("results file has no record list")
    return records


def records_by(
    records: Sequence[dict],
    workload: str | None = None,
    format_name: str | None = None,
    partition_size: int | None = None,
) -> list[dict]:
    """Filter loaded records by any combination of coordinates."""
    selected = list(records)
    if workload is not None:
        selected = [r for r in selected if r.get("workload") == workload]
    if format_name is not None:
        selected = [r for r in selected if r.get("format") == format_name]
    if partition_size is not None:
        selected = [
            r for r in selected
            if r.get("partition_size") == partition_size
        ]
    return selected
