"""The normalized cross-metric summary (Figure 14).

For each workload group the paper condenses six metrics per format into
a radar-style score: "normalizing each metric to its maximum achieved
number so that 1 represents the best case and 0 represents the worst
case".  Lower-is-better metrics (overhead, latency, power) are inverted
after normalization; the balance ratio is scored by distance from the
ideal ratio of one in log space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import SimulationError
from .results import CharacterizationResult
from .sweep import group_results, mean_metric

__all__ = ["SUMMARY_METRICS", "FormatScore", "summarize"]

#: Metric name -> (result attribute, higher_is_better).
SUMMARY_METRICS: dict[str, tuple[str, bool]] = {
    "overhead": ("sigma", False),
    "latency": ("total_cycles", False),
    "balance": ("balance_ratio", None),  # scored by closeness to 1
    "throughput": ("throughput_bytes_per_s", True),
    "bandwidth_utilization": ("bandwidth_utilization", True),
    "power": ("dynamic_power_w", False),
}


@dataclass(frozen=True)
class FormatScore:
    """Normalized [0, 1] scores of one format (1 = best, 0 = worst)."""

    format_name: str
    scores: Mapping[str, float]

    @property
    def overall(self) -> float:
        """Unweighted mean across the six metrics."""
        return sum(self.scores.values()) / len(self.scores)


def _raw_value(
    results: Sequence[CharacterizationResult], metric: str
) -> float:
    attribute, higher = SUMMARY_METRICS[metric]
    value = mean_metric(results, attribute)
    if higher is None:  # balance: penalize distance from 1 in log space
        if value <= 0.0:
            return -math.inf
        return -abs(math.log(value))
    return value if higher else -value


def summarize(
    results: Sequence[CharacterizationResult],
    format_names: Sequence[str],
) -> list[FormatScore]:
    """Score each format across all six metrics, normalized per metric."""
    if not results:
        raise SimulationError("no results to summarize")
    raw: dict[str, dict[str, float]] = {}
    for name in format_names:
        subset = group_results(results, format_name=name)
        if not subset:
            raise SimulationError(f"no results for format {name!r}")
        raw[name] = {
            metric: _raw_value(subset, metric) for metric in SUMMARY_METRICS
        }
    scores: dict[str, dict[str, float]] = {name: {} for name in format_names}
    for metric in SUMMARY_METRICS:
        values = [raw[name][metric] for name in format_names]
        finite = [v for v in values if math.isfinite(v)]
        low = min(finite) if finite else 0.0
        high = max(finite) if finite else 1.0
        span = high - low
        for name in format_names:
            value = raw[name][metric]
            if not math.isfinite(value):
                scores[name][metric] = 0.0
            elif span == 0.0:
                scores[name][metric] = 1.0
            else:
                scores[name][metric] = (value - low) / span
    return [
        FormatScore(format_name=name, scores=scores[name])
        for name in format_names
    ]
