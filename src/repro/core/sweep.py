"""Hyperparameter sweeps over formats, partition sizes and workloads.

Every figure in the paper is a slice of the same experiment cube
(workload x format x partition size); this module materializes the
cube — or any sub-slice — as a flat list of result records that the
benchmarks and reporting code aggregate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..formats.registry import PAPER_FORMATS
from ..hardware.config import DEFAULT_CONFIG, HardwareConfig
from ..partition import PARTITION_SIZES
from ..workloads.registry import Workload
from .results import CharacterizationResult
from .simulator import SpmvSimulator

__all__ = [
    "sweep_formats",
    "sweep_partition_sizes",
    "sweep",
    "mean_sigma_by_format",
    "mean_metric",
    "group_results",
]


def sweep_formats(
    workload: Workload,
    format_names: Sequence[str] = PAPER_FORMATS,
    config: HardwareConfig = DEFAULT_CONFIG,
) -> list[CharacterizationResult]:
    """All formats on one workload at one partition size."""
    simulator = SpmvSimulator(config)
    results = simulator.characterize_formats(
        workload.matrix, format_names, workload=workload.name
    )
    return [results[name] for name in format_names]


def sweep_partition_sizes(
    workload: Workload,
    format_names: Sequence[str] = PAPER_FORMATS,
    partition_sizes: Sequence[int] = PARTITION_SIZES,
    base_config: HardwareConfig = DEFAULT_CONFIG,
) -> list[CharacterizationResult]:
    """All formats x partition sizes on one workload."""
    results: list[CharacterizationResult] = []
    for p in partition_sizes:
        config = base_config.with_partition_size(p)
        results.extend(sweep_formats(workload, format_names, config))
    return results


def sweep(
    workloads: Sequence[Workload],
    format_names: Sequence[str] = PAPER_FORMATS,
    partition_sizes: Sequence[int] = PARTITION_SIZES,
    base_config: HardwareConfig = DEFAULT_CONFIG,
) -> list[CharacterizationResult]:
    """The full experiment cube over the given workloads."""
    results: list[CharacterizationResult] = []
    for workload in workloads:
        results.extend(
            sweep_partition_sizes(
                workload, format_names, partition_sizes, base_config
            )
        )
    return results


def group_results(
    results: Sequence[CharacterizationResult],
    format_name: str | None = None,
    partition_size: int | None = None,
    workload: str | None = None,
) -> list[CharacterizationResult]:
    """Filter a result list by any combination of coordinates."""
    selected = list(results)
    if format_name is not None:
        selected = [r for r in selected if r.format_name == format_name]
    if partition_size is not None:
        selected = [r for r in selected if r.partition_size == partition_size]
    if workload is not None:
        selected = [r for r in selected if r.workload == workload]
    return selected


def mean_metric(
    results: Sequence[CharacterizationResult], metric: str
) -> float:
    """Average a named result attribute over a result list."""
    if not results:
        return float("nan")
    return float(np.mean([getattr(r, metric) for r in results]))


def mean_sigma_by_format(
    results: Sequence[CharacterizationResult],
    format_names: Sequence[str] = PAPER_FORMATS,
    partition_size: int | None = None,
) -> dict[str, float]:
    """Average sigma per format (the Figure 7 aggregation)."""
    return {
        name: mean_metric(
            group_results(results, format_name=name,
                          partition_size=partition_size),
            "sigma",
        )
        for name in format_names
    }
