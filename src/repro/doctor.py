"""Audit and repair of queue and checkpoint state (``repro doctor``).

A crash — real or chaos-injected — can leave a work-queue directory
or a checkpoint in any state the durability layer permits: torn
trailing JSONL lines, stray atomic-write temp files, tasks still
claimed by dead workers, half-written done markers, blobs nobody
references.  The doctor walks that state, classifies every problem
into a *finding*, and (with ``repair=True``) applies the standard
remedy for each:

=================  ====================================================
``torn-tail``       unterminated final JSONL line → truncate it away
``stray-temp``      leftover ``*.tmp*`` from an interrupted atomic
                    write → delete (the destination is intact by
                    construction)
``bad-record``      checkpoint/shard line that parses but cannot be
                    decoded or trusted → rewrite the file without it
``expired-claim``   claimed task whose owner's lease is stale or gone
                    → release it back to ``tasks/``
``orphan-owner``    ``.owner`` sidecar without its task → delete
``corrupt-task``    unreadable/undecodable task file → delete (the
                    coordinator re-derives tasks from the grid)
``corrupt-done``    unparsable done marker → delete (treated as
                    not-done; the work is re-dispatched or resumed)
``corrupt-blob``    blob whose bytes no longer match its content key
                    → delete (tasks referencing it will recompute)
``orphan-blob``     blob no task references → delete (pure cache)
``salvaged-cells``  completed cells found in worker shards but missing
                    from the canonical checkpoint → append them
=================  ====================================================

Ordinary operational state — the ``STOP`` marker, worker
registrations, lease files, done markers of finished chunks — is
*not* a finding: a queue directory that merely finished a run is
healthy.  ``repro doctor --check`` exits non-zero iff findings
remain, which makes "repair, then check" the post-crash contract the
chaos campaign gates on.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from time import time as _now

from . import io_atomic
from .engine.cache import matrix_content_key
from .engine.checkpoint import (
    CheckpointWriter,
    _decode_payload,
    _iter_records,
    _validate_header,
    load_checkpoint,
)
from .engine.distributed import QueueLayout, _decode_blob
from .errors import CheckpointError, DoctorError

__all__ = [
    "DOCTOR_SCHEMA",
    "Finding",
    "diagnose",
    "diagnose_checkpoint",
    "diagnose_queue",
]

#: Schema tag of the report ``repro doctor`` emits.
DOCTOR_SCHEMA = "doctor/v1"


@dataclass
class Finding:
    """One problem the doctor identified (and possibly fixed)."""

    kind: str
    path: str
    detail: str
    repaired: bool = False

    def to_json(self) -> dict:
        return asdict(self)


@dataclass
class _Audit:
    """Shared accumulator for one doctor pass."""

    repair: bool
    findings: list[Finding] = field(default_factory=list)

    def add(
        self, kind: str, path: Path, detail: str, repaired: bool = False
    ) -> Finding:
        finding = Finding(kind, str(path), detail, repaired)
        self.findings.append(finding)
        return finding


# ----------------------------------------------------------------------
# JSONL (checkpoint / shard) auditing
# ----------------------------------------------------------------------
def _audit_jsonl(audit: _Audit, path: Path) -> None:
    """Torn tails and undecodable records in one checkpoint file."""
    try:
        data = path.read_bytes()
    except OSError as error:
        raise DoctorError(f"cannot read {path}: {error}") from error
    if data and not data.endswith(b"\n"):
        torn = len(data) - (data.rfind(b"\n") + 1)
        finding = audit.add(
            "torn-tail", path, f"{torn} unterminated trailing bytes"
        )
        if audit.repair:
            io_atomic.repair_torn_tail(path)
            finding.repaired = True
            data = path.read_bytes()
    if not data:
        return
    try:
        _validate_header(path)
    except CheckpointError as error:
        audit.add("bad-record", path, f"unusable header: {error}")
        return
    # every remaining line is newline-terminated; keep only the lines
    # that parse AND decode, rewrite if any were dropped
    lines = data.decode("utf-8").splitlines()
    kept: list[str] = []
    dropped = 0
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
            if "payload" in record:
                _decode_payload(record["payload"])
        except Exception as error:  # noqa: BLE001 — any damage counts
            dropped += 1
            audit.add(
                "bad-record",
                path,
                f"line {lineno + 1}: {type(error).__name__}: {error}",
            )
            continue
        kept.append(line)
    if dropped and audit.repair:
        io_atomic.atomic_write_text(path, "\n".join(kept) + "\n")
        for finding in audit.findings:
            if finding.kind == "bad-record" and finding.path == str(
                path
            ):
                finding.repaired = True


def _audit_stray_temps(audit: _Audit, root: Path) -> None:
    """Leftover atomic-write temp files anywhere under ``root``."""
    if root.is_dir():
        candidates = sorted(root.rglob(f"*{io_atomic.TMP_MARKER}*"))
    else:
        candidates = sorted(
            root.parent.glob(root.name + f"{io_atomic.TMP_MARKER}*")
        )
    for temp in candidates:
        if not temp.is_file():
            continue
        finding = audit.add(
            "stray-temp", temp, "interrupted atomic write"
        )
        if audit.repair:
            temp.unlink(missing_ok=True)
            finding.repaired = True


# ----------------------------------------------------------------------
# Queue auditing
# ----------------------------------------------------------------------
def _referenced_blobs(layout: QueueLayout, audit: _Audit) -> set[str]:
    """Content keys referenced by readable task files; prunes corrupt
    task files and orphan owner sidecars along the way."""
    referenced: set[str] = set()
    for directory in (layout.tasks, layout.claimed):
        if not directory.is_dir():
            continue
        for path in sorted(directory.iterdir()):
            if io_atomic.TMP_MARKER in path.name:
                continue  # handled by the stray-temp sweep
            if path.name.endswith(".owner"):
                task = path.with_name(
                    path.name[: -len(".owner")] + ".task"
                )
                if not task.exists():
                    finding = audit.add(
                        "orphan-owner", path, "sidecar without a task"
                    )
                    if audit.repair:
                        path.unlink(missing_ok=True)
                        finding.repaired = True
                continue
            if not path.name.endswith(".task"):
                continue
            try:
                _record, chunk, _digests = layout.read_task(path)
            except Exception as error:  # noqa: BLE001 — damage
                finding = audit.add(
                    "corrupt-task",
                    path,
                    f"{type(error).__name__}: {error}",
                )
                if audit.repair:
                    path.unlink(missing_ok=True)
                    finding.repaired = True
                continue
            for _index, cell in chunk:
                key = getattr(cell.workload, "content_key", None)
                if key:
                    referenced.add(key)
    return referenced


def _audit_claims(
    audit: _Audit, layout: QueueLayout, lease_timeout_s: float
) -> None:
    """Release claimed tasks whose owner stopped heartbeating."""
    if not layout.claimed.is_dir():
        return
    now = _now()
    for path in sorted(layout.claimed.glob("*.task")):
        owner_path = path.with_name(
            path.name[: -len(".task")] + ".owner"
        )
        try:
            owner = owner_path.read_text(encoding="utf-8").strip()
        except OSError:
            owner = ""
        age = layout.lease_age(owner, now) if owner else None
        if age is not None and age < lease_timeout_s:
            continue
        who = owner or "unknown worker"
        lease = (
            f"lease {age:.1f}s stale"
            if age is not None
            else "no lease on file"
        )
        finding = audit.add(
            "expired-claim", path, f"claimed by {who}, {lease}"
        )
        if audit.repair:
            try:
                path.rename(layout.tasks / path.name)
            except OSError:
                pass
            owner_path.unlink(missing_ok=True)
            finding.repaired = True


def _audit_done(audit: _Audit, layout: QueueLayout) -> None:
    """Remove done markers that cannot be parsed (half-trusted)."""
    if not layout.done.is_dir():
        return
    for path in sorted(layout.done.glob("*.done")):
        try:
            json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            finding = audit.add(
                "corrupt-done",
                path,
                f"{type(error).__name__}: {error}",
            )
            if audit.repair:
                path.unlink(missing_ok=True)
                finding.repaired = True


def _audit_blobs(
    audit: _Audit, layout: QueueLayout, referenced: set[str]
) -> None:
    """Verify blob content keys; prune corrupt and orphan blobs."""
    if not layout.blobs.is_dir():
        return
    for path in sorted(layout.blobs.glob("*.blob")):
        key = path.name[: -len(".blob")]
        try:
            matrix = _decode_blob(path.read_bytes())
            actual = matrix_content_key(matrix)
        except Exception as error:  # noqa: BLE001 — damage
            finding = audit.add(
                "corrupt-blob",
                path,
                f"undecodable: {type(error).__name__}: {error}",
            )
            if audit.repair:
                path.unlink(missing_ok=True)
                finding.repaired = True
            continue
        if actual != key:
            finding = audit.add(
                "corrupt-blob",
                path,
                f"content key mismatch (actual {actual[:12]}...)",
            )
            if audit.repair:
                path.unlink(missing_ok=True)
                finding.repaired = True
        elif key not in referenced:
            finding = audit.add(
                "orphan-blob", path, "referenced by no task"
            )
            if audit.repair:
                path.unlink(missing_ok=True)
                finding.repaired = True


def _salvage_shards(
    audit: _Audit, layout: QueueLayout, checkpoint: Path
) -> None:
    """Append shard-only completed cells to the canonical checkpoint.

    A crash between a worker finishing cells and the coordinator's
    merge strands those results in ``results/*.jsonl``.  They are
    bit-identical to what the merge would have written (same decode →
    canonical re-encode path), so appending them makes the resumed
    sweep replay instead of recompute.
    """
    shard_paths = sorted(layout.results.glob("*.jsonl"))
    if not shard_paths:
        return
    try:
        canonical = (
            load_checkpoint(checkpoint)
            if checkpoint.exists() and checkpoint.stat().st_size > 0
            else None
        )
    except CheckpointError:
        canonical = None  # damage already reported by the audit
    have = set(canonical.results) if canonical else set()
    have_encodings = set(canonical.encodings) if canonical else set()
    # raw record copy: shard payloads use the same canonical encoding
    # the coordinator's merge would produce, so the semantic
    # checkpoint digest comes out identical either way
    salvage: dict = {}
    salvage_encodings: dict = {}
    for shard_path in shard_paths:
        try:
            for _lineno, record in _iter_records(shard_path):
                kind = record.get("type")
                if kind == "cell":
                    digest = record.get("digest", "")
                    if digest and digest not in have:
                        salvage[digest] = record
                elif kind == "encoding":
                    key = (
                        record.get("workload", ""),
                        record.get("format", ""),
                    )
                    if key not in have_encodings:
                        salvage_encodings[key] = record
        except CheckpointError:
            continue  # shard damage already reported by the audit
    if not salvage and not salvage_encodings:
        return
    finding = audit.add(
        "salvaged-cells",
        checkpoint,
        f"{len(salvage)} cell(s) and {len(salvage_encodings)} "
        f"encoding(s) stranded in worker shards",
    )
    if not audit.repair:
        return
    with CheckpointWriter(checkpoint) as writer:
        for digest in sorted(salvage):
            writer._append(salvage[digest])
        for key in sorted(salvage_encodings):
            writer._append(salvage_encodings[key])
    finding.repaired = True


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def diagnose_checkpoint(
    path: "str | Path", repair: bool = False
) -> dict:
    """Audit one checkpoint file; returns a ``doctor/v1`` report."""
    path = Path(path)
    if not path.exists():
        raise DoctorError(f"no such checkpoint: {path}")
    audit = _Audit(repair=repair)
    _audit_stray_temps(audit, path)
    _audit_jsonl(audit, path)
    return _report(audit, path, "checkpoint")


def diagnose_queue(
    queue_dir: "str | Path",
    repair: bool = False,
    lease_timeout_s: float = 10.0,
    checkpoint: "str | Path | None" = None,
) -> dict:
    """Audit one queue directory; returns a ``doctor/v1`` report.

    ``checkpoint`` names the canonical sweep checkpoint this queue
    was feeding; when given, completed cells stranded in worker
    shards are salvaged into it (with ``repair=True``).
    """
    layout = QueueLayout(queue_dir)
    if not layout.meta.exists():
        raise DoctorError(
            f"{layout.root} is not a work queue (no queue.json)"
        )
    audit = _Audit(repair=repair)
    _audit_stray_temps(audit, layout.root)
    for shard_path in sorted(layout.results.glob("*.jsonl")):
        _audit_jsonl(audit, shard_path)
    referenced = _referenced_blobs(layout, audit)
    _audit_claims(audit, layout, lease_timeout_s)
    _audit_done(audit, layout)
    _audit_blobs(audit, layout, referenced)
    if checkpoint is not None:
        checkpoint = Path(checkpoint)
        cp_audit = _Audit(repair=repair)
        if checkpoint.exists():
            _audit_stray_temps(cp_audit, checkpoint)
            _audit_jsonl(cp_audit, checkpoint)
        audit.findings.extend(cp_audit.findings)
        _salvage_shards(audit, layout, checkpoint)
    return _report(audit, layout.root, "queue")


def diagnose(
    path: "str | Path",
    repair: bool = False,
    lease_timeout_s: float = 10.0,
    checkpoint: "str | Path | None" = None,
) -> dict:
    """Audit ``path``, autodetecting queue directory vs checkpoint."""
    target = Path(path)
    if target.is_dir():
        return diagnose_queue(
            target,
            repair=repair,
            lease_timeout_s=lease_timeout_s,
            checkpoint=checkpoint,
        )
    return diagnose_checkpoint(target, repair=repair)


def _report(audit: _Audit, target: Path, kind: str) -> dict:
    by_kind: dict[str, int] = {}
    for finding in audit.findings:
        by_kind[finding.kind] = by_kind.get(finding.kind, 0) + 1
    return {
        "schema": DOCTOR_SCHEMA,
        "target": str(target),
        "kind": kind,
        "repair": audit.repair,
        "n_findings": len(audit.findings),
        "n_repaired": sum(f.repaired for f in audit.findings),
        "by_kind": dict(sorted(by_kind.items())),
        "findings": [f.to_json() for f in audit.findings],
        "clean": not audit.findings,
    }
