"""Sweep engine: cached, parallel execution of experiment grids.

Every paper figure is a slice of the (workload x format x partition
size) cube.  This package runs that cube as an explicit grid of cells
through a :class:`SweepRunner` that deduplicates shared work with a
content-keyed cache and fans chunks out over worker processes::

    from repro.engine import SweepRunner, WorkloadSpec

    specs = [WorkloadSpec.random(1024, d) for d in (0.001, 0.01, 0.1)]
    runner = SweepRunner(max_workers=4, encode=True, telemetry=True)
    outcome = runner.run_grid(specs)
    outcome.result("rand-0.01", "csr", 16).sigma
    outcome.stats          # cache hit/miss counters per kind
    outcome.encodings      # exact whole-matrix transfer accounting
    outcome.telemetry      # per-cell spans + merged worker metrics
    outcome.write_manifest("run.jsonl")   # -> python -m repro stats

The runner is fault tolerant: ``error_policy="collect"`` (default)
isolates per-cell failures into :class:`FailedCell` records on
``outcome.failures``, worker crashes are retried / bisected /
degraded to the in-process path, ``checkpoint=``/``resume=`` give
crash recovery with bit-identical replay, and
:class:`~repro.engine.faults.FaultPlan` injects deterministic faults
for testing all of it.
"""

from .cache import CacheStats, ContentKeyedCache, matrix_content_key
from .chaos import ChaosPlan, ChaosSpec, install_plan, uninstall_plan
from .checkpoint import (
    CheckpointState,
    CheckpointWriter,
    cell_digest,
    checkpoint_digest,
    checkpoint_summary,
    compact_checkpoint,
    load_checkpoint,
)
from .executors import (
    EXECUTOR_BACKENDS,
    ExecutionSettings,
    InlineExecutor,
    PoolExecutor,
    SweepExecutor,
    make_executor,
)
from .faults import FaultPlan, FaultSpec, InjectedFault
from .grid import (
    EncodeSummary,
    FailedCell,
    SweepCell,
    SweepOutcome,
    build_grid,
)
from .retry import RetryPolicy, call_with_retry
from .runner import ERROR_POLICIES, SweepRunner, run_sweep
from .singleflight import SingleFlight, SingleFlightStats
from .specs import StreamedMatrixSpec, WorkloadSpec
from .telemetry import CellTelemetry, RunTelemetry, workload_recipe_digest

__all__ = [
    "CacheStats",
    "ContentKeyedCache",
    "matrix_content_key",
    "ChaosPlan",
    "ChaosSpec",
    "install_plan",
    "uninstall_plan",
    "RetryPolicy",
    "call_with_retry",
    "CheckpointState",
    "CheckpointWriter",
    "cell_digest",
    "checkpoint_digest",
    "checkpoint_summary",
    "compact_checkpoint",
    "load_checkpoint",
    "EXECUTOR_BACKENDS",
    "ExecutionSettings",
    "SweepExecutor",
    "InlineExecutor",
    "PoolExecutor",
    "make_executor",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "EncodeSummary",
    "FailedCell",
    "SweepCell",
    "SweepOutcome",
    "build_grid",
    "ERROR_POLICIES",
    "SweepRunner",
    "run_sweep",
    "SingleFlight",
    "SingleFlightStats",
    "StreamedMatrixSpec",
    "WorkloadSpec",
    "CellTelemetry",
    "RunTelemetry",
    "workload_recipe_digest",
]
