"""Content-keyed caching of shared sweep work.

A sweep grid re-uses the same expensive intermediates across many
cells: every format at one (workload, partition size) shares the
partition profiles, and every partition size of one (workload, format)
shares the whole-matrix encoding.  The cache keys those intermediates
by the *content* of the matrix (a digest over its triplets), not by
object identity, so two cells built from independently generated but
identical matrices still dedupe.

Hit/miss counters are kept per kind (``"matrix"``, ``"profiles"``,
``"encode"``) so tests and callers can observe exactly how much work
the cache saved.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Hashable, TypeVar

import numpy as np

from ..matrix import SparseMatrix

__all__ = ["CacheStats", "ContentKeyedCache", "matrix_content_key"]

T = TypeVar("T")


def matrix_content_key(matrix: SparseMatrix) -> str:
    """A short, stable digest of a matrix's exact content.

    Two matrices get the same key iff they have the same shape and the
    same canonical triplet arrays (``SparseMatrix`` keeps triplets in
    sorted, deduplicated form, so the byte streams are canonical too).
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.asarray(matrix.shape, dtype=np.int64).tobytes())
    digest.update(matrix.rows.tobytes())
    digest.update(matrix.cols.tobytes())
    digest.update(matrix.vals.tobytes())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Per-kind hit/miss counters; mergeable across workers."""

    hits: dict = field(default_factory=dict)
    misses: dict = field(default_factory=dict)

    def record(self, kind: str, hit: bool) -> None:
        table = self.hits if hit else self.misses
        table[kind] = table.get(kind, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def hits_for(self, kind: str) -> int:
        return self.hits.get(kind, 0)

    def misses_for(self, kind: str) -> int:
        return self.misses.get(kind, 0)

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Combined counters of two stat records (associative)."""
        merged = CacheStats(dict(self.hits), dict(self.misses))
        for kind, count in other.hits.items():
            merged.hits[kind] = merged.hits.get(kind, 0) + count
        for kind, count in other.misses.items():
            merged.misses[kind] = merged.misses.get(kind, 0) + count
        return merged

    def __repr__(self) -> str:
        kinds = sorted(set(self.hits) | set(self.misses))
        parts = ", ".join(
            f"{kind}={self.hits_for(kind)}/{self.misses_for(kind)}"
            for kind in kinds
        )
        return f"CacheStats(hit/miss per kind: {parts or 'empty'})"


class ContentKeyedCache:
    """An in-memory memo table keyed by content-derived tuples.

    Keys are ``(kind, *components)`` tuples whose first element names
    the kind of intermediate (used for the stats breakdown).  The cache
    lives for the duration of one worker chunk, so it never needs an
    eviction policy.
    """

    def __init__(self) -> None:
        self._store: dict = {}
        self._matrix_keys: dict = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def matrix_key(self, matrix: SparseMatrix) -> str:
        """Content key of ``matrix``, memoized by object identity."""
        memo = self._matrix_keys.get(id(matrix))
        if memo is not None and memo[0] is matrix:
            return memo[1]
        key = matrix_content_key(matrix)
        # hold a reference so id() cannot be recycled under us
        self._matrix_keys[id(matrix)] = (matrix, key)
        return key

    def get_or_create(
        self, key: tuple[Hashable, ...], factory: Callable[[], T]
    ) -> T:
        """Return the cached value for ``key``, creating it on a miss."""
        kind = str(key[0])
        if key in self._store:
            self.stats.record(kind, hit=True)
            return self._store[key]
        self.stats.record(kind, hit=False)
        value = factory()
        self._store[key] = value
        return value
