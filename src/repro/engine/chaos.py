"""Seeded chaos: deterministic fault injection at the durability seams.

:mod:`repro.engine.faults` attacks the *compute* path — it raises,
crashes, delays and corrupts at chosen sweep cells.  This module
attacks the *durability* path: the filesystem and process boundaries
between the queue, the checkpoints and the serve layer, which is
where distributed systems actually lose data.  Faults are declared in
a compact grammar mirroring the fault plan's::

    torn-write@checkpoint#frac=0.4#after=3
    stale-lease@worker#after=2
    slow-io@blobs#ms=40
    disk-full@shards#after=5
    crash@merge
    sigterm@serve#midflight

``kind@target`` names what fires and where; ``#key=value`` options
tune *when* (``after`` counts matching operations before the first
firing, ``times`` bounds repeat firings, ``none`` = unlimited) and
*how hard* (``frac`` = fraction of the record that hits disk before
the tear, ``ms`` = injected latency).

Execution is hook-based: write sites announce operations through
:func:`repro.io_atomic.fire` and an installed :class:`ChaosPlan`
reacts — appending a partial record then killing the process
(``torn-write``), swallowing lease heartbeats (``stale-lease``),
sleeping (``slow-io``), raising ``ENOSPC`` (``disk-full``), or
aborting the coordinator (``crash@merge``).  ``sigterm@serve`` is
interpreted by the campaign runner (:mod:`repro.chaos`), which drains
a live server mid-load.

Determinism: a plan's *schedule* is pure data, and every firing
decision is a per-process operation counter compared against
``after``/``times`` — no wall clocks, no RNG.  The OS-level
interleaving of workers still varies run to run, which is the point:
the invariants (digest identity, zero lost cells) must hold under
*any* interleaving, so the campaign gates on them rather than on a
particular trace.

Process roles matter: a fault that kills a queue **worker** uses
``os._exit`` (a real ``kill -9`` as far as durability is concerned),
while the same fault on the **coordinator** raises
:class:`~repro.errors.ChaosCrash` so the campaign harness survives to
run recovery.  Workers receive the plan through the pickled
:class:`~repro.engine.executors.ExecutionSettings` in ``queue.json``
and install it with ``role="worker"`` on startup.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ChaosCrash, SweepConfigError
from .. import io_atomic
from ..io_atomic import HookSuppressed
from .faults import CRASH_EXIT_STATUS

__all__ = [
    "CHAOS_KINDS",
    "CHAOS_OPS",
    "ChaosPlan",
    "ChaosSpec",
    "active_plan",
    "install_plan",
    "uninstall_plan",
]

#: Every fault kind the grammar accepts.
CHAOS_KINDS = (
    "torn-write",
    "stale-lease",
    "slow-io",
    "disk-full",
    "crash",
    "sigterm",
)

#: Valid targets per kind.
_TARGETS = {
    "torn-write": ("checkpoint", "shards"),
    "stale-lease": ("worker",),
    "slow-io": ("blobs", "shards", "checkpoint"),
    "disk-full": ("shards", "blobs", "checkpoint"),
    "crash": ("merge", "worker"),
    "sigterm": ("serve",),
}

#: The io_atomic operations a plan listens on.
CHAOS_OPS = (
    "checkpoint.append",
    "atomic.write",
    "blob.read",
    "queue.heartbeat",
    "queue.merge",
)

#: Queue subdirectories whose files count as shard/queue state.
_SHARD_DIRS = frozenset({"tasks", "claimed", "done", "results"})


@dataclass(frozen=True)
class ChaosSpec:
    """One parsed ``kind@target#options`` clause."""

    kind: str
    target: str
    frac: float = 0.5
    after: int = 1
    ms: float = 25.0
    times: "int | None" = 1

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise SweepConfigError(
                f"unknown chaos kind {self.kind!r}; expected one of "
                f"{', '.join(CHAOS_KINDS)}"
            )
        if self.target not in _TARGETS[self.kind]:
            raise SweepConfigError(
                f"chaos kind {self.kind!r} cannot target "
                f"{self.target!r}; valid targets: "
                f"{', '.join(_TARGETS[self.kind])}"
            )
        if not 0.0 <= self.frac < 1.0:
            raise SweepConfigError(
                f"frac must be in [0, 1), got {self.frac}"
            )
        if self.after < 1:
            raise SweepConfigError(
                f"after must be >= 1, got {self.after}"
            )
        if self.ms < 0:
            raise SweepConfigError(f"ms must be >= 0, got {self.ms}")
        if self.times is not None and self.times < 1:
            raise SweepConfigError(
                f"times must be >= 1 or 'none', got {self.times}"
            )

    # ------------------------------------------------------------------
    def matches(self, op: str, path: Path) -> bool:
        """Does this spec listen on operation ``op`` at ``path``?"""
        if self.kind == "sigterm":
            return False  # campaign-interpreted, never hook-fired
        if self.kind == "stale-lease":
            return op == "queue.heartbeat"
        if self.kind == "crash":
            if self.target == "merge":
                return op == "queue.merge"
            # crash@worker: die at the next durable write the worker
            # attempts (its shard checkpoint append)
            return (
                op == "checkpoint.append"
                and _classify(path) == "shards"
            )
        if self.kind == "torn-write":
            return (
                op == "checkpoint.append"
                and _classify(path) == self.target
            )
        # slow-io / disk-full: any announced write or blob read whose
        # path classifies as the target
        if op == "blob.read":
            return self.target == "blobs"
        if op in ("checkpoint.append", "atomic.write"):
            return _classify(path) == self.target
        return False

    def describe(self) -> str:
        """Round-trippable compact form of this spec."""
        parts = [f"{self.kind}@{self.target}"]
        if self.kind == "torn-write" and self.frac != 0.5:
            parts.append(f"frac={self.frac:g}")
        if self.after != 1:
            parts.append(f"after={self.after}")
        if self.kind == "slow-io":
            parts.append(f"ms={self.ms:g}")
        if self.times != 1:
            times = "none" if self.times is None else str(self.times)
            parts.append(f"times={times}")
        return "#".join(parts)


def _classify(path: Path) -> str:
    """Map a path to a chaos target by its queue-directory position.

    Files inside a queue's ``tasks``/``claimed``/``done``/``results``
    dirs are ``shards`` state, ``blobs`` is itself, and everything
    else — canonical checkpoints, BENCH artifacts, manifests — is
    ``checkpoint``.
    """
    parent = path.parent.name
    if parent in _SHARD_DIRS:
        return "shards"
    if parent == "blobs":
        return "blobs"
    return "checkpoint"


def _parse_options(spec: str, text: str) -> dict:
    options: dict = {}
    for clause in text.split("#"):
        if not clause:
            continue
        key, sep, value = clause.partition("=")
        if key == "midflight" and not sep:
            continue  # descriptive flag for sigterm@serve
        if not sep:
            raise SweepConfigError(
                f"chaos option {clause!r} in {spec!r} must be "
                f"key=value"
            )
        try:
            if key == "frac":
                options["frac"] = float(value)
            elif key == "after":
                options["after"] = int(value)
            elif key == "ms":
                options["ms"] = float(value)
            elif key == "times":
                options["times"] = (
                    None if value == "none" else int(value)
                )
            else:
                raise SweepConfigError(
                    f"unknown chaos option {key!r} in {spec!r}"
                )
        except ValueError as error:
            raise SweepConfigError(
                f"invalid chaos option {clause!r} in {spec!r}: "
                f"{error}"
            ) from error
    return options


def _parse_one(text: str) -> ChaosSpec:
    head, _, option_text = text.partition("#")
    kind, sep, target = head.partition("@")
    if not sep or not kind or not target:
        raise SweepConfigError(
            f"chaos spec {text!r} must look like kind@target"
            f"[#key=value...]"
        )
    return ChaosSpec(
        kind=kind.strip(),
        target=target.strip(),
        **_parse_options(text, option_text),
    )


@dataclass
class ChaosPlan:
    """An ordered set of chaos specs plus per-process firing state.

    The specs are immutable; the operation/firing counters are
    per-process bookkeeping (reset when the plan crosses a pickle
    boundary into a worker, which is exactly the semantics wanted:
    each process counts its own operations).
    """

    specs: tuple[ChaosSpec, ...] = ()
    _seen: dict = field(default_factory=dict, compare=False, repr=False)
    _fired: dict = field(default_factory=dict, compare=False, repr=False)

    @classmethod
    def parse(cls, text: str) -> "ChaosPlan":
        """Parse a comma-separated chaos plan string."""
        specs = tuple(
            _parse_one(clause.strip())
            for clause in text.split(",")
            if clause.strip()
        )
        if not specs:
            raise SweepConfigError(
                f"chaos plan {text!r} contains no specs"
            )
        return cls(specs)

    @classmethod
    def of(cls, *specs: ChaosSpec) -> "ChaosPlan":
        return cls(tuple(specs))

    def __getstate__(self) -> dict:
        return {"specs": self.specs}

    def __setstate__(self, state: dict) -> None:
        self.specs = state["specs"]
        self._seen = {}
        self._fired = {}

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self.specs)

    def serve_specs(self) -> tuple[ChaosSpec, ...]:
        """The campaign-interpreted ``sigterm@serve`` clauses."""
        return tuple(s for s in self.specs if s.kind == "sigterm")

    def fired_counts(self) -> dict[str, int]:
        """Firing counts per ``kind@target`` in this process."""
        counts: dict[str, int] = {}
        for index, spec in enumerate(self.specs):
            fired = self._fired.get(index, 0)
            if fired:
                key = f"{spec.kind}@{spec.target}"
                counts[key] = counts.get(key, 0) + fired
        return counts

    # ------------------------------------------------------------------
    def react(
        self, op: str, path: Path, data: "bytes | None", role: str
    ) -> None:
        """The hook body: count the operation, fire due specs."""
        for index, spec in enumerate(self.specs):
            if not spec.matches(op, path):
                continue
            seen = self._seen.get(index, 0) + 1
            self._seen[index] = seen
            if seen < spec.after:
                continue
            fired = self._fired.get(index, 0)
            if spec.times is not None and fired >= spec.times:
                continue
            self._fired[index] = fired + 1
            self._fire(spec, op, path, data, role)

    def _fire(
        self,
        spec: ChaosSpec,
        op: str,
        path: Path,
        data: "bytes | None",
        role: str,
    ) -> None:
        if spec.kind == "slow-io":
            time.sleep(spec.ms / 1000.0)
            return
        if spec.kind == "stale-lease":
            raise HookSuppressed(f"chaos {spec.describe()}")
        if spec.kind == "disk-full":
            raise OSError(
                errno.ENOSPC,
                f"No space left on device (chaos {spec.describe()})",
            )
        if spec.kind == "torn-write":
            self._tear(spec, path, data, role)
            return
        if spec.kind == "crash":
            if role == "worker":
                os._exit(CRASH_EXIT_STATUS)
            raise ChaosCrash(
                f"injected coordinator crash ({spec.describe()} "
                f"at {op})"
            )

    def _tear(
        self,
        spec: ChaosSpec,
        path: Path,
        data: "bytes | None",
        role: str,
    ) -> None:
        """Append a prefix of the record straight to the file, then die.

        Writing through a separate descriptor (the real writer never
        runs) reproduces exactly what ``kill -9`` between a partial
        ``write(2)`` and its completion leaves on disk: earlier
        records intact, the final line unterminated.
        """
        payload = data or b""
        torn = payload[: int(len(payload) * spec.frac)]
        if torn.endswith(b"\n"):
            torn = torn[:-1]
        try:
            with open(path, "ab") as stream:
                stream.write(torn)
                stream.flush()
                os.fsync(stream.fileno())
        except OSError:
            pass  # the death below is the observable effect
        if role == "worker":
            os._exit(CRASH_EXIT_STATUS)
        raise ChaosCrash(
            f"injected coordinator crash after torn write "
            f"({spec.describe()} at {path.name})"
        )


# ----------------------------------------------------------------------
# Installation into the io_atomic hook registry
# ----------------------------------------------------------------------
_active: "tuple[ChaosPlan, str] | None" = None


def install_plan(plan: ChaosPlan, role: str) -> None:
    """Register ``plan`` as this process's chaos layer.

    ``role`` is ``"worker"`` (faults kill the process, like a real
    crash) or ``"coordinator"`` (faults raise :class:`ChaosCrash` so
    a harness can run recovery).  Installing replaces any previously
    installed plan.
    """
    global _active
    if role not in ("worker", "coordinator"):
        raise SweepConfigError(
            f"chaos role must be 'worker' or 'coordinator', "
            f"got {role!r}"
        )
    _active = (plan, role)

    def hook(op: str, path: Path, data: "bytes | None") -> None:
        plan.react(op, path, data, role)

    for op in CHAOS_OPS:
        io_atomic.install_hook(op, hook)


def uninstall_plan() -> None:
    """Remove the active plan's hooks (idempotent)."""
    global _active
    _active = None
    for op in CHAOS_OPS:
        io_atomic.remove_hook(op)


def active_plan() -> "ChaosPlan | None":
    """The plan installed in this process, if any."""
    return _active[0] if _active is not None else None
