"""Append-only JSONL sweep checkpoints for crash recovery and resume.

A checkpoint is the durable sibling of a run manifest: one JSON line
per *completed* cell, appended (and flushed) the moment the parent
process sees the result, so a sweep killed at any point leaves behind
every finished cell.  Resuming replays those cells from disk and
executes only the remainder — and because the replay payload is the
pickled :class:`~repro.core.results.CharacterizationResult` itself
(zlib-compressed, base64-armored inside the JSON record), a resumed
sweep's outcome is bit-identical to an uninterrupted run's.

Records are keyed by the **cell recipe digest** — a content digest of
(workload recipe, format, partition size, hardware config) — not by
grid position, so a checkpoint survives grid reordering, grid
extension, and partial overlap: any cell whose recipe matches replays,
everything else runs.

Wire format (one JSON object per line)::

    {"type": "header", "kind": "copernicus-sweep-checkpoint", ...}
    {"type": "cell", "digest": ..., "workload": ..., "format": ...,
     "partition_size": ..., "wall_s": ..., "cache_key": ...,
     "payload": "<base64(zlib(pickle(result)))>"}
    {"type": "encoding", "workload": ..., "format": ...,
     "payload": "<base64(zlib(pickle(EncodeSummary)))>"}
    {"type": "failed", "digest": ..., "index": ..., "workload": ...,
     "format": ..., "partition_size": ...,
     "payload": "<base64(zlib(pickle(FailedCell)))>"}

The file is append-only; re-executed cells simply append again and the
loader keeps the latest record per digest (a ``cell`` record clears an
earlier ``failed`` record for the same digest — a retry that
eventually succeeded).  A torn final line (the process died
mid-append) is detected and ignored on load; corruption anywhere
earlier raises :class:`~repro.errors.CheckpointError`.

Distributed sweeps stack another layer on the same format: every
queue worker appends to its **own shard** checkpoint, and the
coordinator merges shards into the canonical checkpoint in grid
order.  :func:`checkpoint_digest` is the correctness gate for that
merge — a content digest over the *semantic* payload (cell digests,
results, cache keys, encodings) that deliberately excludes wall-clock
times and record order, so a queue-backend checkpoint and a
sequential one compare equal iff they hold bit-identical results.
:func:`compact_checkpoint` rewrites a record log keeping only the
latest record per key (``repro checkpoint --compact``).
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING

from .. import io_atomic
from ..errors import CheckpointError
from .telemetry import workload_recipe_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.results import CharacterizationResult
    from .grid import EncodeSummary, FailedCell, SweepCell

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA",
    "cell_digest",
    "CheckpointState",
    "CheckpointWriter",
    "load_checkpoint",
    "checkpoint_digest",
    "checkpoint_summary",
    "compact_checkpoint",
]

#: Value of the header's ``kind`` field.
CHECKPOINT_KIND = "copernicus-sweep-checkpoint"

#: Bump on any backwards-incompatible record change.
CHECKPOINT_SCHEMA = 1


def cell_digest(cell: "SweepCell") -> str:
    """Content digest identifying one cell's complete recipe.

    Two cells collide iff they would compute the same result: same
    workload recipe (generator parameters for specs, matrix content
    for materialized workloads), same format, same partition size and
    same base hardware configuration.
    """
    payload = repr((
        workload_recipe_digest(cell.workload),
        cell.format_name,
        cell.partition_size,
        cell.config,
    ))
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=16
    ).hexdigest()


class _CanonicalPickler(pickle._Pickler):
    """Pickler whose output is invariant to ``str`` object identity.

    pickle's memo is keyed by object id, so two equal strings that are
    distinct objects (typical for a result that crossed a worker's
    pickle boundary) serialize differently than one shared interned
    string (typical for a result computed in-process).  Routing every
    plain ``str`` through a value-keyed table collapses equal strings
    into one representative per dump, which makes the payload bytes —
    and therefore :func:`checkpoint_digest` — depend only on the
    values, not on which backend produced them.
    """

    def __init__(self, stream, protocol: int) -> None:
        super().__init__(stream, protocol)
        self._strings: dict[str, str] = {}

    def save(self, obj, save_persistent_id=True):
        if type(obj) is str:
            obj = self._strings.setdefault(obj, obj)
        super().save(obj, save_persistent_id)


def _encode_payload(obj) -> str:
    buffer = io.BytesIO()
    _CanonicalPickler(buffer, 4).dump(obj)
    return base64.b64encode(
        zlib.compress(buffer.getvalue())
    ).decode("ascii")


def _decode_payload(text: str):
    try:
        return pickle.loads(zlib.decompress(base64.b64decode(text)))
    except Exception as error:
        raise CheckpointError(
            f"undecodable checkpoint payload: "
            f"{type(error).__name__}: {error}"
        ) from error


@dataclass
class CheckpointState:
    """Everything a checkpoint file holds, latest record per key.

    ``results`` maps cell recipe digests to
    ``(result, wall_s, cache_key)`` triples; ``encodings`` maps
    (workload, format) pairs to their :class:`EncodeSummary`;
    ``failures`` maps cell digests to :class:`FailedCell` records that
    no later ``cell`` record superseded.
    """

    results: dict = field(default_factory=dict)
    encodings: dict = field(default_factory=dict)
    failures: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def result_for(self, digest: str):
        return self.results.get(digest)


class CheckpointWriter:
    """Appends completed cells to a checkpoint file, flushing each.

    Opening a missing or empty file writes the header line first;
    opening an existing checkpoint truncates any torn trailing line
    (a crash mid-append — appending after it would glue the new
    record onto the fragment and corrupt both), then validates the
    header and appends.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        io_atomic.repair_torn_tail(self.path)
        fresh = (
            not self.path.exists() or self.path.stat().st_size == 0
        )
        if not fresh:
            _validate_header(self.path)
        self._stream: IO[str] = self.path.open(
            "a", encoding="utf-8"
        )
        if fresh:
            self._append({
                "type": "header",
                "kind": CHECKPOINT_KIND,
                "schema": CHECKPOINT_SCHEMA,
            })

    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        io_atomic.fire(
            "checkpoint.append", self.path, line.encode("utf-8")
        )
        self._stream.write(line)
        self._stream.flush()

    def record_result(
        self,
        digest: str,
        cell: "SweepCell",
        result: "CharacterizationResult",
        wall_s: float = 0.0,
        cache_key: str = "",
    ) -> None:
        """Append one completed cell (called as each cell finishes)."""
        self._append({
            "type": "cell",
            "digest": digest,
            "workload": result.workload,
            "format": cell.format_name,
            "partition_size": cell.partition_size,
            "wall_s": wall_s,
            "cache_key": cache_key,
            "payload": _encode_payload(result),
        })

    def record_encoding(self, summary: "EncodeSummary") -> None:
        """Append one (workload, format) encode summary."""
        self._append({
            "type": "encoding",
            "workload": summary.workload,
            "format": summary.format_name,
            "payload": _encode_payload(summary),
        })

    def record_failure(
        self, digest: str, failure: "FailedCell"
    ) -> None:
        """Append one failed cell (``error_policy="collect"``).

        Lets a distributed worker's shard carry its failures to the
        coordinator; a later ``cell`` record for the same digest (a
        retry that succeeded, possibly on another worker) supersedes
        it on load.
        """
        self._append({
            "type": "failed",
            "digest": digest,
            "index": failure.index,
            "workload": failure.workload,
            "format": failure.format_name,
            "partition_size": failure.partition_size,
            "payload": _encode_payload(failure),
        })

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _validate_header(path: Path) -> dict:
    with path.open("r", encoding="utf-8") as stream:
        first = stream.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"{path}: first line is not JSON: {error}"
        ) from error
    if not isinstance(header, dict) or header.get("type") != "header":
        raise CheckpointError(f"{path}: missing checkpoint header")
    if header.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(
            f"{path}: not a sweep checkpoint "
            f"(kind={header.get('kind')!r})"
        )
    if header.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: unsupported checkpoint schema "
            f"{header.get('schema')!r} (expected {CHECKPOINT_SCHEMA})"
        )
    return header


def _iter_records(path: Path):
    """Yield ``(lineno, record)`` for every parseable record line.

    Applies the shared trust model: a torn final line is silently
    dropped, anything else malformed raises :class:`CheckpointError`.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {error}"
        ) from error
    _validate_header(path)
    lines = text.splitlines()
    last_index = len(lines) - 1
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if lineno == last_index and not text.endswith("\n"):
                return  # torn tail from a mid-append kill
            raise CheckpointError(
                f"{path}:{lineno + 1}: invalid JSON: {error}"
            ) from error
        if not isinstance(record, dict):
            if lineno == last_index and not text.endswith("\n"):
                return  # torn tail that happens to parse (e.g. "12")
            raise CheckpointError(
                f"{path}:{lineno + 1}: checkpoint records must be "
                f"objects"
            )
        yield lineno, record


def load_checkpoint(path: str | Path) -> CheckpointState:
    """Parse a checkpoint, keeping the latest record per cell digest.

    A torn final line — the tell-tale of a process killed mid-append —
    is silently dropped; malformed records anywhere else raise
    :class:`CheckpointError` because they mean the file cannot be
    trusted as a whole.
    """
    path = Path(path)
    state = CheckpointState()
    for lineno, record in _iter_records(path):
        kind = record.get("type")
        if kind == "cell":
            try:
                digest = record["digest"]
                payload = record["payload"]
            except KeyError as error:
                raise CheckpointError(
                    f"{path}:{lineno + 1}: cell record missing "
                    f"{error}"
                ) from None
            state.results[digest] = (
                _decode_payload(payload),
                float(record.get("wall_s", 0.0)),
                str(record.get("cache_key", "")),
            )
            # a completed retry supersedes an earlier failure record
            state.failures.pop(digest, None)
        elif kind == "encoding":
            summary = _decode_payload(record["payload"])
            state.encodings[
                (record["workload"], record["format"])
            ] = summary
        elif kind == "failed":
            try:
                digest = record["digest"]
                payload = record["payload"]
            except KeyError as error:
                raise CheckpointError(
                    f"{path}:{lineno + 1}: failed record missing "
                    f"{error}"
                ) from None
            state.failures[digest] = _decode_payload(payload)
        # header handled above; unknown types skipped for forward
        # compatibility
    return state


def checkpoint_digest(path: str | Path) -> str:
    """Content digest of a checkpoint's *semantic* payload.

    Covers the latest result payload per cell digest, the encodings
    and the surviving failures; excludes wall-clock times, cache keys
    (provenance metadata some backends omit) and record order.  Two
    checkpoints compare equal under this digest iff replaying them
    yields bit-identical sweep outcomes — the correctness gate for
    the distributed coordinator's shard merge
    (``repro checkpoint --digest``).
    """
    cells: dict = {}
    encodings: dict = {}
    failures: dict = {}
    for _lineno, record in _iter_records(Path(path)):
        kind = record.get("type")
        if kind == "cell":
            digest = record.get("digest", "")
            cells[digest] = record.get("payload", "")
            failures.pop(digest, None)
        elif kind == "encoding":
            encodings[
                (record.get("workload", ""), record.get("format", ""))
            ] = record.get("payload", "")
        elif kind == "failed":
            failures[record.get("digest", "")] = record.get(
                "payload", ""
            )
    payload = repr((
        sorted(cells.items()),
        sorted(encodings.items()),
        sorted(failures.items()),
    ))
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=16
    ).hexdigest()


def checkpoint_summary(path: str | Path) -> dict:
    """Inspection stats for one checkpoint (``repro checkpoint``)."""
    path = Path(path)
    n_records = 0
    cell_appends: dict = {}
    per_workload: dict = {}
    encodings: set = set()
    failures: dict = {}
    wall_s = 0.0
    for _lineno, record in _iter_records(path):
        kind = record.get("type")
        if kind == "header":
            continue
        n_records += 1
        if kind == "cell":
            digest = record.get("digest", "")
            cell_appends[digest] = cell_appends.get(digest, 0) + 1
            workload = record.get("workload", "")
            per_workload[workload] = per_workload.get(workload, 0) + 1
            wall_s += float(record.get("wall_s", 0.0))
            failures.pop(digest, None)
        elif kind == "encoding":
            encodings.add(
                (record.get("workload", ""), record.get("format", ""))
            )
        elif kind == "failed":
            failures[record.get("digest", "")] = {
                "workload": record.get("workload", ""),
                "format": record.get("format", ""),
                "partition_size": record.get("partition_size", 0),
                "index": record.get("index", -1),
            }
    duplicates = sum(count - 1 for count in cell_appends.values())
    return {
        "path": str(path),
        "n_records": n_records,
        "n_cells": len(cell_appends),
        "n_duplicate_cells": duplicates,
        "n_encodings": len(encodings),
        "n_failed": len(failures),
        "failed": sorted(
            failures.values(),
            key=lambda f: (f["index"], f["workload"], f["format"]),
        ),
        "cells_per_workload": dict(sorted(per_workload.items())),
        "recorded_wall_s": wall_s,
        "digest": checkpoint_digest(path),
        "bytes": path.stat().st_size,
    }


def compact_checkpoint(
    path: str | Path, output: "str | Path | None" = None
) -> dict:
    """Rewrite a checkpoint keeping only the latest record per key.

    Drops duplicate ``cell`` appends (re-executed or duplicated-claim
    cells), duplicate encodings, and ``failed`` records superseded by
    a later success.  Record order in the compacted file is the order
    each key's *latest* record appeared, so compacting an
    already-compact file is the identity.  In-place (``output=None``)
    replaces the file atomically via a same-directory temp file.
    Returns the before/after stats; the semantic
    :func:`checkpoint_digest` is invariant under compaction.
    """
    path = Path(path)
    before = checkpoint_summary(path)
    latest: dict = {}  # key -> record (insertion order re-established)
    for _lineno, record in _iter_records(path):
        kind = record.get("type")
        if kind == "cell":
            key = ("cell", record.get("digest", ""))
            failed_key = ("failed", record.get("digest", ""))
            latest.pop(failed_key, None)
        elif kind == "encoding":
            key = (
                "encoding",
                record.get("workload", ""),
                record.get("format", ""),
            )
        elif kind == "failed":
            key = ("failed", record.get("digest", ""))
        else:
            continue  # the header is rewritten fresh
        latest.pop(key, None)  # move-to-back: keep latest, late order
        latest[key] = record
    destination = path if output is None else Path(output)
    lines = [
        json.dumps(
            {
                "type": "header",
                "kind": CHECKPOINT_KIND,
                "schema": CHECKPOINT_SCHEMA,
            },
            sort_keys=True,
        )
    ]
    lines.extend(
        json.dumps(record, sort_keys=True)
        for record in latest.values()
    )
    io_atomic.atomic_write_text(destination, "\n".join(lines) + "\n")
    after = checkpoint_summary(destination)
    return {
        "path": str(destination),
        "records_before": before["n_records"],
        "records_after": after["n_records"],
        "dropped": before["n_records"] - after["n_records"],
        "bytes_before": before["bytes"],
        "bytes_after": after["bytes"],
        "digest": after["digest"],
    }
