"""Append-only JSONL sweep checkpoints for crash recovery and resume.

A checkpoint is the durable sibling of a run manifest: one JSON line
per *completed* cell, appended (and flushed) the moment the parent
process sees the result, so a sweep killed at any point leaves behind
every finished cell.  Resuming replays those cells from disk and
executes only the remainder — and because the replay payload is the
pickled :class:`~repro.core.results.CharacterizationResult` itself
(zlib-compressed, base64-armored inside the JSON record), a resumed
sweep's outcome is bit-identical to an uninterrupted run's.

Records are keyed by the **cell recipe digest** — a content digest of
(workload recipe, format, partition size, hardware config) — not by
grid position, so a checkpoint survives grid reordering, grid
extension, and partial overlap: any cell whose recipe matches replays,
everything else runs.

Wire format (one JSON object per line)::

    {"type": "header", "kind": "copernicus-sweep-checkpoint", ...}
    {"type": "cell", "digest": ..., "workload": ..., "format": ...,
     "partition_size": ..., "wall_s": ..., "cache_key": ...,
     "payload": "<base64(zlib(pickle(result)))>"}
    {"type": "encoding", "workload": ..., "format": ...,
     "payload": "<base64(zlib(pickle(EncodeSummary)))>"}

The file is append-only; re-executed cells simply append again and the
loader keeps the latest record per digest.  A torn final line (the
process died mid-append) is detected and ignored on load; corruption
anywhere earlier raises :class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING

from ..errors import CheckpointError
from .telemetry import workload_recipe_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.results import CharacterizationResult
    from .grid import EncodeSummary, SweepCell

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA",
    "cell_digest",
    "CheckpointState",
    "CheckpointWriter",
    "load_checkpoint",
]

#: Value of the header's ``kind`` field.
CHECKPOINT_KIND = "copernicus-sweep-checkpoint"

#: Bump on any backwards-incompatible record change.
CHECKPOINT_SCHEMA = 1


def cell_digest(cell: "SweepCell") -> str:
    """Content digest identifying one cell's complete recipe.

    Two cells collide iff they would compute the same result: same
    workload recipe (generator parameters for specs, matrix content
    for materialized workloads), same format, same partition size and
    same base hardware configuration.
    """
    payload = repr((
        workload_recipe_digest(cell.workload),
        cell.format_name,
        cell.partition_size,
        cell.config,
    ))
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=16
    ).hexdigest()


def _encode_payload(obj) -> str:
    return base64.b64encode(
        zlib.compress(pickle.dumps(obj, protocol=4))
    ).decode("ascii")


def _decode_payload(text: str):
    try:
        return pickle.loads(zlib.decompress(base64.b64decode(text)))
    except Exception as error:
        raise CheckpointError(
            f"undecodable checkpoint payload: "
            f"{type(error).__name__}: {error}"
        ) from error


@dataclass
class CheckpointState:
    """Everything a checkpoint file holds, latest record per key.

    ``results`` maps cell recipe digests to
    ``(result, wall_s, cache_key)`` triples; ``encodings`` maps
    (workload, format) pairs to their :class:`EncodeSummary`.
    """

    results: dict = field(default_factory=dict)
    encodings: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def result_for(self, digest: str):
        return self.results.get(digest)


class CheckpointWriter:
    """Appends completed cells to a checkpoint file, flushing each.

    Opening a missing or empty file writes the header line first;
    opening an existing checkpoint validates its header and appends.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = (
            not self.path.exists() or self.path.stat().st_size == 0
        )
        if not fresh:
            _validate_header(self.path)
        self._stream: IO[str] = self.path.open(
            "a", encoding="utf-8"
        )
        if fresh:
            self._append({
                "type": "header",
                "kind": CHECKPOINT_KIND,
                "schema": CHECKPOINT_SCHEMA,
            })

    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        self._stream.write(json.dumps(record, sort_keys=True))
        self._stream.write("\n")
        self._stream.flush()

    def record_result(
        self,
        digest: str,
        cell: "SweepCell",
        result: "CharacterizationResult",
        wall_s: float = 0.0,
        cache_key: str = "",
    ) -> None:
        """Append one completed cell (called as each cell finishes)."""
        self._append({
            "type": "cell",
            "digest": digest,
            "workload": result.workload,
            "format": cell.format_name,
            "partition_size": cell.partition_size,
            "wall_s": wall_s,
            "cache_key": cache_key,
            "payload": _encode_payload(result),
        })

    def record_encoding(self, summary: "EncodeSummary") -> None:
        """Append one (workload, format) encode summary."""
        self._append({
            "type": "encoding",
            "workload": summary.workload,
            "format": summary.format_name,
            "payload": _encode_payload(summary),
        })

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _validate_header(path: Path) -> dict:
    with path.open("r", encoding="utf-8") as stream:
        first = stream.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"{path}: first line is not JSON: {error}"
        ) from error
    if not isinstance(header, dict) or header.get("type") != "header":
        raise CheckpointError(f"{path}: missing checkpoint header")
    if header.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(
            f"{path}: not a sweep checkpoint "
            f"(kind={header.get('kind')!r})"
        )
    if header.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: unsupported checkpoint schema "
            f"{header.get('schema')!r} (expected {CHECKPOINT_SCHEMA})"
        )
    return header


def load_checkpoint(path: str | Path) -> CheckpointState:
    """Parse a checkpoint, keeping the latest record per cell digest.

    A torn final line — the tell-tale of a process killed mid-append —
    is silently dropped; malformed records anywhere else raise
    :class:`CheckpointError` because they mean the file cannot be
    trusted as a whole.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {error}"
        ) from error
    _validate_header(path)

    lines = text.splitlines()
    state = CheckpointState()
    last_index = len(lines) - 1
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if lineno == last_index and not text.endswith("\n"):
                break  # torn tail from a mid-append kill
            raise CheckpointError(
                f"{path}:{lineno + 1}: invalid JSON: {error}"
            ) from error
        if not isinstance(record, dict):
            raise CheckpointError(
                f"{path}:{lineno + 1}: checkpoint records must be "
                f"objects"
            )
        kind = record.get("type")
        if kind == "cell":
            try:
                digest = record["digest"]
                payload = record["payload"]
            except KeyError as error:
                raise CheckpointError(
                    f"{path}:{lineno + 1}: cell record missing "
                    f"{error}"
                ) from None
            state.results[digest] = (
                _decode_payload(payload),
                float(record.get("wall_s", 0.0)),
                str(record.get("cache_key", "")),
            )
        elif kind == "encoding":
            summary = _decode_payload(record["payload"])
            state.encodings[
                (record["workload"], record["format"])
            ] = summary
        # header handled above; unknown types skipped for forward
        # compatibility
    return state
