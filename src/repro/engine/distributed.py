"""Distributed sweep backend: a file-based work queue, no new deps.

``QueueExecutor`` dispatches sweep chunks through a directory any
number of worker processes can share — locally, or across machines via
a network filesystem.  Everything is plain files and atomic renames,
so the only requirement on the transport is POSIX rename semantics:

::

    queue/
      queue.json    schema + pickled ExecutionSettings (workers read it)
      tasks/        unclaimed task files: a<attempt>-s<shard>-<digest>.task
      claimed/      claimed tasks (atomically renamed out of tasks/)
                    + <digest>.owner sidecars naming the claiming worker
      leases/       <worker>.lease heartbeat files (touched per cell)
      results/      <worker>.jsonl per-worker shard checkpoints
      done/         <digest>.done completion markers carrying the
                    pickled chunk output
      blobs/        content-addressed matrix blobs (StoredWorkload)
      workers/      <worker>.json registrations
      STOP          coordinator's shutdown signal to idle workers

**Claiming** is one atomic ``os.rename`` from ``tasks/`` to
``claimed/`` — exactly one worker wins, losers move on.  Tasks are
**digest-sharded**: each task's shard is derived from its chunk
digest, each worker has a home shard derived from its id, and workers
prefer home-shard tasks before *stealing* from other shards — claim
contention stays low while no worker ever idles beside a non-empty
queue.

**Fault tolerance** reuses the pool backend's recovery ladder with the
lease as the crash detector: a worker heartbeats its lease file after
every cell, so a task whose owner's lease goes stale is *reclaimed* —
re-enqueued with the attempt count bumped, then bisected once retries
are exhausted, then (single cell) recorded as a
:class:`~repro.engine.grid.FailedCell`.  A premature reclaim (slow
worker, not dead) is harmless: cells are deterministic, duplicate
executions produce identical records, and every merge deduplicates by
cell digest.

**Checkpointing is hierarchical**: each worker appends finished cells
to its own JSONL shard in ``results/`` (same format as ordinary sweep
checkpoints, cell-granular durability), and the coordinator merges
the shards into the canonical checkpoint in ascending grid order —
the order a ``max_workers=1`` sequential run writes — so
:func:`~repro.engine.checkpoint.checkpoint_digest` comparison against
a sequential checkpoint is the correctness gate.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
import zlib
from dataclasses import dataclass, replace
from pathlib import Path

from .. import io_atomic
from ..errors import QueueError, SweepCellError
from ..workloads.registry import Workload
from .cache import CacheStats, ContentKeyedCache, matrix_content_key
from .chaos import install_plan
from .checkpoint import CheckpointWriter, cell_digest, load_checkpoint
from .executors import (
    CheckpointSink,
    ExecutionSettings,
    SweepExecutor,
    _Chunk,
    _ChunkOutput,
    _run_chunk,
)
from .grid import FailedCell, SweepCell
from .telemetry import workload_recipe_digest

__all__ = [
    "QUEUE_KIND",
    "QUEUE_SCHEMA",
    "QueueOptions",
    "QueueLayout",
    "StoredWorkload",
    "QueueExecutor",
    "run_worker",
]

QUEUE_KIND = "copernicus-work-queue"
QUEUE_SCHEMA = 1


def _encode_blob(obj) -> bytes:
    return zlib.compress(pickle.dumps(obj, protocol=4))


def _decode_blob(data: bytes):
    return pickle.loads(zlib.decompress(data))


def _encode_field(obj) -> str:
    return base64.b64encode(_encode_blob(obj)).decode("ascii")


def _decode_field(text: str):
    return _decode_blob(base64.b64decode(text))


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    io_atomic.atomic_write_bytes(path, data)


def _atomic_write_text(path: Path, text: str) -> None:
    io_atomic.atomic_write_text(path, text)


# ----------------------------------------------------------------------
# Content-addressed matrix shipping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoredWorkload:
    """A materialized workload parked in the queue's blob store.

    Tasks carrying a big generated matrix would otherwise re-pickle it
    into every task file, again on every retry and twice more per
    bisection.  Instead the coordinator writes the pickled
    :class:`Workload` **once** into ``blobs/<content_key>.blob`` and
    ships this ~200-byte reference; workers rehydrate through their
    content-keyed cache, so a chunk's cells (and successive chunks on
    one worker) load the blob a single time.

    ``recipe_digest`` is the matrix content key — the exact digest a
    sequential run derives from the materialized matrix — so cell
    digests, checkpoints and claims are identical across backends.
    """

    name: str
    group: str
    parameter: float
    content_key: str
    store_dir: str

    @property
    def recipe_digest(self) -> str:
        return self.content_key

    @property
    def cache_key(self) -> tuple:
        return ("matrix", "stored", self.content_key)

    def build(self) -> Workload:
        path = Path(self.store_dir) / f"{self.content_key}.blob"
        io_atomic.fire("blob.read", path)
        try:
            data = path.read_bytes()
        except OSError as error:
            raise QueueError(
                f"workload blob {path} vanished from the queue's "
                f"blob store: {error}"
            ) from error
        matrix = _decode_blob(data)
        if matrix_content_key(matrix) != self.content_key:
            raise QueueError(
                f"workload blob {path} does not match its content "
                f"key (corrupt blob store?)"
            )
        return Workload(
            name=self.name,
            group=self.group,
            matrix=matrix,
            parameter=self.parameter,
        )


# ----------------------------------------------------------------------
# Queue directory layout
# ----------------------------------------------------------------------
class QueueLayout:
    """Paths and primitive operations of one queue directory."""

    SUBDIRS = (
        "tasks",
        "claimed",
        "leases",
        "results",
        "done",
        "blobs",
        "workers",
    )

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.tasks = self.root / "tasks"
        self.claimed = self.root / "claimed"
        self.leases = self.root / "leases"
        self.results = self.root / "results"
        self.done = self.root / "done"
        self.blobs = self.root / "blobs"
        self.workers = self.root / "workers"
        self.meta = self.root / "queue.json"
        self.stop = self.root / "STOP"

    def create(self, settings: ExecutionSettings, n_shards: int) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        for name in self.SUBDIRS:
            (self.root / name).mkdir(exist_ok=True)
        if self.stop.exists():
            self.stop.unlink()
        _atomic_write_text(
            self.meta,
            json.dumps(
                {
                    "kind": QUEUE_KIND,
                    "schema": QUEUE_SCHEMA,
                    "n_shards": n_shards,
                    "settings": _encode_field(settings),
                    "summary": {
                        "encode": settings.encode,
                        "telemetry": settings.telemetry,
                        "error_policy": settings.error_policy,
                        "max_retries": settings.max_retries,
                    },
                },
                sort_keys=True,
                indent=2,
            )
            + "\n",
        )

    def load_meta(self) -> tuple[ExecutionSettings, int]:
        """Validate the directory is a compatible queue; load settings."""
        if not self.meta.exists():
            raise QueueError(
                f"{self.root} is not a work queue (no queue.json); "
                f"point --queue at a directory created by "
                f"'repro sweep --backend queue'"
            )
        try:
            meta = json.loads(self.meta.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise QueueError(
                f"unreadable queue metadata {self.meta}: {error}"
            ) from error
        if meta.get("kind") != QUEUE_KIND:
            raise QueueError(
                f"{self.root}: not a work queue "
                f"(kind={meta.get('kind')!r})"
            )
        if meta.get("schema") != QUEUE_SCHEMA:
            raise QueueError(
                f"{self.root}: unsupported queue schema "
                f"{meta.get('schema')!r} (expected {QUEUE_SCHEMA})"
            )
        try:
            settings = _decode_field(meta["settings"])
        except Exception as error:  # noqa: BLE001 — corrupt metadata
            raise QueueError(
                f"{self.root}: undecodable queue settings: "
                f"{type(error).__name__}: {error}"
            ) from error
        return settings, int(meta.get("n_shards", 16))

    # ------------------------------------------------------------------
    def store_blob(self, matrix) -> str:
        key = matrix_content_key(matrix)
        path = self.blobs / f"{key}.blob"
        if not path.exists():
            _atomic_write_bytes(path, _encode_blob(matrix))
        return key

    def task_name(self, attempt: int, shard: int, digest: str) -> str:
        return f"a{attempt:02d}-s{shard:02d}-{digest}.task"

    def write_task(
        self,
        chunk_digest: str,
        shard: int,
        attempt: int,
        chunk: _Chunk,
        digests: list[str],
    ) -> None:
        """Publish one task file (atomically, so claims never see a
        partial write)."""
        record = {
            "digest": chunk_digest,
            "shard": shard,
            "attempt": attempt,
            "n_cells": len(chunk),
            "workloads": sorted({c.workload_name for _, c in chunk}),
            "chunk": _encode_field((chunk, digests)),
        }
        name = self.task_name(attempt, shard, chunk_digest)
        _atomic_write_text(
            self.tasks / name, json.dumps(record, sort_keys=True)
        )

    def claim(self, name: str, worker_id: str) -> "Path | None":
        """Atomically claim one task file; None if somebody else won."""
        source = self.tasks / name
        target = self.claimed / name
        try:
            os.rename(source, target)
        except OSError:
            return None
        _atomic_write_text(
            self.claimed / (name[: -len(".task")] + ".owner"),
            worker_id,
        )
        return target

    def read_task(self, path: Path) -> tuple[dict, _Chunk, list[str]]:
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            chunk, digests = _decode_field(record["chunk"])
        except Exception as error:  # noqa: BLE001 — corrupt task file
            raise QueueError(
                f"corrupt task file {path}: "
                f"{type(error).__name__}: {error}"
            ) from error
        return record, chunk, digests

    def heartbeat(self, worker_id: str) -> None:
        lease = self.leases / f"{worker_id}.lease"
        try:
            io_atomic.fire("queue.heartbeat", lease)
        except io_atomic.HookSuppressed:
            return  # chaos: the worker is alive but looks dead
        lease.touch()

    def lease_age(self, worker_id: str, now: float) -> "float | None":
        lease = self.leases / f"{worker_id}.lease"
        try:
            return now - lease.stat().st_mtime
        except OSError:
            return None

    def write_done(self, chunk_digest: str, marker: dict) -> None:
        _atomic_write_text(
            self.done / f"{chunk_digest}.done",
            json.dumps(marker, sort_keys=True),
        )

    def shard_of(self, digest: str, n_shards: int) -> int:
        return int(digest[:8], 16) % n_shards

    def home_shard(self, worker_id: str, n_shards: int) -> int:
        digest = hashlib.blake2b(
            worker_id.encode("utf-8"), digest_size=8
        ).hexdigest()
        return int(digest[:8], 16) % n_shards


def _chunk_digest(digests: list[str]) -> str:
    """Identity of one task: the digests of the cells it carries."""
    payload = repr(tuple(digests))
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=16
    ).hexdigest()


def _parse_task_name(name: str) -> tuple[int, int, str]:
    """``a<attempt>-s<shard>-<digest>.task`` -> (attempt, shard, digest)."""
    stem = name[: -len(".task")]
    try:
        attempt_part, shard_part, digest = stem.split("-", 2)
        return int(attempt_part[1:]), int(shard_part[1:]), digest
    except (ValueError, IndexError) as error:
        raise QueueError(f"malformed task name {name!r}") from error


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def run_worker(
    queue_dir: str | Path,
    worker_id: str | None = None,
    poll_interval_s: float = 0.05,
    max_chunks: int | None = None,
    oneshot: bool = False,
) -> dict:
    """Claim-and-execute loop of one queue worker (``repro worker``).

    Runs until the coordinator's ``STOP`` marker appears (or
    ``oneshot`` / ``max_chunks`` bounds the run), keeping one
    content-keyed cache across every chunk it executes so a stolen
    chunk still reuses blobs, profiles and encodings already loaded.
    Every finished cell is appended to this worker's own shard
    checkpoint ``results/<worker>.jsonl`` and heartbeats the worker's
    lease; a chunk's completion is announced with a ``done`` marker
    carrying the full pickled chunk output.  Returns worker stats.
    """
    layout = QueueLayout(queue_dir)
    settings, n_shards = layout.load_meta()
    if getattr(settings, "chaos", None) is not None:
        # the chaos plan rides in queue.json so every worker — spawned
        # or external — injects the same faults, with worker semantics
        # (fatal faults really kill the process)
        install_plan(settings.chaos, role="worker")
    if worker_id is None:
        worker_id = f"w-{os.uname().nodename}-{os.getpid()}"
    if poll_interval_s <= 0:
        raise QueueError(
            f"poll_interval_s must be > 0, got {poll_interval_s}"
        )
    home = layout.home_shard(worker_id, n_shards)
    _atomic_write_text(
        layout.workers / f"{worker_id}.json",
        json.dumps(
            {
                "worker": worker_id,
                "pid": os.getpid(),
                "home_shard": home,
            },
            sort_keys=True,
        ),
    )
    layout.heartbeat(worker_id)

    shard_path = layout.results / f"{worker_id}.jsonl"
    cache = ContentKeyedCache()
    n_chunks = 0
    n_cells = 0
    n_stolen = 0
    writer = CheckpointWriter(shard_path)
    try:
        while True:
            if max_chunks is not None and n_chunks >= max_chunks:
                break
            claimed = _claim_next(layout, worker_id, home, n_shards)
            if claimed is None:
                if layout.stop.exists() or oneshot:
                    break
                layout.heartbeat(worker_id)
                time.sleep(poll_interval_s)
                continue
            task_path, record, chunk, digests = claimed
            stolen = int(record["shard"]) != home
            n_stolen += stolen
            layout.heartbeat(worker_id)
            output = _execute_task(
                layout,
                settings,
                cache,
                writer,
                worker_id,
                record,
                chunk,
                digests,
            )
            n_chunks += 1
            n_cells += len(chunk)
            marker = {
                "digest": record["digest"],
                "worker": worker_id,
                "attempt": record["attempt"],
                "stolen": stolen,
                "payload": _encode_field(output),
            }
            if isinstance(output, SweepCellError):
                marker["fatal"] = True
            layout.write_done(record["digest"], marker)
            _discard_claim(layout, task_path)
            if isinstance(output, SweepCellError):
                break
    finally:
        writer.close()
    return {
        "worker": worker_id,
        "home_shard": home,
        "n_chunks": n_chunks,
        "n_cells": n_cells,
        "n_stolen": n_stolen,
        "shard": str(shard_path),
    }


def _claim_next(
    layout: QueueLayout, worker_id: str, home: int, n_shards: int
):
    """Claim the preferred available task: home shard first, then
    steal from the nearest shard (deterministic ring order)."""
    try:
        names = sorted(
            entry.name
            for entry in layout.tasks.iterdir()
            if entry.name.endswith(".task")
        )
    except OSError:
        return None
    if not names:
        return None

    def preference(name: str) -> tuple:
        attempt, shard, digest = _parse_task_name(name)
        return ((shard - home) % n_shards, attempt, digest)

    for name in sorted(names, key=preference):
        target = layout.claim(name, worker_id)
        if target is None:
            continue  # another worker won the rename
        record, chunk, digests = layout.read_task(target)
        return target, record, chunk, digests
    return None


def _execute_task(
    layout: QueueLayout,
    settings: ExecutionSettings,
    cache: ContentKeyedCache,
    writer: CheckpointWriter,
    worker_id: str,
    record: dict,
    chunk: _Chunk,
    digests: list[str],
):
    """Run one claimed chunk; returns its output (or the fatal error).

    The worker's cache persists across chunks, so per-chunk cache
    stats are reported as a *delta*: the stats object is swapped out
    before the chunk runs while the memo store stays warm.
    """
    digest_by_index = {
        index: digest
        for (index, _cell), digest in zip(chunk, digests)
    }

    def on_cell(index, cell, result, wall_s, matrix_key):
        writer.record_result(
            digest_by_index[index],
            cell,
            result,
            wall_s=wall_s,
            cache_key=matrix_key,
        )
        layout.heartbeat(worker_id)

    cache.stats = CacheStats()  # per-chunk delta; memo store persists
    try:
        output = _run_chunk(
            chunk,
            settings.encode,
            cache,
            telemetry=settings.telemetry,
            error_policy=settings.error_policy,
            faults=settings.faults,
            attempt=int(record["attempt"]),
            in_worker=True,
            on_cell=on_cell,
        )
    except SweepCellError as error:
        return error
    _results, encodings, _stats, _spans, _metrics, failures = output
    for summary in encodings.values():
        writer.record_encoding(summary)
    for failure in failures:
        writer.record_failure(digest_by_index[failure.index], failure)
    return output


def _discard_claim(layout: QueueLayout, task_path: Path) -> None:
    for path in (
        task_path,
        task_path.with_name(
            task_path.name[: -len(".task")] + ".owner"
        ),
    ):
        try:
            path.unlink()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueueOptions:
    """Knobs of the queue backend's coordinator.

    ``queue_dir=None`` uses a private temporary directory, removed
    after the run unless ``keep_queue``.  ``spawn_workers=None``
    spawns ``max_workers`` local worker processes; ``0`` spawns none
    and waits for external ``repro worker --queue DIR`` processes
    (possibly on other machines sharing the directory).
    """

    queue_dir: "str | None" = None
    spawn_workers: "int | None" = None
    lease_timeout_s: float = 10.0
    poll_interval_s: float = 0.05
    n_shards: int = 16
    keep_queue: bool = False
    speculate_factor: "float | None" = None
    speculate_min_samples: int = 5
    speculate_floor_s: float = 1.0

    def __post_init__(self) -> None:
        if (
            self.speculate_factor is not None
            and self.speculate_factor < 1.0
        ):
            raise QueueError(
                f"speculate_factor must be >= 1, got "
                f"{self.speculate_factor}"
            )
        if self.speculate_min_samples < 1:
            raise QueueError(
                f"speculate_min_samples must be >= 1, got "
                f"{self.speculate_min_samples}"
            )
        if self.speculate_floor_s < 0:
            raise QueueError(
                f"speculate_floor_s must be >= 0, got "
                f"{self.speculate_floor_s}"
            )
        if self.lease_timeout_s <= 0:
            raise QueueError(
                f"lease_timeout_s must be > 0, got "
                f"{self.lease_timeout_s}"
            )
        if self.poll_interval_s <= 0:
            raise QueueError(
                f"poll_interval_s must be > 0, got "
                f"{self.poll_interval_s}"
            )
        if self.n_shards < 1:
            raise QueueError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if self.spawn_workers is not None and self.spawn_workers < 0:
            raise QueueError(
                f"spawn_workers must be >= 0, got "
                f"{self.spawn_workers}"
            )


class _Outstanding:
    """One not-yet-done task the coordinator is tracking."""

    def __init__(
        self, chunk: _Chunk, digests: list[str], attempt: int
    ) -> None:
        self.chunk = chunk
        self.digests = digests
        self.attempt = attempt
        self.first_seen_claimed: "float | None" = None
        self.published_at: float = time.time()
        self.speculated: bool = False


class QueueExecutor(SweepExecutor):
    """The coordinator side of the work-queue backend.

    Publishes every chunk as a digest-sharded task file, optionally
    spawns local worker processes, then supervises: collecting done
    markers, reclaiming tasks whose worker lease went stale (bumping
    the attempt, bisecting past the retry budget — the pool backend's
    ladder, with the lease as the crash detector), respawning dead
    spawned workers within a bounded budget, and degrading to
    in-process execution if workers keep dying.  Finally the
    per-worker shard checkpoints are merged into the canonical
    checkpoint in grid order.
    """

    def __init__(
        self,
        settings: ExecutionSettings,
        options: "QueueOptions | None" = None,
    ) -> None:
        super().__init__(settings)
        self.options = options or QueueOptions()
        self._durations: list[float] = []

    # -- helpers -------------------------------------------------------
    def _spawn_target(self) -> int:
        if self.options.spawn_workers is not None:
            return self.options.spawn_workers
        return self.settings.max_workers

    def _respawn_budget(self, chunks: list[_Chunk]) -> int:
        biggest = max(len(chunk) for chunk in chunks)
        depth = max(1, biggest.bit_length())
        return self._spawn_target() + (
            self.settings.max_retries + 1
        ) * (depth + 1)

    def _spawn_worker(
        self, layout: QueueLayout, ordinal: int
    ) -> subprocess.Popen:
        log_path = layout.root / f"worker-{ordinal:02d}.log"
        log = log_path.open("ab")
        try:
            process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    "--queue",
                    str(layout.root),
                    "--worker-id",
                    f"w{ordinal:02d}-{os.getpid()}",
                    "--poll-interval",
                    str(self.options.poll_interval_s),
                ],
                stdout=log,
                stderr=subprocess.STDOUT,
                env={
                    **os.environ,
                    "PYTHONPATH": os.pathsep.join(
                        [str(Path(__file__).resolve().parents[2])]
                        + (
                            [os.environ["PYTHONPATH"]]
                            if os.environ.get("PYTHONPATH")
                            else []
                        )
                    ),
                },
            )
        finally:
            log.close()
        return process

    # -- main loop -----------------------------------------------------
    def run_chunks(
        self,
        chunks: list[_Chunk],
        sink: "CheckpointSink | None" = None,
    ) -> tuple[list[_ChunkOutput], list[FailedCell], dict[str, int]]:
        if not chunks:
            return [], [], {}
        options = self.options
        own_dir = options.queue_dir is None
        root = (
            Path(tempfile.mkdtemp(prefix="copernicus-queue-"))
            if own_dir
            else Path(options.queue_dir)
        )
        layout = QueueLayout(root)
        layout.create(self.settings, options.n_shards)

        outstanding: dict[str, _Outstanding] = {}
        cells_by_digest: dict[str, tuple[int, SweepCell]] = {}
        for chunk in chunks:
            shipped, digests = self._prepare_chunk(layout, chunk)
            for (index, cell), digest in zip(shipped, digests):
                cells_by_digest[digest] = (index, cell)
            digest = _chunk_digest(digests)
            layout.write_task(
                digest,
                layout.shard_of(digest, options.n_shards),
                0,
                shipped,
                digests,
            )
            outstanding[digest] = _Outstanding(shipped, digests, 0)

        counters: dict[str, int] = {
            "sweep.queue.tasks": len(outstanding)
        }
        outputs_by_digest: dict[str, _ChunkOutput] = {}
        done_order: list[str] = []
        crash_failures: list[FailedCell] = []
        fatal: "SweepCellError | None" = None

        processes: list[subprocess.Popen] = []
        target = self._spawn_target()
        respawns_left = self._respawn_budget(chunks) if chunks else 0
        next_ordinal = 0
        degraded = False
        try:
            for _ in range(min(target, max(1, len(chunks)))):
                processes.append(
                    self._spawn_worker(layout, next_ordinal)
                )
                next_ordinal += 1
            if processes:
                counters["sweep.queue.workers_spawned"] = len(processes)

            while outstanding and fatal is None:
                progressed = self._collect_done(
                    layout,
                    outstanding,
                    outputs_by_digest,
                    done_order,
                    counters,
                )
                if progressed and isinstance(progressed, SweepCellError):
                    fatal = progressed
                    break
                if not outstanding:
                    break
                self._reclaim_stale(
                    layout, outstanding, counters, crash_failures
                )
                if options.speculate_factor is not None:
                    self._speculate(layout, outstanding, counters)
                if degraded:
                    self._run_degraded(layout, counters)
                elif target > 0:
                    # replace dead spawned workers within the budget;
                    # past it, stop trusting worker processes entirely
                    alive = []
                    died = 0
                    for process in processes:
                        if process.poll() is None:
                            alive.append(process)
                        else:
                            died += 1
                    processes = alive
                    while (
                        died > 0
                        and outstanding
                        and respawns_left > 0
                    ):
                        processes.append(
                            self._spawn_worker(layout, next_ordinal)
                        )
                        next_ordinal += 1
                        died -= 1
                        respawns_left -= 1
                        counters["sweep.queue.respawns"] = (
                            counters.get("sweep.queue.respawns", 0) + 1
                        )
                    if not processes and outstanding:
                        degraded = True
                        counters["sweep.degraded"] = 1
                if outstanding:
                    time.sleep(options.poll_interval_s)
        finally:
            layout.stop.touch()
            self._shutdown_workers(processes)

        if fatal is not None:
            if not options.keep_queue and own_dir:
                shutil.rmtree(root, ignore_errors=True)
            raise fatal

        outputs = [
            outputs_by_digest[digest] for digest in done_order
        ]
        outputs, crash_failures = self._dedupe(
            outputs, crash_failures
        )
        if sink is not None:
            self._merge_shards(
                layout, sink, cells_by_digest, crash_failures
            )
        if not options.keep_queue and own_dir:
            shutil.rmtree(root, ignore_errors=True)
        return outputs, crash_failures, counters

    # -- pieces of the loop --------------------------------------------
    def _prepare_chunk(
        self, layout: QueueLayout, chunk: _Chunk
    ) -> tuple[_Chunk, list[str]]:
        """Digest cells, then swap materialized matrices for blob refs.

        Digests are computed from the *original* cells so they are
        identical to what a sequential run derives; the shipped cells
        reference the blob store instead of carrying matrices.
        """
        digests = [cell_digest(cell) for _index, cell in chunk]
        shipped: _Chunk = []
        for index, cell in chunk:
            workload = cell.workload
            if isinstance(workload, Workload):
                key = layout.store_blob(workload.matrix)
                cell = replace(
                    cell,
                    workload=StoredWorkload(
                        name=workload.name,
                        group=workload.group,
                        parameter=workload.parameter,
                        content_key=key,
                        store_dir=str(layout.blobs),
                    ),
                )
            shipped.append((index, cell))
        return shipped, digests

    def _collect_done(
        self,
        layout: QueueLayout,
        outstanding: dict[str, _Outstanding],
        outputs_by_digest: dict[str, _ChunkOutput],
        done_order: list[str],
        counters: dict[str, int],
    ):
        """Absorb new done markers; returns a fatal error if one is."""
        try:
            names = sorted(
                entry.name
                for entry in layout.done.iterdir()
                if entry.name.endswith(".done")
            )
        except OSError:
            return None
        for name in names:
            digest = name[: -len(".done")]
            if digest not in outstanding:
                continue
            try:
                marker = json.loads(
                    (layout.done / name).read_text(encoding="utf-8")
                )
                payload = _decode_field(marker["payload"])
            except Exception:  # noqa: BLE001 — half-written marker
                continue  # picked up on the next poll
            task = outstanding.pop(digest)
            self._durations.append(time.time() - task.published_at)
            self._remove_task_files(layout, digest, task)
            if marker.get("stolen"):
                counters["sweep.queue.steals"] = (
                    counters.get("sweep.queue.steals", 0) + 1
                )
            if isinstance(payload, SweepCellError):
                return payload
            outputs_by_digest[digest] = payload
            done_order.append(digest)
        return None

    def _remove_task_files(
        self, layout: QueueLayout, digest: str, task: _Outstanding
    ) -> None:
        """Drop every queued/claimed copy of a finished task.

        A task can have copies at several attempt numbers when a
        premature reclaim re-enqueued it while the original worker was
        still (slowly) executing; once one copy is done the rest are
        garbage.
        """
        for directory in (layout.tasks, layout.claimed):
            try:
                names = list(directory.iterdir())
            except OSError:
                continue
            for path in names:
                if digest in path.name:
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def _reclaim_stale(
        self,
        layout: QueueLayout,
        outstanding: dict[str, _Outstanding],
        counters: dict[str, int],
        crash_failures: list[FailedCell],
    ) -> None:
        """Re-enqueue claimed tasks whose worker stopped heartbeating."""
        now = time.time()
        timeout = self.options.lease_timeout_s
        try:
            names = sorted(
                entry.name
                for entry in layout.claimed.iterdir()
                if entry.name.endswith(".task")
            )
        except OSError:
            return
        for name in names:
            attempt, _shard, digest = _parse_task_name(name)
            task = outstanding.get(digest)
            if task is None:
                continue
            if task.first_seen_claimed is None:
                task.first_seen_claimed = now
                continue
            if now - task.first_seen_claimed < timeout:
                continue
            owner_path = layout.claimed / (
                name[: -len(".task")] + ".owner"
            )
            try:
                owner = owner_path.read_text(
                    encoding="utf-8"
                ).strip()
            except OSError:
                owner = ""
            age = (
                layout.lease_age(owner, now)
                if owner
                else now - task.first_seen_claimed
            )
            if age is not None and age < timeout:
                continue
            # the worker is gone (or wedged): reclaim
            claimed_path = layout.claimed / name
            _discard_claim(layout, claimed_path)
            task.first_seen_claimed = None
            counters["sweep.queue.reclaims"] = (
                counters.get("sweep.queue.reclaims", 0) + 1
            )
            self._requeue(
                layout,
                outstanding,
                digest,
                attempt,
                counters,
                crash_failures,
            )

    def _speculate(
        self,
        layout: QueueLayout,
        outstanding: dict[str, _Outstanding],
        counters: dict[str, int],
    ) -> None:
        """Straggler mitigation: duplicate tasks stuck past the envelope.

        Once enough tasks have completed to estimate a latency
        envelope, a claimed task whose owner has held it longer than
        ``speculate_factor`` times the p95 completion latency (never
        less than ``speculate_floor_s``) gets a duplicate published
        back to ``tasks/`` for another worker to race — **without**
        revoking the original claim, unlike a lease reclaim.  Cells
        are deterministic and every merge deduplicates by cell
        digest, so whichever copy finishes first wins and the loser's
        records are dropped.  At most one speculative copy per task.
        """
        if len(self._durations) < self.options.speculate_min_samples:
            return
        ordered = sorted(self._durations)
        p95 = ordered[int(0.95 * (len(ordered) - 1))]
        threshold = max(
            self.options.speculate_floor_s,
            self.options.speculate_factor * p95,
        )
        now = time.time()
        for digest, task in outstanding.items():
            if task.speculated or task.first_seen_claimed is None:
                continue
            if now - task.first_seen_claimed < threshold:
                continue
            task.speculated = True
            layout.write_task(
                digest,
                layout.shard_of(digest, self.options.n_shards),
                task.attempt,
                task.chunk,
                task.digests,
            )
            counters["sweep.queue.speculations"] = (
                counters.get("sweep.queue.speculations", 0) + 1
            )

    def _requeue(
        self,
        layout: QueueLayout,
        outstanding: dict[str, _Outstanding],
        digest: str,
        attempt: int,
        counters: dict[str, int],
        crash_failures: list[FailedCell],
    ) -> None:
        """The recovery ladder for one reclaimed task."""
        task = outstanding[digest]
        next_attempt = attempt + 1
        n_shards = self.options.n_shards
        if next_attempt <= self.settings.max_retries:
            counters["sweep.chunk_retries"] = (
                counters.get("sweep.chunk_retries", 0) + 1
            )
            layout.write_task(
                digest,
                layout.shard_of(digest, n_shards),
                next_attempt,
                task.chunk,
                task.digests,
            )
            task.attempt = next_attempt
            return
        if len(task.chunk) > 1:
            counters["sweep.chunk_bisections"] = (
                counters.get("sweep.chunk_bisections", 0) + 1
            )
            outstanding.pop(digest)
            mid = len(task.chunk) // 2
            for half_chunk, half_digests in (
                (task.chunk[:mid], task.digests[:mid]),
                (task.chunk[mid:], task.digests[mid:]),
            ):
                half_id = _chunk_digest(half_digests)
                layout.write_task(
                    half_id,
                    layout.shard_of(half_id, n_shards),
                    0,
                    half_chunk,
                    half_digests,
                )
                outstanding[half_id] = _Outstanding(
                    half_chunk, half_digests, 0
                )
            return
        outstanding.pop(digest)
        index, cell = task.chunk[0]
        recipe = workload_recipe_digest(cell.workload)
        message = (
            f"queue worker lease expired "
            f"{next_attempt} time(s) on this cell"
        )
        if self.settings.error_policy == "fail_fast":
            raise SweepCellError(
                cell.coords,
                f"WorkerCrashError: {message}",
                recipe_digest=recipe,
                attempts=next_attempt,
            )
        crash_failures.append(
            FailedCell(
                index=index,
                workload=cell.workload_name,
                format_name=cell.format_name,
                partition_size=cell.partition_size,
                recipe_digest=recipe,
                error_type="WorkerCrashError",
                message=message,
                attempts=next_attempt,
            )
        )

    def _run_degraded(
        self, layout: QueueLayout, counters: dict[str, int]
    ) -> None:
        """No trustworthy workers left: the coordinator claims and
        executes remaining tasks itself, in-process."""
        worker_id = f"coordinator-{os.getpid()}"
        home = layout.home_shard(worker_id, self.options.n_shards)
        cache = ContentKeyedCache()
        shard_path = layout.results / f"{worker_id}.jsonl"
        with CheckpointWriter(shard_path) as writer:
            while True:
                claimed = _claim_next(
                    layout, worker_id, home, self.options.n_shards
                )
                if claimed is None:
                    return
                task_path, record, chunk, digests = claimed
                digest_by_index = {
                    index: digest
                    for (index, _c), digest in zip(chunk, digests)
                }

                def on_cell(index, cell, result, wall_s, matrix_key):
                    writer.record_result(
                        digest_by_index[index],
                        cell,
                        result,
                        wall_s=wall_s,
                        cache_key=matrix_key,
                    )

                cache.stats = CacheStats()
                try:
                    output = _run_chunk(
                        chunk,
                        self.settings.encode,
                        cache,
                        telemetry=self.settings.telemetry,
                        error_policy=self.settings.error_policy,
                        faults=self.settings.faults,
                        attempt=int(record["attempt"]),
                        in_worker=False,
                        on_cell=on_cell,
                    )
                except SweepCellError:
                    _discard_claim(layout, task_path)
                    raise
                _res, encodings, _st, _sp, _me, failures = output
                for summary in encodings.values():
                    writer.record_encoding(summary)
                for failure in failures:
                    writer.record_failure(
                        digest_by_index[failure.index], failure
                    )
                layout.write_done(
                    record["digest"],
                    {
                        "digest": record["digest"],
                        "worker": worker_id,
                        "attempt": record["attempt"],
                        "stolen": False,
                        "payload": _encode_field(output),
                    },
                )
                _discard_claim(layout, task_path)

    def _shutdown_workers(
        self, processes: list[subprocess.Popen]
    ) -> None:
        deadline = time.time() + 5.0
        for process in processes:
            try:
                process.wait(timeout=max(0.1, deadline - time.time()))
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()

    def _dedupe(
        self,
        outputs: list[_ChunkOutput],
        crash_failures: list[FailedCell],
    ) -> tuple[list[_ChunkOutput], list[FailedCell]]:
        """Drop duplicate records left by premature lease reclaims.

        Duplicate executions are *identical* (cells are deterministic)
        so any copy can win; a failure is dropped whenever some
        execution of the same cell produced a result.
        """
        succeeded = {
            index
            for output in outputs
            for index, _result in output[0]
        }
        failures_by_index: dict[int, FailedCell] = {}
        cleaned_outputs: list[_ChunkOutput] = []
        seen_results: set = set()
        for output in outputs:
            results, encodings, stats, spans, metrics, failures = output
            kept = [
                (index, result)
                for index, result in results
                if index not in seen_results
            ]
            kept_indices = {index for index, _ in kept}
            seen_results.update(kept_indices)
            kept_spans = (
                [s for s in spans if s.index in kept_indices]
                if spans is not None
                else None
            )
            for failure in failures:
                if failure.index in succeeded:
                    continue
                previous = failures_by_index.get(failure.index)
                if (
                    previous is None
                    or failure.attempts >= previous.attempts
                ):
                    failures_by_index[failure.index] = failure
            cleaned_outputs.append(
                (kept, encodings, stats, kept_spans, metrics, [])
            )
        for failure in crash_failures:
            if failure.index in succeeded:
                continue
            failures_by_index[failure.index] = failure
        ordered = [
            failures_by_index[index]
            for index in sorted(failures_by_index)
        ]
        # in-cell failures ride on the last output so the runner's
        # ordinary merge keeps working; crash failures return separately
        cell_failures = [
            f for f in ordered if f.error_type != "WorkerCrashError"
        ]
        lost_failures = [
            f for f in ordered if f.error_type == "WorkerCrashError"
        ]
        if cell_failures:
            if cleaned_outputs:
                last = cleaned_outputs[-1]
                cleaned_outputs[-1] = (
                    last[0],
                    last[1],
                    last[2],
                    last[3],
                    last[4],
                    cell_failures,
                )
            else:
                lost_failures = ordered
        return cleaned_outputs, lost_failures

    def _merge_shards(
        self,
        layout: QueueLayout,
        sink: CheckpointSink,
        cells_by_digest: dict[str, tuple[int, SweepCell]],
        crash_failures: list[FailedCell],
    ) -> None:
        """Hierarchical checkpoint merge: worker shards -> canonical.

        Each shard already deduplicates to the latest record per cell
        digest on load; merging the shards and writing the surviving
        records in **ascending grid order** — the exact record order a
        sequential run produces — makes ``checkpoint_digest`` equality
        against a ``max_workers=1`` checkpoint the distributed
        correctness gate.  Failures superseded by another worker's
        success (a reclaimed task whose cells a second worker finished)
        are dropped here, mirroring the loader's semantics.
        """
        io_atomic.fire("queue.merge", layout.root)
        merged: dict = {}
        merged_encodings: dict = {}
        merged_failures: dict = {}
        try:
            shard_paths = sorted(layout.results.glob("*.jsonl"))
        except OSError:
            shard_paths = []
        for shard_path in shard_paths:
            state = load_checkpoint(shard_path)
            merged.update(state.results)
            merged_encodings.update(state.encodings)
            for digest, failure in state.failures.items():
                merged_failures[digest] = failure
        ordered = sorted(
            (index, digest)
            for digest, (index, _cell) in cells_by_digest.items()
            if digest in merged
        )
        for index, digest in ordered:
            result, wall_s, cache_key = merged[digest]
            _index, cell = cells_by_digest[digest]
            sink.writer.record_result(
                digest,
                cell,
                result,
                wall_s=wall_s,
                cache_key=cache_key,
            )
        for key in sorted(merged_encodings):
            sink.record_encoding(key, merged_encodings[key])
        for digest in sorted(merged_failures):
            if digest in merged or digest not in cells_by_digest:
                continue
            sink.writer.record_failure(digest, merged_failures[digest])
        for failure in crash_failures:
            if 0 <= failure.index < len(sink.digests):
                digest = sink.digests[failure.index]
                if digest not in merged:
                    sink.writer.record_failure(digest, failure)
