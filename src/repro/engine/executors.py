"""Pluggable sweep execution backends behind one executor interface.

The runner's job is *what* to run (grid expansion, chunking, resume
replay, outcome assembly); an executor's job is *where* and *how*
chunks execute.  Three backends implement the same contract:

:class:`InlineExecutor`
    Runs every chunk in-process against one shared
    :class:`~repro.engine.cache.ContentKeyedCache` — the maximal
    caching configuration and the bit-identical reference every other
    backend is gated against.
:class:`PoolExecutor`
    Dispatches chunks to a ``ProcessPoolExecutor`` with the full
    crash-recovery ladder (retries, bisection, one-chunk-per-pool
    isolation rounds, in-process degradation).
:class:`~repro.engine.distributed.QueueExecutor`
    Dispatches chunks through a file-based work queue that worker
    processes — on this machine or any machine sharing the directory —
    claim, execute and checkpoint into per-worker shards
    (``repro worker``).  Imported lazily so the engine package has no
    import-time dependency on the distributed module.

All backends return the same ``(outputs, failures, counters)`` triple
and share :func:`_run_chunk`, the single per-cell code path, so a
sweep's results are identical cell-for-cell no matter which backend
executed it.
"""

from __future__ import annotations

import time
import traceback
import zlib
from concurrent.futures import (
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..core.results import CharacterizationResult
from ..core.simulator import SpmvSimulator
from ..errors import SweepCellError, SweepConfigError
from ..formats.base import VALUE_BYTES
from ..formats.corrupt import CorruptionSpec, StreamCorruptor
from ..formats.integrity import safe_decode
from ..formats.registry import get_format
from ..observability import MetricsRegistry
from ..partition import profile_table
from ..workloads.registry import Workload
from .cache import CacheStats, ContentKeyedCache
from .faults import FaultPlan
from .grid import EncodeSummary, FailedCell, SweepCell
from .specs import StreamedMatrixSpec
from .telemetry import CellTelemetry, workload_recipe_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .checkpoint import CheckpointWriter

__all__ = [
    "EXECUTOR_BACKENDS",
    "ExecutionSettings",
    "CheckpointSink",
    "SweepExecutor",
    "InlineExecutor",
    "PoolExecutor",
    "make_executor",
]

#: Names accepted by ``SweepRunner(backend=...)`` / ``--backend``.
EXECUTOR_BACKENDS = ("auto", "inline", "pool", "queue")

#: One chunk: (cell index in the grid, cell) pairs sharing a workload.
_Chunk = list[tuple[int, SweepCell]]

#: One chunk's outputs: results, encodings, cache stats, telemetry,
#: and (under the "collect" policy) per-cell failure records.
_ChunkOutput = tuple[
    list[tuple[int, CharacterizationResult]],
    dict[tuple[str, str], EncodeSummary],
    CacheStats,
    "list[CellTelemetry] | None",
    "MetricsRegistry | None",
    list[FailedCell],
]


def _materialize(cell: SweepCell, cache: ContentKeyedCache) -> Workload:
    """The cell's workload, building lazy cells through the cache.

    Accepts anything carrying a ``cache_key`` / ``build()`` pair
    (:class:`~repro.engine.specs.WorkloadSpec`, the queue backend's
    :class:`~repro.engine.distributed.StoredWorkload`) besides plain
    materialized :class:`Workload` objects.  Streamed workloads never
    materialize; the paths that would need them to (encode, corrupt
    faults) reject them with a clear error instead of densifying an
    out-of-core matrix.
    """
    workload = cell.workload
    if isinstance(workload, StreamedMatrixSpec):
        raise SweepConfigError(
            f"workload {workload.name!r} streams out-of-core; "
            f"encode and corrupt-fault paths need a materialized "
            f"matrix (read it with read_matrix_market instead)"
        )
    if isinstance(workload, Workload):
        return workload
    return cache.get_or_create(workload.cache_key, workload.build)


def _corrupt_workload(
    workload: Workload, cell: SweepCell, corruption: CorruptionSpec
) -> Workload:
    """Run the cell's matrix through a seeded encode-damage-decode loop.

    The stream corruption a ``corrupt`` fault models happens on the
    *encoded* representation: the matrix is encoded in the cell's own
    format, one plane is damaged (seeded by the cell coordinates, so
    every retry and every worker sees identical damage), and the
    result is decoded back under the spec's decode mode.  Strict
    decoding raises :class:`~repro.errors.FormatIntegrityError` for
    detected damage — surfacing as an ordinary cell failure — while
    repair / lenient modes let a best-effort matrix continue into the
    characterization.
    """
    fmt = get_format(cell.format_name)
    encoded = fmt.encode(workload.matrix)
    corruptor = StreamCorruptor(
        seed=zlib.crc32(repr(cell.coords).encode("utf-8"))
    )
    damaged = corruptor.corrupt_encoding(
        encoded, corruption, key=cell.coords
    )
    matrix, _report = safe_decode(damaged, mode=corruption.decode_mode)
    return Workload(
        name=workload.name,
        group=workload.group,
        matrix=matrix,
        parameter=workload.parameter,
    )


def _run_cell(
    cell: SweepCell,
    cache: ContentKeyedCache,
    corruption: CorruptionSpec | None = None,
) -> tuple[CharacterizationResult, str]:
    """Characterize one cell; returns the result and its matrix key.

    Streamed cells profile their matrix tile-by-tile through
    :func:`~repro.io.streaming_profile_table` (keyed by the file's
    content digest) instead of materializing it; everything downstream
    of the :class:`~repro.partition.ProfileTable` is identical.
    """
    config = cell.resolved_config
    workload = cell.workload
    if isinstance(workload, StreamedMatrixSpec):
        if corruption is not None:
            raise SweepConfigError(
                f"corrupt faults cannot target streamed workload "
                f"{workload.name!r}: stream corruption needs a "
                f"materialized encode/decode loop"
            )
        matrix_key = workload.content_key
        spec = workload
        table = cache.get_or_create(
            (
                "profiles",
                matrix_key,
                config.partition_size,
                config.block_size,
            ),
            lambda: spec.profile(
                config.partition_size, config.block_size
            ),
        )
        simulator = SpmvSimulator(config)
        result = simulator.run_format(
            cell.format_name, table, workload.name
        )
        return result, matrix_key
    workload = _materialize(cell, cache)
    if corruption is not None:
        workload = _corrupt_workload(workload, cell, corruption)
    matrix_key = cache.matrix_key(workload.matrix)
    table = cache.get_or_create(
        ("profiles", matrix_key, config.partition_size, config.block_size),
        lambda: profile_table(
            workload.matrix,
            config.partition_size,
            block_size=config.block_size,
        ),
    )
    simulator = SpmvSimulator(config)
    result = simulator.run_format(cell.format_name, table, workload.name)
    return result, matrix_key


def _encode_cell(
    cell: SweepCell, cache: ContentKeyedCache
) -> EncodeSummary:
    """Whole-matrix encode accounting, shared across partition sizes."""
    workload = _materialize(cell, cache)
    matrix = workload.matrix
    matrix_key = cache.matrix_key(matrix)

    def build() -> EncodeSummary:
        fmt = get_format(cell.format_name)
        size = fmt.size(fmt.encode(matrix))
        dense_bytes = matrix.n_rows * matrix.n_cols * VALUE_BYTES
        ratio = (
            float("inf")
            if size.total_bytes == 0
            else dense_bytes / size.total_bytes
        )
        return EncodeSummary(
            workload=workload.name,
            format_name=cell.format_name,
            nnz=matrix.nnz,
            size=size,
            compression_ratio=ratio,
        )

    return cache.get_or_create(
        ("encode", matrix_key, cell.format_name), build
    )


def _failed_cell(
    index: int, cell: SweepCell, error: Exception, attempt: int
) -> FailedCell:
    """Build the structured failure record for one raised cell."""
    return FailedCell(
        index=index,
        workload=cell.workload_name,
        format_name=cell.format_name,
        partition_size=cell.partition_size,
        recipe_digest=workload_recipe_digest(cell.workload),
        error_type=type(error).__name__,
        message=str(error),
        traceback_text=traceback.format_exc(),
        attempts=attempt + 1,
    )


def _run_chunk(
    chunk: _Chunk,
    encode: bool,
    cache: ContentKeyedCache | None = None,
    telemetry: bool = False,
    error_policy: str = "fail_fast",
    faults: FaultPlan | None = None,
    attempt: int = 0,
    in_worker: bool = True,
    on_cell: "Callable | None" = None,
) -> _ChunkOutput:
    """Execute one chunk of cells against one shared cache.

    This is the single code path every backend uses; pool and queue
    workers call it with a worker-local cache, the inline executor
    threads one cache through every chunk.  With ``telemetry`` the
    chunk also returns one :class:`CellTelemetry` per cell and a
    worker-local :class:`MetricsRegistry`; both are picklable, so they
    aggregate across process boundaries exactly like the results do.

    ``error_policy="collect"`` turns per-cell exceptions into
    :class:`FailedCell` records (with the traceback formatted *here*,
    on the worker side of the pickle boundary); ``"fail_fast"``
    re-raises them as annotated :class:`SweepCellError`.  ``faults``
    and ``attempt`` drive deterministic fault injection; ``on_cell``
    (same-process callers only — it does not pickle) is invoked after
    every completed cell so the caller can checkpoint at cell
    granularity.
    """
    if cache is None:
        cache = ContentKeyedCache()
    results: list[tuple[int, CharacterizationResult]] = []
    encodings: dict[tuple[str, str], EncodeSummary] = {}
    failures: list[FailedCell] = []
    spans: list[CellTelemetry] | None = [] if telemetry else None
    metrics: MetricsRegistry | None = (
        MetricsRegistry() if telemetry else None
    )
    timed = telemetry or on_cell is not None
    chunk_start = time.perf_counter() if telemetry else 0.0
    for index, cell in chunk:
        cell_start = time.perf_counter() if timed else 0.0
        try:
            corruption = None
            if faults is not None:
                faults.before_cell(
                    cell.coords, index, attempt, in_worker
                )
                corruption = faults.corruption_for(
                    cell.coords, index, attempt
                )
            result, matrix_key = _run_cell(cell, cache, corruption)
            if encode:
                summary = _encode_cell(cell, cache)
                encodings[(summary.workload, summary.format_name)] = summary
        except Exception as error:  # noqa: BLE001 — policy decides
            if error_policy == "fail_fast":
                if isinstance(error, SweepCellError):
                    raise
                raise SweepCellError(
                    cell.coords,
                    f"{type(error).__name__}: {error}",
                    traceback_text=traceback.format_exc(),
                    recipe_digest=workload_recipe_digest(cell.workload),
                    attempts=attempt + 1,
                ) from error
            failures.append(_failed_cell(index, cell, error, attempt))
            continue
        results.append((index, result))
        wall = time.perf_counter() - cell_start if timed else 0.0
        if telemetry:
            spans.append(
                CellTelemetry(
                    index=index,
                    workload=result.workload,
                    format_name=cell.format_name,
                    partition_size=cell.partition_size,
                    cache_key=matrix_key,
                    wall_s=wall,
                )
            )
            metrics.incr("sweep.cells")
            metrics.observe("sweep.cell", wall)
        if on_cell is not None:
            on_cell(index, cell, result, wall, matrix_key)
    if telemetry:
        metrics.observe(
            "sweep.chunk", time.perf_counter() - chunk_start
        )
        metrics.incr("sweep.chunks")
    return results, encodings, cache.stats, spans, metrics, failures


# ----------------------------------------------------------------------
# The executor contract
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionSettings:
    """Everything a backend needs to know about *how* cells execute.

    A frozen value object so backends can ship it across process
    boundaries (the queue backend serializes it into ``queue.json``)
    and tests can construct backends without a full runner.
    """

    encode: bool = False
    telemetry: bool = False
    error_policy: str = "collect"
    faults: FaultPlan | None = None
    max_retries: int = 2
    chunk_timeout: float | None = None
    max_workers: int = 1
    max_pool_restarts: int | None = None
    #: A :class:`~repro.engine.chaos.ChaosPlan` injecting durability
    #: faults; queue workers install it from ``queue.json`` with
    #: worker semantics (fatal faults kill the process).
    chaos: "object | None" = None


class CheckpointSink:
    """Routes completed work from any backend into one checkpoint.

    Wraps the :class:`~repro.engine.checkpoint.CheckpointWriter` with
    the grid's per-index cell digests and encoding dedup, so backends
    record results without knowing checkpoint record formats.  The
    inline executor records cell-by-cell (crash leaves every finished
    cell behind); pool and queue record chunk-by-chunk as the parent
    sees each chunk's output.
    """

    def __init__(
        self, writer: "CheckpointWriter", digests: list[str]
    ) -> None:
        self.writer = writer
        self.digests = digests
        self._recorded_encodings: set = set()

    def record_cell(
        self,
        index: int,
        cell: SweepCell,
        result: CharacterizationResult,
        wall_s: float = 0.0,
        cache_key: str = "",
    ) -> None:
        """Append one completed cell."""
        self.writer.record_result(
            self.digests[index],
            cell,
            result,
            wall_s=wall_s,
            cache_key=cache_key,
        )

    def record_encoding(
        self, key: tuple[str, str], summary: EncodeSummary
    ) -> None:
        """Append one encode summary, deduplicated per (workload, fmt)."""
        if key not in self._recorded_encodings:
            self._recorded_encodings.add(key)
            self.writer.record_encoding(summary)

    def record_chunk(self, chunk: _Chunk, output: _ChunkOutput) -> None:
        """Append one completed chunk's results and encodings."""
        results, chunk_encodings, _, chunk_spans, _, _ = output
        spans_by_index = {
            span.index: span for span in (chunk_spans or ())
        }
        by_index = dict(chunk)
        for index, result in results:
            span = spans_by_index.get(index)
            self.record_cell(
                index,
                by_index[index],
                result,
                wall_s=span.wall_s if span is not None else 0.0,
                cache_key=span.cache_key if span is not None else "",
            )
        for key, summary in chunk_encodings.items():
            self.record_encoding(key, summary)


class SweepExecutor:
    """The backend contract: run chunks, return outputs + recovery info.

    ``run_chunks`` returns ``(outputs, failures, counters)``:

    * ``outputs`` — one :data:`_ChunkOutput` per completed dispatch
      unit, in a deterministic order (the runner merges them keyed by
      grid index, so backends may split or coalesce chunks freely);
    * ``failures`` — cells lost to infrastructure (worker crashes,
      exhausted budgets) rather than in-cell exceptions;
    * ``counters`` — backend recovery counters merged into run
      telemetry (``sweep.pool_restarts``, ``sweep.queue.reclaims``,
      ...).
    """

    def __init__(self, settings: ExecutionSettings) -> None:
        self.settings = settings

    def run_chunks(
        self,
        chunks: list[_Chunk],
        sink: CheckpointSink | None = None,
    ) -> tuple[list[_ChunkOutput], list[FailedCell], dict[str, int]]:
        raise NotImplementedError


class InlineExecutor(SweepExecutor):
    """Runs every chunk in-process with one cache shared across all.

    The reference backend: maximal caching, deterministic, no pickling
    — and the degradation target when parallel backends stop trusting
    their workers.  Cache stats are reported once (on the last chunk's
    output) because the cache is shared.
    """

    def run_chunks(
        self,
        chunks: list[_Chunk],
        sink: CheckpointSink | None = None,
    ) -> tuple[list[_ChunkOutput], list[FailedCell], dict[str, int]]:
        settings = self.settings
        cache = ContentKeyedCache()
        on_cell = None
        if sink is not None:
            cells_by_index = {
                index: cell
                for chunk in chunks
                for index, cell in chunk
            }

            def on_cell(index, cell, result, wall_s, matrix_key):
                sink.record_cell(
                    index,
                    cells_by_index[index],
                    result,
                    wall_s=wall_s,
                    cache_key=matrix_key,
                )

        outputs: list[_ChunkOutput] = []
        for chunk in chunks:
            output = _run_chunk(
                chunk,
                settings.encode,
                cache,
                telemetry=settings.telemetry,
                error_policy=settings.error_policy,
                faults=settings.faults,
                in_worker=False,
                on_cell=on_cell,
            )
            results, encodings, _, spans, metrics, failures = output
            outputs.append(
                (results, encodings, CacheStats(), spans, metrics, failures)
            )
            if sink is not None:
                for key, summary in encodings.items():
                    sink.record_encoding(key, summary)
        # the cache is shared, so its stats are reported once
        if outputs:
            last = outputs[-1]
            outputs[-1] = (
                last[0], last[1], cache.stats, last[3], last[4], last[5]
            )
        return outputs, [], {}


class PoolExecutor(SweepExecutor):
    """Dispatches chunks to a ``ProcessPoolExecutor`` with recovery.

    A worker crash (``BrokenProcessPool``) or an exhausted per-chunk
    wall-clock budget triggers the recovery ladder: bounded retries,
    then bisection to fence the poisonous cell down to a single-cell
    failure, one-chunk-per-pool isolation rounds so bystander chunks
    don't burn retry budget, and in-process degradation once the pool
    has broken more times than the restart budget allows.
    """

    def restart_budget(self, chunks: list[_Chunk]) -> int:
        """Pool rebuilds tolerated before degrading in-process."""
        settings = self.settings
        if settings.max_pool_restarts is not None:
            return settings.max_pool_restarts
        biggest = max(len(chunk) for chunk in chunks)
        # each (retry budget + 1) dispatch cascade can recur once per
        # bisection level of the largest chunk
        depth = max(1, biggest.bit_length())
        return (settings.max_retries + 1) * (depth + 1)

    def run_chunks(
        self,
        chunks: list[_Chunk],
        sink: CheckpointSink | None = None,
    ) -> tuple[list[_ChunkOutput], list[FailedCell], dict[str, int]]:
        settings = self.settings
        pending: list[tuple[_Chunk, int]] = [
            (chunk, 0) for chunk in chunks
        ]
        outputs: list[_ChunkOutput] = []
        crash_failures: list[FailedCell] = []
        counters: dict[str, int] = {}
        restarts = 0
        max_restarts = self.restart_budget(chunks)
        degraded = False

        def bump(name: str, count: int = 1) -> None:
            counters[name] = counters.get(name, 0) + count

        def abandon(
            chunk: _Chunk, attempt: int, error_type: str, message: str
        ) -> None:
            """Retry, bisect, or give up on one lost chunk.

            Only called once dispatch is down to one chunk per pool
            (isolation rounds), so a loss is attributable to the chunk
            itself rather than to a pool-mate's crash.
            """
            next_attempt = attempt + 1
            if next_attempt <= settings.max_retries:
                bump("sweep.chunk_retries")
                pending.append((chunk, next_attempt))
                return
            if len(chunk) > 1:
                bump("sweep.chunk_bisections")
                mid = len(chunk) // 2
                pending.append((chunk[:mid], 0))
                pending.append((chunk[mid:], 0))
                return
            index, cell = chunk[0]
            digest = workload_recipe_digest(cell.workload)
            if settings.error_policy == "fail_fast":
                raise SweepCellError(
                    cell.coords,
                    f"{error_type}: {message}",
                    recipe_digest=digest,
                    attempts=next_attempt,
                )
            crash_failures.append(
                FailedCell(
                    index=index,
                    workload=cell.workload_name,
                    format_name=cell.format_name,
                    partition_size=cell.partition_size,
                    recipe_digest=digest,
                    error_type=error_type,
                    message=message,
                    attempts=next_attempt,
                )
            )

        # After the first pool break, dispatch one chunk per pool
        # ("isolation rounds"): inside a shared pool one crashing cell
        # takes every co-scheduled chunk down with it, so retry budgets
        # would be burned by innocent-bystander losses and bisection
        # could never exonerate the healthy half.
        isolating = False
        while pending:
            if degraded:
                # the pool cannot be trusted; finish in-process, where
                # an injected crash raises WorkerCrashError instead of
                # killing anything
                batch, pending = pending, []
                for chunk, attempt in batch:
                    output = _run_chunk(
                        chunk,
                        settings.encode,
                        telemetry=settings.telemetry,
                        error_policy=settings.error_policy,
                        faults=settings.faults,
                        attempt=attempt,
                        in_worker=False,
                    )
                    outputs.append(output)
                    if sink is not None:
                        sink.record_chunk(chunk, output)
                continue

            if isolating:
                batch = [pending.pop(0)]
            else:
                batch, pending = pending, []
            workers = min(settings.max_workers, len(batch))
            lost: list[tuple[_Chunk, int, str, str]] = []
            timed_out = False
            pool = ProcessPoolExecutor(max_workers=workers)
            try:
                futures = [
                    (
                        pool.submit(
                            _run_chunk,
                            chunk,
                            settings.encode,
                            telemetry=settings.telemetry,
                            error_policy=settings.error_policy,
                            faults=settings.faults,
                            attempt=attempt,
                            in_worker=True,
                        ),
                        chunk,
                        attempt,
                    )
                    for chunk, attempt in batch
                ]
                # collect in submission order for deterministic merging
                for future, chunk, attempt in futures:
                    try:
                        output = future.result(
                            timeout=settings.chunk_timeout
                        )
                    except FuturesTimeoutError:
                        timed_out = True
                        future.cancel()
                        lost.append((
                            chunk,
                            attempt,
                            "ChunkTimeout",
                            f"chunk of {len(chunk)} cell(s) exceeded "
                            f"the {settings.chunk_timeout}s wall budget",
                        ))
                    except BrokenProcessPool as error:
                        lost.append((
                            chunk,
                            attempt,
                            "WorkerCrashError",
                            str(error)
                            or "worker process terminated abruptly",
                        ))
                    else:
                        outputs.append(output)
                        if sink is not None:
                            sink.record_chunk(chunk, output)
                if timed_out:
                    # the budget-blowing workers are still running;
                    # reclaim them before abandoning the pool
                    for process in list(
                        getattr(pool, "_processes", {}).values()
                    ):
                        try:
                            process.terminate()
                        except Exception:  # noqa: BLE001 — best effort
                            pass
            finally:
                pool.shutdown(wait=not timed_out, cancel_futures=True)

            if lost:
                restarts += 1
                counters["sweep.pool_restarts"] = restarts
                if restarts > max_restarts:
                    degraded = True
                    counters["sweep.degraded"] = 1
                if isolating:
                    for item in lost:
                        abandon(*item)
                else:
                    # a shared-pool loss is not attributable — any
                    # pool-mate may have crashed the pool — so
                    # re-enqueue verbatim (no retry budget burned) and
                    # switch to one-chunk-per-pool isolation rounds
                    isolating = True
                    for chunk, attempt, _error_type, _message in lost:
                        pending.append((chunk, attempt))
        return outputs, crash_failures, counters


def make_executor(
    settings: ExecutionSettings,
    backend: str = "auto",
    n_chunks: int = 1,
    queue_options=None,
) -> SweepExecutor:
    """Build the backend for one run.

    ``"auto"`` preserves the historical dispatch rule: in-process when
    ``max_workers == 1`` or there is a single chunk (nothing to
    overlap), the process pool otherwise.  ``"queue"`` imports the
    distributed module lazily and accepts a
    :class:`~repro.engine.distributed.QueueOptions`.
    """
    if backend not in EXECUTOR_BACKENDS:
        raise SweepConfigError(
            f"backend must be one of {', '.join(EXECUTOR_BACKENDS)}; "
            f"got {backend!r}"
        )
    if backend == "queue":
        from .distributed import QueueExecutor, QueueOptions

        return QueueExecutor(settings, queue_options or QueueOptions())
    if queue_options is not None:
        raise SweepConfigError(
            f"queue options require backend='queue', got {backend!r}"
        )
    if backend == "pool" or (
        backend == "auto" and settings.max_workers > 1 and n_chunks > 1
    ):
        return PoolExecutor(settings)
    return InlineExecutor(settings)
