"""Deterministic fault injection for the sweep engine.

The robustness machinery in :mod:`repro.engine.runner` — error
policies, worker-crash recovery, chunk bisection, checkpoint/resume —
only earns its keep if its failure paths are *testable*.  This module
makes failure a first-class, reproducible input: a :class:`FaultPlan`
is a picklable set of :class:`FaultSpec` rules that the runner
evaluates immediately before executing each cell, so the same plan
produces the same faults at the same cells on every run, any worker
count, and every retry attempt.

Three fault kinds cover the interesting failure classes:

``raise``
    Raise :class:`InjectedFault` inside the cell — an ordinary Python
    exception, exercising the ``collect`` / ``fail_fast`` error
    policies.
``crash``
    Kill the worker process with ``os._exit`` — the un-catchable
    death that surfaces as ``BrokenProcessPool`` in the parent,
    exercising retry, bisection and pool-degradation.  On the
    in-process path (where ``os._exit`` would take the whole run
    down) it raises :class:`~repro.errors.WorkerCrashError` instead.
``delay``
    Sleep ``delay_s`` seconds before the cell runs, exercising the
    per-chunk wall-clock budget.
``corrupt``
    Damage the cell's encoded matrix stream before characterization:
    the runner encodes the workload in the cell's format, applies a
    seeded :class:`~repro.formats.corrupt.CorruptionSpec` injection,
    and decodes it back under the spec's
    :data:`~repro.formats.integrity.DECODE_MODES` policy.  Under
    ``mode=strict`` a detected corruption surfaces as a
    :class:`~repro.errors.FormatIntegrityError` cell failure;
    ``repair`` / ``lenient`` let the (possibly altered) matrix flow
    through the pipeline, exercising silent-corruption paths.

Faults are *attempt-gated*: ``times=N`` trips only on the first N
dispatch attempts of the cell's chunk, so a "transient" crash that
succeeds on retry is one spec away.  ``times=None`` makes the fault
persistent.

Plans parse from a compact spec string (the hidden
``repro sweep --inject-faults`` flag uses this)::

    raise@rand-0.01:csr:16          # one exact cell
    crash@*:coo:*                   # every coo cell, first attempt
    crash@*:coo:*#times=none        # ... on every attempt
    delay@every:5#delay=0.25        # every 5th grid cell sleeps 250 ms
    raise@band-4:*:8,raise@band-8:*:8   # comma-separated plans compose
    corrupt@*:csr:*#ckind=bitflip#ber=0.001#mode=strict
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable

from ..errors import SweepConfigError, WorkerCrashError
from ..formats.corrupt import CorruptionSpec

__all__ = ["InjectedFault", "FaultSpec", "FaultPlan", "FAULT_KINDS"]

#: The supported fault kinds.
FAULT_KINDS = ("raise", "crash", "delay", "corrupt")

#: Exit status a ``crash`` fault kills its worker with (any non-zero
#: status breaks the pool; a recognizable one helps post-mortems).
CRASH_EXIT_STATUS = 86


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault throws inside a cell."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault rule.

    A spec matches a cell by coordinates (``None`` fields are
    wildcards) or by grid position (``every_nth`` trips on cell
    indexes divisible by N); ``times`` gates it to the first N
    dispatch attempts of the chunk carrying the cell (``None`` =
    every attempt).
    """

    kind: str
    workload: str | None = None
    format_name: str | None = None
    partition_size: int | None = None
    every_nth: int | None = None
    times: int | None = 1
    delay_s: float = 0.05
    corrupt_kind: str = "bitflip"
    plane: str = "*"
    ber: float = 1e-3
    decode_mode: str = "strict"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SweepConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}"
            )
        if self.kind == "corrupt":
            # constructing the spec validates ckind / ber / mode
            self.corruption_spec()
        if self.every_nth is not None and self.every_nth < 1:
            raise SweepConfigError(
                f"every_nth must be >= 1, got {self.every_nth}"
            )
        if self.times is not None and self.times < 1:
            raise SweepConfigError(
                f"times must be >= 1 (or None for always), "
                f"got {self.times}"
            )
        if self.delay_s < 0:
            raise SweepConfigError(
                f"delay_s must be >= 0, got {self.delay_s}"
            )

    # ------------------------------------------------------------------
    def matches(self, coords: tuple[str, str, int], index: int) -> bool:
        """Does this spec target the cell at ``coords`` / ``index``?"""
        if self.every_nth is not None:
            return index % self.every_nth == 0
        workload, format_name, partition_size = coords
        return (
            (self.workload is None or self.workload == workload)
            and (
                self.format_name is None
                or self.format_name == format_name
            )
            and (
                self.partition_size is None
                or self.partition_size == partition_size
            )
        )

    def should_fire(
        self, coords: tuple[str, str, int], index: int, attempt: int
    ) -> bool:
        """Whether the fault trips for this (cell, dispatch attempt)."""
        if self.times is not None and attempt >= self.times:
            return False
        return self.matches(coords, index)

    # ------------------------------------------------------------------
    def corruption_spec(self) -> CorruptionSpec:
        """The stream-corruption rule a ``corrupt`` fault applies."""
        return CorruptionSpec(
            kind=self.corrupt_kind,
            plane=self.plane,
            ber=self.ber,
            decode_mode=self.decode_mode,
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        where = (
            f"every:{self.every_nth}"
            if self.every_nth is not None
            else ":".join(
                "*" if part is None else str(part)
                for part in (
                    self.workload, self.format_name, self.partition_size
                )
            )
        )
        text = f"{self.kind}@{where}"
        if self.kind == "corrupt":
            text += f"#ckind={self.corrupt_kind}#mode={self.decode_mode}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, picklable set of fault rules.

    The runner calls :meth:`before_cell` immediately before executing
    each cell; the first matching spec fires.  Plans cross the
    ``ProcessPoolExecutor`` boundary with the chunk, so workers and
    the in-process path evaluate identical rules.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def before_cell(
        self,
        coords: tuple[str, str, int],
        index: int,
        attempt: int = 0,
        in_worker: bool = False,
    ) -> None:
        """Inject the first matching fault, if any.

        ``attempt`` is the chunk's dispatch attempt (0-based);
        ``in_worker`` tells a ``crash`` fault whether it may actually
        kill the process (worker) or must raise
        :class:`WorkerCrashError` instead (in-process path).
        """
        for spec in self.specs:
            if not spec.should_fire(coords, index, attempt):
                continue
            if spec.kind == "corrupt":
                # corruption is not an exception at this point: the
                # runner applies it to the cell's encoded stream via
                # :meth:`corruption_for`
                continue
            if spec.kind == "delay":
                time.sleep(spec.delay_s)
                continue
            if spec.kind == "raise":
                raise InjectedFault(
                    f"injected fault {spec.describe()} at cell "
                    f"{coords} (attempt {attempt})"
                )
            # kind == "crash"
            if in_worker:
                os._exit(CRASH_EXIT_STATUS)
            raise WorkerCrashError(
                f"injected crash {spec.describe()} at cell {coords} "
                f"(attempt {attempt}, in-process path)"
            )

    def corruption_for(
        self,
        coords: tuple[str, str, int],
        index: int,
        attempt: int = 0,
    ) -> CorruptionSpec | None:
        """The corruption rule (if any) firing for this cell.

        The first matching ``corrupt`` spec wins; evaluated with the
        same attempt-gating as :meth:`before_cell`, so a transient
        ``times=1`` corruption clears on retry.
        """
        for spec in self.specs:
            if spec.kind != "corrupt":
                continue
            if spec.should_fire(coords, index, attempt):
                return spec.corruption_spec()
        return None

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a comma-separated compact spec string (see module doc)."""
        specs = []
        for part in text.split(","):
            part = part.strip()
            if part:
                specs.append(_parse_one(part))
        if not specs:
            raise SweepConfigError(
                f"fault plan {text!r} contains no fault specs"
            )
        return cls(specs=tuple(specs))

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self.specs)


def _parse_options(chunks: Iterable[str]) -> dict:
    options: dict = {}
    for chunk in chunks:
        key, sep, value = chunk.partition("=")
        if not sep:
            raise SweepConfigError(
                f"fault option {chunk!r} is not key=value"
            )
        if key == "times":
            options["times"] = (
                None if value.lower() == "none" else _parse_int(value, key)
            )
        elif key == "delay":
            try:
                options["delay_s"] = float(value)
            except ValueError:
                raise SweepConfigError(
                    f"fault option delay={value!r} is not a number"
                ) from None
        elif key == "ckind":
            options["corrupt_kind"] = value
        elif key == "plane":
            options["plane"] = value
        elif key == "ber":
            try:
                options["ber"] = float(value)
            except ValueError:
                raise SweepConfigError(
                    f"fault option ber={value!r} is not a number"
                ) from None
        elif key == "mode":
            options["decode_mode"] = value
        else:
            raise SweepConfigError(
                f"unknown fault option {key!r}; known: times, delay, "
                f"ckind, plane, ber, mode"
            )
    return options


def _parse_int(value: str, label: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise SweepConfigError(
            f"fault option {label}={value!r} is not an integer"
        ) from None


def _parse_one(text: str) -> FaultSpec:
    head, *option_chunks = text.split("#")
    kind, sep, where = head.partition("@")
    if not sep or not where:
        raise SweepConfigError(
            f"fault spec {text!r} must look like kind@target "
            f"(e.g. raise@rand-0.01:csr:16, crash@every:5)"
        )
    options = _parse_options(option_chunks)
    if where.startswith("every:"):
        return FaultSpec(
            kind=kind,
            every_nth=_parse_int(where[len("every:"):], "every"),
            **options,
        )
    parts = where.split(":")
    if len(parts) != 3:
        raise SweepConfigError(
            f"fault target {where!r} must be workload:format:p "
            f"('*' wildcards) or every:N"
        )
    workload, format_name, partition = parts
    return FaultSpec(
        kind=kind,
        workload=None if workload == "*" else workload,
        format_name=None if format_name == "*" else format_name,
        partition_size=(
            None if partition == "*" else _parse_int(partition, "p")
        ),
        **options,
    )
