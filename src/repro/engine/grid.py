"""Sweep grids: the experiment cube as an explicit list of cells.

Every figure in the paper is a slice of the same cube — (workload,
format, partition size) at one hardware configuration.  A
:class:`SweepCell` names one cube cell; :func:`build_grid` expands the
cross product in deterministic workload-major order, which is also the
order the runner returns results in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..formats.base import SizeBreakdown
from ..formats.registry import PAPER_FORMATS
from ..hardware.config import DEFAULT_CONFIG, HardwareConfig
from ..partition import PARTITION_SIZES
from ..workloads.registry import Workload
from .cache import CacheStats
from .specs import WorkloadSpec
from .telemetry import RunTelemetry
from ..core.results import CharacterizationResult

__all__ = [
    "SweepCell",
    "EncodeSummary",
    "FailedCell",
    "SweepOutcome",
    "build_grid",
]


@dataclass(frozen=True)
class SweepCell:
    """One (workload, format, partition size) cell of the cube.

    ``workload`` is either a materialized :class:`Workload` or a lazy
    :class:`WorkloadSpec` (materialized inside the worker, through its
    matrix cache).  ``config`` is the *base* hardware configuration;
    the runner applies ``partition_size`` on top of it, so one grid can
    mix partition sizes without pre-building a config per cell.
    """

    workload: Workload | WorkloadSpec
    format_name: str
    partition_size: int
    config: HardwareConfig = DEFAULT_CONFIG

    @property
    def workload_name(self) -> str:
        return self.workload.name

    @property
    def coords(self) -> tuple[str, str, int]:
        """The (workload, format, partition size) coordinate triple."""
        return (self.workload.name, self.format_name, self.partition_size)

    @property
    def resolved_config(self) -> HardwareConfig:
        """The base config with this cell's partition size applied."""
        return self.config.with_partition_size(self.partition_size)


@dataclass(frozen=True)
class EncodeSummary:
    """Functional, whole-matrix accounting of one (workload, format).

    Produced by the runner's optional encode stage from a real
    :class:`~repro.formats.base.EncodedMatrix` rather than the profile
    model, so it reflects exact array sizes.
    """

    workload: str
    format_name: str
    nnz: int
    size: SizeBreakdown
    compression_ratio: float


@dataclass(frozen=True)
class FailedCell:
    """Structured record of one cell that failed to produce a result.

    Produced by the runner under ``error_policy="collect"`` — from an
    exception inside the cell, a worker-process crash
    (``error_type="WorkerCrashError"``) or an exhausted chunk
    wall-clock budget (``error_type="ChunkTimeout"``).  The formatted
    traceback is captured *inside* the worker, so it survives the
    pickle across the process boundary that would otherwise strip the
    exception chain.
    """

    index: int
    workload: str
    format_name: str
    partition_size: int
    recipe_digest: str
    error_type: str
    message: str
    traceback_text: str = ""
    attempts: int = 1

    @property
    def coords(self) -> tuple[str, str, int]:
        return (self.workload, self.format_name, self.partition_size)

    def __repr__(self) -> str:
        return (
            f"FailedCell({self.workload!r}, {self.format_name!r}, "
            f"p={self.partition_size}, {self.error_type}: "
            f"{self.message})"
        )


@dataclass
class SweepOutcome:
    """Everything one sweep run produced.

    ``results`` is in grid (cell) order regardless of worker count or
    completion order; under ``error_policy="collect"`` failed cells
    are *absent* from ``results`` and listed in ``failures`` instead
    (also in grid order).  ``stats`` aggregates the cache counters of
    every worker; ``encodings`` is populated only when the runner ran
    with ``encode=True``; ``telemetry`` (per-cell spans, merged worker
    metrics, workload recipe digests) only when it ran with
    ``telemetry=True``.
    """

    results: list[CharacterizationResult]
    stats: CacheStats
    encodings: Mapping[tuple[str, str], EncodeSummary] = field(
        default_factory=dict
    )
    telemetry: "RunTelemetry | None" = None
    failures: list[FailedCell] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        """True iff every grid cell produced a result."""
        return not self.failures

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    def failure(
        self, workload: str, format_name: str, partition_size: int
    ) -> FailedCell:
        """Look up one failed cell by its coordinates."""
        for failed in self.failures:
            if failed.coords == (workload, format_name, partition_size):
                return failed
        raise KeyError((workload, format_name, partition_size))

    def raise_if_failed(self) -> "SweepOutcome":
        """Raise a :class:`SweepCellError` for the first failure.

        Lets a caller run with ``error_policy="collect"`` (keeping
        every healthy result) and still get fail-fast semantics at the
        point where completeness matters.
        """
        if self.failures:
            from ..errors import SweepCellError

            first = self.failures[0]
            raise SweepCellError(
                first.coords,
                f"{first.error_type}: {first.message} "
                f"(+{len(self.failures) - 1} more failed cells)",
                traceback_text=first.traceback_text,
                recipe_digest=first.recipe_digest,
                attempts=first.attempts,
            )
        return self

    def by_coords(
        self,
    ) -> dict[tuple[str, str, int], CharacterizationResult]:
        """Index the results by (workload, format, partition size)."""
        return {
            (r.workload, r.format_name, r.partition_size): r
            for r in self.results
        }

    def result(
        self, workload: str, format_name: str, partition_size: int
    ) -> CharacterizationResult:
        """Look up one cell's result by its coordinates."""
        return self.by_coords()[(workload, format_name, partition_size)]

    def write_manifest(
        self, path: str | Path, extra: Mapping | None = None
    ) -> Path:
        """Write this run's JSON-lines manifest (telemetry required).

        See :mod:`repro.observability.manifest` for the schema and
        ``python -m repro stats`` for the reader.
        """
        from ..observability.manifest import write_sweep_manifest

        return write_sweep_manifest(self, path, extra=extra)


def build_grid(
    workloads: Iterable[Workload | WorkloadSpec],
    format_names: Sequence[str] = PAPER_FORMATS,
    partition_sizes: Sequence[int] = PARTITION_SIZES,
    base_config: HardwareConfig = DEFAULT_CONFIG,
) -> list[SweepCell]:
    """Expand the experiment cube in workload-major deterministic order.

    Cells sharing a workload are adjacent, which is what lets the
    runner chunk them onto one worker and share the profile and encode
    caches between them.
    """
    return [
        SweepCell(
            workload=workload,
            format_name=name,
            partition_size=p,
            config=base_config,
        )
        for workload in workloads
        for p in partition_sizes
        for name in format_names
    ]
