"""Shared jittered exponential backoff for transient failures.

One retry discipline for every client in the repo that talks to
something flaky — queue workers polling a contended directory, the
loadgen client absorbing 429s from an overloaded server, the chaos
campaign re-reading state mid-recovery.  The policy is a frozen value
object; all randomness comes from a caller-supplied
:class:`random.Random`, so retry schedules are deterministic under a
seed (and therefore reproducible in tests and chaos schedules).

The jitter is "equal jitter": half the exponential delay is kept, the
other half is uniformly random, which preserves the exponential
envelope while decorrelating competing clients.  A per-call floor
(e.g. a server's ``Retry-After``) is respected by raising the delay
to the floor, never by truncating the jitter below it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator

from ..errors import SimulationError

__all__ = ["RetryPolicy", "call_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded, jittered exponential backoff schedule.

    ``max_attempts`` counts the first try: 4 means one attempt plus
    up to three retries.  ``jitter=0`` gives a fully deterministic
    schedule regardless of the RNG.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise SimulationError(
                "retry delays must be >= 0, got "
                f"base={self.base_delay_s} max={self.max_delay_s}"
            )
        if self.multiplier < 1.0:
            raise SimulationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise SimulationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay_for(
        self,
        attempt: int,
        rng: "random.Random | None" = None,
        floor_s: float = 0.0,
    ) -> float:
        """Sleep before retry number ``attempt`` (1-based).

        ``floor_s`` is a server-imposed minimum (``Retry-After``);
        the returned delay is never below it.
        """
        if attempt < 1:
            raise SimulationError(
                f"attempt must be >= 1, got {attempt}"
            )
        raw = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (attempt - 1),
        )
        if self.jitter and rng is not None:
            fixed = raw * (1.0 - self.jitter)
            raw = fixed + rng.uniform(0.0, raw - fixed)
        return max(raw, floor_s)

    def delays(
        self, rng: "random.Random | None" = None
    ) -> Iterator[float]:
        """The full schedule: one delay per permitted retry."""
        for attempt in range(1, self.max_attempts):
            yield self.delay_for(attempt, rng)


def call_with_retry(
    fn: Callable[[], object],
    policy: RetryPolicy,
    retry_on: "tuple[type[BaseException], ...]" = (OSError,),
    rng: "random.Random | None" = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn`` until it succeeds or the policy is exhausted.

    Re-raises the last exception once ``max_attempts`` is spent.
    ``sleep`` is injectable so tests (and the chaos campaign) can
    capture the schedule without waiting it out.
    """
    last: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as error:
            last = error
            if attempt == policy.max_attempts:
                raise
            sleep(policy.delay_for(attempt, rng))
    raise last  # pragma: no cover - unreachable
