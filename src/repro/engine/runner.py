"""Parallel sweep execution with shared-work caching and telemetry.

The runner turns a grid of sweep cells into characterization results:

1.  Cells are grouped into *chunks* by workload, so every cell that can
    share cached intermediates (partition profiles across formats,
    whole-matrix encodings across partition sizes, the generated matrix
    itself for spec-based cells) lands on the same worker.
2.  Chunks are dispatched to a ``ProcessPoolExecutor``; with
    ``max_workers=1`` the same chunk code runs in-process with one
    cache shared across *all* chunks, so the sequential path is both a
    fallback and the maximal-caching configuration.  Both paths produce
    identical results cell-for-cell.
3.  A failure inside any cell — in either path — is re-raised as
    :class:`~repro.errors.SweepCellError` carrying the failing cell's
    (workload, format, partition size) coordinates.
4.  With ``telemetry=True`` every worker additionally records one
    :class:`~repro.engine.telemetry.CellTelemetry` span per cell plus
    chunk-level timers; the parent merges them (with the run-level
    cache counters) into :attr:`SweepOutcome.telemetry`, from which
    :meth:`SweepOutcome.write_manifest` emits a JSON-lines run
    manifest.  Telemetry is off by default and costs one branch per
    cell when disabled.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from ..core.results import CharacterizationResult
from ..core.simulator import SpmvSimulator
from ..errors import SweepCellError, SweepConfigError
from ..formats.base import VALUE_BYTES
from ..formats.registry import PAPER_FORMATS, get_format
from ..hardware.config import DEFAULT_CONFIG, HardwareConfig
from ..observability import MetricsRegistry
from ..partition import PARTITION_SIZES, profile_table
from ..workloads.registry import Workload
from .cache import CacheStats, ContentKeyedCache
from .grid import EncodeSummary, SweepCell, SweepOutcome, build_grid
from .specs import WorkloadSpec
from .telemetry import CellTelemetry, RunTelemetry, workload_recipe_digest

__all__ = ["SweepRunner", "run_sweep"]

#: One chunk: (cell index in the grid, cell) pairs sharing a workload.
_Chunk = list[tuple[int, SweepCell]]

#: One chunk's outputs: results, encodings, cache stats, telemetry.
_ChunkOutput = tuple[
    list[tuple[int, CharacterizationResult]],
    dict[tuple[str, str], EncodeSummary],
    CacheStats,
    "list[CellTelemetry] | None",
    "MetricsRegistry | None",
]


def _materialize(cell: SweepCell, cache: ContentKeyedCache) -> Workload:
    """The cell's workload, building spec-based cells through the cache."""
    workload = cell.workload
    if isinstance(workload, WorkloadSpec):
        return cache.get_or_create(workload.cache_key, workload.build)
    return workload


def _run_cell(
    cell: SweepCell, cache: ContentKeyedCache
) -> tuple[CharacterizationResult, str]:
    """Characterize one cell; returns the result and its matrix key."""
    workload = _materialize(cell, cache)
    config = cell.resolved_config
    matrix_key = cache.matrix_key(workload.matrix)
    table = cache.get_or_create(
        ("profiles", matrix_key, config.partition_size, config.block_size),
        lambda: profile_table(
            workload.matrix,
            config.partition_size,
            block_size=config.block_size,
        ),
    )
    simulator = SpmvSimulator(config)
    result = simulator.run_format(cell.format_name, table, workload.name)
    return result, matrix_key


def _encode_cell(
    cell: SweepCell, cache: ContentKeyedCache
) -> EncodeSummary:
    """Whole-matrix encode accounting, shared across partition sizes."""
    workload = _materialize(cell, cache)
    matrix = workload.matrix
    matrix_key = cache.matrix_key(matrix)

    def build() -> EncodeSummary:
        fmt = get_format(cell.format_name)
        size = fmt.size(fmt.encode(matrix))
        dense_bytes = matrix.n_rows * matrix.n_cols * VALUE_BYTES
        ratio = (
            float("inf")
            if size.total_bytes == 0
            else dense_bytes / size.total_bytes
        )
        return EncodeSummary(
            workload=workload.name,
            format_name=cell.format_name,
            nnz=matrix.nnz,
            size=size,
            compression_ratio=ratio,
        )

    return cache.get_or_create(
        ("encode", matrix_key, cell.format_name), build
    )


def _run_chunk(
    chunk: _Chunk,
    encode: bool,
    cache: ContentKeyedCache | None = None,
    telemetry: bool = False,
) -> _ChunkOutput:
    """Execute one chunk of cells against one shared cache.

    This is the single code path both the sequential and the parallel
    runner use; workers call it with a fresh cache, the sequential
    runner threads one cache through every chunk.  With ``telemetry``
    the chunk also returns one :class:`CellTelemetry` per cell and a
    worker-local :class:`MetricsRegistry`; both are picklable, so they
    aggregate across process boundaries exactly like the results do.
    """
    if cache is None:
        cache = ContentKeyedCache()
    results: list[tuple[int, CharacterizationResult]] = []
    encodings: dict[tuple[str, str], EncodeSummary] = {}
    spans: list[CellTelemetry] | None = [] if telemetry else None
    metrics: MetricsRegistry | None = (
        MetricsRegistry() if telemetry else None
    )
    chunk_start = time.perf_counter() if telemetry else 0.0
    for index, cell in chunk:
        cell_start = time.perf_counter() if telemetry else 0.0
        try:
            result, matrix_key = _run_cell(cell, cache)
            if encode:
                summary = _encode_cell(cell, cache)
                encodings[(summary.workload, summary.format_name)] = summary
        except SweepCellError:
            raise
        except Exception as error:  # noqa: BLE001 — annotate with coords
            raise SweepCellError(cell.coords, f"{type(error).__name__}: "
                                 f"{error}") from error
        results.append((index, result))
        if telemetry:
            wall = time.perf_counter() - cell_start
            spans.append(
                CellTelemetry(
                    index=index,
                    workload=result.workload,
                    format_name=cell.format_name,
                    partition_size=cell.partition_size,
                    cache_key=matrix_key,
                    wall_s=wall,
                )
            )
            metrics.incr("sweep.cells")
            metrics.observe("sweep.cell", wall)
    if telemetry:
        metrics.observe(
            "sweep.chunk", time.perf_counter() - chunk_start
        )
        metrics.incr("sweep.chunks")
    return results, encodings, cache.stats, spans, metrics


class SweepRunner:
    """Executes sweep grids, concurrently when asked.

    Parameters
    ----------
    max_workers:
        Process count.  ``1`` (the default) runs everything in-process
        with a single cache shared across the whole grid; ``> 1``
        dispatches workload-chunks to a ``ProcessPoolExecutor``.
    encode:
        Also run each (workload, format) through the format's real
        ``encode``/``size`` path, caching the result across partition
        sizes, and report the exact whole-matrix transfer accounting in
        :attr:`SweepOutcome.encodings`.  Off by default because a dense
        encode of a paper-scale (8000 x 8000) matrix materializes the
        full array.
    telemetry:
        Record per-cell spans, worker timers and workload recipe
        digests into :attr:`SweepOutcome.telemetry` (the input for
        :meth:`SweepOutcome.write_manifest`).  Off by default; when off
        the run path is unchanged except for one branch per cell.
    """

    def __init__(
        self,
        max_workers: int = 1,
        encode: bool = False,
        telemetry: bool = False,
    ) -> None:
        if not isinstance(max_workers, int) or isinstance(
            max_workers, bool
        ):
            raise SweepConfigError(
                f"max_workers must be an integer, got "
                f"{max_workers!r} ({type(max_workers).__name__})"
            )
        if max_workers < 1:
            raise SweepConfigError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers
        self.encode = encode
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    @staticmethod
    def chunk_cells(
        cells: Sequence[SweepCell], target_chunks: int = 1
    ) -> list[_Chunk]:
        """Group indexed cells for dispatch, preserving first-seen order.

        Cells of one workload share partition profiles (across formats)
        and encodings (across partition sizes), so the workload is the
        unit of cache affinity — and therefore the default unit of
        dispatch.  When that yields fewer chunks than
        ``target_chunks`` (e.g. one workload on many workers), chunks
        are refined to (workload, partition size) granularity; profile
        sharing across formats is preserved either way.
        """
        by_workload: dict[str, _Chunk] = {}
        for index, cell in enumerate(cells):
            by_workload.setdefault(
                cell.workload_name, []
            ).append((index, cell))
        if len(by_workload) >= target_chunks:
            return list(by_workload.values())
        refined: dict[tuple[str, int], _Chunk] = {}
        for index, cell in enumerate(cells):
            key = (cell.workload_name, cell.partition_size)
            refined.setdefault(key, []).append((index, cell))
        return list(refined.values())

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[SweepCell]) -> SweepOutcome:
        """Execute every cell; results come back in grid order."""
        cells = list(cells)
        run_start = time.perf_counter() if self.telemetry else 0.0
        if not cells:
            return SweepOutcome(
                results=[],
                stats=CacheStats(),
                telemetry=(
                    RunTelemetry(workers=self.max_workers, n_chunks=0)
                    if self.telemetry
                    else None
                ),
            )
        chunks = self.chunk_cells(cells, target_chunks=self.max_workers)
        if self.max_workers == 1 or len(chunks) == 1:
            outputs = self._run_sequential(chunks)
        else:
            outputs = self._run_parallel(chunks)

        indexed: dict[int, CharacterizationResult] = {}
        encodings: dict[tuple[str, str], EncodeSummary] = {}
        stats = CacheStats()
        spans: list[CellTelemetry] = []
        metrics = MetricsRegistry()
        for (
            chunk_results,
            chunk_encodings,
            chunk_stats,
            chunk_spans,
            chunk_metrics,
        ) in outputs:
            indexed.update(dict(chunk_results))
            encodings.update(chunk_encodings)
            stats = stats.merged(chunk_stats)
            if chunk_spans:
                spans.extend(chunk_spans)
            if chunk_metrics is not None:
                metrics = metrics.merged(chunk_metrics)

        telemetry: RunTelemetry | None = None
        if self.telemetry:
            spans.sort(key=lambda span: span.index)
            for kind, count in sorted(stats.hits.items()):
                metrics.incr(f"cache.{kind}.hits", count)
            for kind, count in sorted(stats.misses.items()):
                metrics.incr(f"cache.{kind}.misses", count)
            recipes: dict[str, str] = {}
            for cell in cells:
                if cell.workload_name not in recipes:
                    recipes[cell.workload_name] = workload_recipe_digest(
                        cell.workload
                    )
            telemetry = RunTelemetry(
                cells=spans,
                metrics=metrics,
                recipes=recipes,
                wall_s=time.perf_counter() - run_start,
                workers=self.max_workers,
                n_chunks=len(chunks),
            )
        return SweepOutcome(
            results=[indexed[i] for i in range(len(cells))],
            stats=stats,
            encodings=encodings,
            telemetry=telemetry,
        )

    def run_grid(
        self,
        workloads: Sequence[Workload | WorkloadSpec],
        format_names: Sequence[str] = PAPER_FORMATS,
        partition_sizes: Sequence[int] = PARTITION_SIZES,
        base_config: HardwareConfig = DEFAULT_CONFIG,
    ) -> SweepOutcome:
        """Expand the cube with :func:`build_grid` and run it."""
        return self.run(
            build_grid(workloads, format_names, partition_sizes, base_config)
        )

    # ------------------------------------------------------------------
    def _run_sequential(self, chunks: list[_Chunk]) -> list[_ChunkOutput]:
        cache = ContentKeyedCache()
        outputs: list[_ChunkOutput] = []
        for chunk in chunks:
            results, encodings, _, spans, metrics = _run_chunk(
                chunk, self.encode, cache, telemetry=self.telemetry
            )
            outputs.append(
                (results, encodings, CacheStats(), spans, metrics)
            )
        # the cache is shared, so its stats are reported once
        last = outputs[-1]
        outputs[-1] = (last[0], last[1], cache.stats, last[3], last[4])
        return outputs

    def _run_parallel(self, chunks: list[_Chunk]) -> list[_ChunkOutput]:
        workers = min(self.max_workers, len(chunks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_chunk,
                    chunk,
                    self.encode,
                    telemetry=self.telemetry,
                )
                for chunk in chunks
            ]
            # collect in submission order for deterministic merging;
            # .result() re-raises a worker's SweepCellError verbatim
            return [future.result() for future in futures]


def run_sweep(
    workloads: Sequence[Workload | WorkloadSpec],
    format_names: Sequence[str] = PAPER_FORMATS,
    partition_sizes: Sequence[int] = PARTITION_SIZES,
    base_config: HardwareConfig = DEFAULT_CONFIG,
    max_workers: int = 1,
    encode: bool = False,
    telemetry: bool = False,
) -> SweepOutcome:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(
        max_workers=max_workers, encode=encode, telemetry=telemetry
    )
    return runner.run_grid(
        workloads, format_names, partition_sizes, base_config
    )
