"""Parallel sweep execution with caching, telemetry and fault tolerance.

The runner turns a grid of sweep cells into characterization results:

1.  Cells are grouped into *chunks* by workload, so every cell that can
    share cached intermediates (partition profiles across formats,
    whole-matrix encodings across partition sizes, the generated matrix
    itself for spec-based cells) lands on the same worker.
2.  Chunks are dispatched to a ``ProcessPoolExecutor``; with
    ``max_workers=1`` the same chunk code runs in-process with one
    cache shared across *all* chunks, so the sequential path is both a
    fallback and the maximal-caching configuration.  Both paths produce
    identical results cell-for-cell.
3.  A failure inside any cell is handled by the runner's **error
    policy**: ``"collect"`` (the default) isolates it into a
    :class:`~repro.engine.grid.FailedCell` record — coordinates,
    recipe digest, exception type and the worker-side formatted
    traceback — on :attr:`SweepOutcome.failures` while every healthy
    cell still completes; ``"fail_fast"`` re-raises it immediately as
    :class:`~repro.errors.SweepCellError`.
4.  A **worker crash** (``BrokenProcessPool``) or an exhausted
    per-chunk wall-clock budget triggers recovery: the lost chunks are
    re-dispatched with bounded deterministic retries, then bisected to
    fence the poisonous cell down to a single-cell failure, and if the
    pool keeps dying the runner degrades to the in-process sequential
    path for whatever work remains.
5.  With ``checkpoint=...`` every completed cell is appended (and
    flushed) to an append-only JSONL checkpoint as soon as the parent
    sees it; ``resume=True`` replays checkpointed cells by recipe
    digest and executes only the remainder, producing a bit-identical
    :class:`SweepOutcome`.
6.  With ``telemetry=True`` every worker additionally records one
    :class:`~repro.engine.telemetry.CellTelemetry` span per cell plus
    chunk-level timers; the parent merges them (with the run-level
    cache counters and the recovery counters ``sweep.pool_restarts`` /
    ``sweep.chunk_retries`` / ``sweep.chunk_bisections`` /
    ``sweep.degraded`` / ``sweep.cells.failed`` /
    ``sweep.cells.replayed``) into :attr:`SweepOutcome.telemetry`,
    from which :meth:`SweepOutcome.write_manifest` emits a JSON-lines
    run manifest.
7.  A :class:`~repro.engine.faults.FaultPlan` (``faults=...``) injects
    deterministic exceptions, worker crashes or delays at chosen
    cells — the test harness for everything above.
"""

from __future__ import annotations

import time
import traceback
import zlib
from concurrent.futures import (
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Sequence

from ..core.results import CharacterizationResult
from ..core.simulator import SpmvSimulator
from ..errors import SweepCellError, SweepConfigError
from ..formats.base import VALUE_BYTES
from ..formats.corrupt import CorruptionSpec, StreamCorruptor
from ..formats.integrity import safe_decode
from ..formats.registry import PAPER_FORMATS, get_format
from ..hardware.config import DEFAULT_CONFIG, HardwareConfig
from ..observability import MetricsRegistry
from ..partition import PARTITION_SIZES, profile_table
from ..workloads.registry import Workload
from .cache import CacheStats, ContentKeyedCache
from .checkpoint import CheckpointState, CheckpointWriter, cell_digest, load_checkpoint
from .faults import FaultPlan
from .grid import EncodeSummary, FailedCell, SweepCell, SweepOutcome, build_grid
from .specs import WorkloadSpec
from .telemetry import CellTelemetry, RunTelemetry, workload_recipe_digest

__all__ = ["SweepRunner", "run_sweep", "ERROR_POLICIES"]

#: The supported per-cell error policies.
ERROR_POLICIES = ("collect", "fail_fast")

#: One chunk: (cell index in the grid, cell) pairs sharing a workload.
_Chunk = list[tuple[int, SweepCell]]

#: One chunk's outputs: results, encodings, cache stats, telemetry,
#: and (under the "collect" policy) per-cell failure records.
_ChunkOutput = tuple[
    list[tuple[int, CharacterizationResult]],
    dict[tuple[str, str], EncodeSummary],
    CacheStats,
    "list[CellTelemetry] | None",
    "MetricsRegistry | None",
    list[FailedCell],
]


def _materialize(cell: SweepCell, cache: ContentKeyedCache) -> Workload:
    """The cell's workload, building spec-based cells through the cache."""
    workload = cell.workload
    if isinstance(workload, WorkloadSpec):
        return cache.get_or_create(workload.cache_key, workload.build)
    return workload


def _corrupt_workload(
    workload: Workload, cell: SweepCell, corruption: CorruptionSpec
) -> Workload:
    """Run the cell's matrix through a seeded encode-damage-decode loop.

    The stream corruption a ``corrupt`` fault models happens on the
    *encoded* representation: the matrix is encoded in the cell's own
    format, one plane is damaged (seeded by the cell coordinates, so
    every retry and every worker sees identical damage), and the
    result is decoded back under the spec's decode mode.  Strict
    decoding raises :class:`~repro.errors.FormatIntegrityError` for
    detected damage — surfacing as an ordinary cell failure — while
    repair / lenient modes let a best-effort matrix continue into the
    characterization.
    """
    fmt = get_format(cell.format_name)
    encoded = fmt.encode(workload.matrix)
    corruptor = StreamCorruptor(
        seed=zlib.crc32(repr(cell.coords).encode("utf-8"))
    )
    damaged = corruptor.corrupt_encoding(
        encoded, corruption, key=cell.coords
    )
    matrix, _report = safe_decode(damaged, mode=corruption.decode_mode)
    return Workload(
        name=workload.name,
        group=workload.group,
        matrix=matrix,
        parameter=workload.parameter,
    )


def _run_cell(
    cell: SweepCell,
    cache: ContentKeyedCache,
    corruption: CorruptionSpec | None = None,
) -> tuple[CharacterizationResult, str]:
    """Characterize one cell; returns the result and its matrix key."""
    workload = _materialize(cell, cache)
    if corruption is not None:
        workload = _corrupt_workload(workload, cell, corruption)
    config = cell.resolved_config
    matrix_key = cache.matrix_key(workload.matrix)
    table = cache.get_or_create(
        ("profiles", matrix_key, config.partition_size, config.block_size),
        lambda: profile_table(
            workload.matrix,
            config.partition_size,
            block_size=config.block_size,
        ),
    )
    simulator = SpmvSimulator(config)
    result = simulator.run_format(cell.format_name, table, workload.name)
    return result, matrix_key


def _encode_cell(
    cell: SweepCell, cache: ContentKeyedCache
) -> EncodeSummary:
    """Whole-matrix encode accounting, shared across partition sizes."""
    workload = _materialize(cell, cache)
    matrix = workload.matrix
    matrix_key = cache.matrix_key(matrix)

    def build() -> EncodeSummary:
        fmt = get_format(cell.format_name)
        size = fmt.size(fmt.encode(matrix))
        dense_bytes = matrix.n_rows * matrix.n_cols * VALUE_BYTES
        ratio = (
            float("inf")
            if size.total_bytes == 0
            else dense_bytes / size.total_bytes
        )
        return EncodeSummary(
            workload=workload.name,
            format_name=cell.format_name,
            nnz=matrix.nnz,
            size=size,
            compression_ratio=ratio,
        )

    return cache.get_or_create(
        ("encode", matrix_key, cell.format_name), build
    )


def _failed_cell(
    index: int, cell: SweepCell, error: Exception, attempt: int
) -> FailedCell:
    """Build the structured failure record for one raised cell."""
    return FailedCell(
        index=index,
        workload=cell.workload_name,
        format_name=cell.format_name,
        partition_size=cell.partition_size,
        recipe_digest=workload_recipe_digest(cell.workload),
        error_type=type(error).__name__,
        message=str(error),
        traceback_text=traceback.format_exc(),
        attempts=attempt + 1,
    )


def _run_chunk(
    chunk: _Chunk,
    encode: bool,
    cache: ContentKeyedCache | None = None,
    telemetry: bool = False,
    error_policy: str = "fail_fast",
    faults: FaultPlan | None = None,
    attempt: int = 0,
    in_worker: bool = True,
    on_cell: "Callable | None" = None,
) -> _ChunkOutput:
    """Execute one chunk of cells against one shared cache.

    This is the single code path both the sequential and the parallel
    runner use; workers call it with a fresh cache, the sequential
    runner threads one cache through every chunk.  With ``telemetry``
    the chunk also returns one :class:`CellTelemetry` per cell and a
    worker-local :class:`MetricsRegistry`; both are picklable, so they
    aggregate across process boundaries exactly like the results do.

    ``error_policy="collect"`` turns per-cell exceptions into
    :class:`FailedCell` records (with the traceback formatted *here*,
    on the worker side of the pickle boundary); ``"fail_fast"``
    re-raises them as annotated :class:`SweepCellError`.  ``faults``
    and ``attempt`` drive deterministic fault injection; ``on_cell``
    (in-process only — it does not pickle) is invoked after every
    completed cell so the caller can checkpoint at cell granularity.
    """
    if cache is None:
        cache = ContentKeyedCache()
    results: list[tuple[int, CharacterizationResult]] = []
    encodings: dict[tuple[str, str], EncodeSummary] = {}
    failures: list[FailedCell] = []
    spans: list[CellTelemetry] | None = [] if telemetry else None
    metrics: MetricsRegistry | None = (
        MetricsRegistry() if telemetry else None
    )
    timed = telemetry or on_cell is not None
    chunk_start = time.perf_counter() if telemetry else 0.0
    for index, cell in chunk:
        cell_start = time.perf_counter() if timed else 0.0
        try:
            corruption = None
            if faults is not None:
                faults.before_cell(
                    cell.coords, index, attempt, in_worker
                )
                corruption = faults.corruption_for(
                    cell.coords, index, attempt
                )
            result, matrix_key = _run_cell(cell, cache, corruption)
            if encode:
                summary = _encode_cell(cell, cache)
                encodings[(summary.workload, summary.format_name)] = summary
        except Exception as error:  # noqa: BLE001 — policy decides
            if error_policy == "fail_fast":
                if isinstance(error, SweepCellError):
                    raise
                raise SweepCellError(
                    cell.coords,
                    f"{type(error).__name__}: {error}",
                    traceback_text=traceback.format_exc(),
                    recipe_digest=workload_recipe_digest(cell.workload),
                    attempts=attempt + 1,
                ) from error
            failures.append(_failed_cell(index, cell, error, attempt))
            continue
        results.append((index, result))
        wall = time.perf_counter() - cell_start if timed else 0.0
        if telemetry:
            spans.append(
                CellTelemetry(
                    index=index,
                    workload=result.workload,
                    format_name=cell.format_name,
                    partition_size=cell.partition_size,
                    cache_key=matrix_key,
                    wall_s=wall,
                )
            )
            metrics.incr("sweep.cells")
            metrics.observe("sweep.cell", wall)
        if on_cell is not None:
            on_cell(index, cell, result, wall, matrix_key)
    if telemetry:
        metrics.observe(
            "sweep.chunk", time.perf_counter() - chunk_start
        )
        metrics.incr("sweep.chunks")
    return results, encodings, cache.stats, spans, metrics, failures


class SweepRunner:
    """Executes sweep grids, concurrently and fault-tolerantly.

    Parameters
    ----------
    max_workers:
        Process count.  ``1`` (the default) runs everything in-process
        with a single cache shared across the whole grid; ``> 1``
        dispatches workload-chunks to a ``ProcessPoolExecutor``.
    encode:
        Also run each (workload, format) through the format's real
        ``encode``/``size`` path, caching the result across partition
        sizes, and report the exact whole-matrix transfer accounting in
        :attr:`SweepOutcome.encodings`.  Off by default because a dense
        encode of a paper-scale (8000 x 8000) matrix materializes the
        full array.
    telemetry:
        Record per-cell spans, worker timers and workload recipe
        digests into :attr:`SweepOutcome.telemetry` (the input for
        :meth:`SweepOutcome.write_manifest`).  Off by default; when off
        the run path is unchanged except for one branch per cell.
    error_policy:
        ``"collect"`` (default): a failing cell becomes a
        :class:`FailedCell` on :attr:`SweepOutcome.failures` and every
        other cell still runs.  ``"fail_fast"``: the first failure
        aborts the sweep with :class:`SweepCellError` (the pre-existing
        behavior).
    max_retries:
        How many times a chunk lost to a worker crash or chunk timeout
        is re-dispatched verbatim before it is bisected (multi-cell
        chunks) or declared failed (single cells).
    chunk_timeout:
        Optional per-chunk wall-clock budget in seconds for the
        parallel path; a chunk that exceeds it is treated like a
        crashed chunk (retried, bisected, then failed with
        ``error_type="ChunkTimeout"``).
    faults:
        A :class:`FaultPlan` (or its compact string form) injecting
        deterministic failures for testing; ``None`` disables.
    checkpoint:
        Path of an append-only JSONL checkpoint; every completed cell
        is appended and flushed as soon as the parent sees it.
    resume:
        Replay cells found in ``checkpoint`` (matched by recipe
        digest) instead of executing them.  Requires ``checkpoint``.
    max_pool_restarts:
        Pool rebuilds tolerated before the runner stops trusting the
        process pool and degrades to the in-process sequential path
        for the remaining work.  Default: scaled from ``max_retries``
        and the bisection depth of the largest chunk.
    """

    def __init__(
        self,
        max_workers: int = 1,
        encode: bool = False,
        telemetry: bool = False,
        error_policy: str = "collect",
        max_retries: int = 2,
        chunk_timeout: float | None = None,
        faults: "FaultPlan | str | None" = None,
        checkpoint: "str | Path | None" = None,
        resume: bool = False,
        max_pool_restarts: int | None = None,
    ) -> None:
        if not isinstance(max_workers, int) or isinstance(
            max_workers, bool
        ):
            raise SweepConfigError(
                f"max_workers must be an integer, got "
                f"{max_workers!r} ({type(max_workers).__name__})"
            )
        if max_workers < 1:
            raise SweepConfigError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if error_policy not in ERROR_POLICIES:
            raise SweepConfigError(
                f"error_policy must be one of "
                f"{', '.join(ERROR_POLICIES)}; got {error_policy!r}"
            )
        if not isinstance(max_retries, int) or isinstance(
            max_retries, bool
        ) or max_retries < 0:
            raise SweepConfigError(
                f"max_retries must be an integer >= 0, got "
                f"{max_retries!r}"
            )
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise SweepConfigError(
                f"chunk_timeout must be > 0 seconds, got {chunk_timeout}"
            )
        if max_pool_restarts is not None and max_pool_restarts < 0:
            raise SweepConfigError(
                f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
            )
        if resume and checkpoint is None:
            raise SweepConfigError(
                "resume=True requires a checkpoint path"
            )
        if isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        self.max_workers = max_workers
        self.encode = encode
        self.telemetry = telemetry
        self.error_policy = error_policy
        self.max_retries = max_retries
        self.chunk_timeout = chunk_timeout
        self.faults = faults
        self.checkpoint = None if checkpoint is None else Path(checkpoint)
        self.resume = resume
        self.max_pool_restarts = max_pool_restarts

    # ------------------------------------------------------------------
    @staticmethod
    def chunk_indexed(
        indexed: Sequence[tuple[int, SweepCell]], target_chunks: int = 1
    ) -> list[_Chunk]:
        """Group pre-indexed cells for dispatch (see :meth:`chunk_cells`)."""
        by_workload: dict[str, _Chunk] = {}
        for index, cell in indexed:
            by_workload.setdefault(
                cell.workload_name, []
            ).append((index, cell))
        if len(by_workload) >= target_chunks:
            return list(by_workload.values())
        refined: dict[tuple[str, int], _Chunk] = {}
        for index, cell in indexed:
            key = (cell.workload_name, cell.partition_size)
            refined.setdefault(key, []).append((index, cell))
        return list(refined.values())

    @staticmethod
    def chunk_cells(
        cells: Sequence[SweepCell], target_chunks: int = 1
    ) -> list[_Chunk]:
        """Group indexed cells for dispatch, preserving first-seen order.

        Cells of one workload share partition profiles (across formats)
        and encodings (across partition sizes), so the workload is the
        unit of cache affinity — and therefore the default unit of
        dispatch.  When that yields fewer chunks than
        ``target_chunks`` (e.g. one workload on many workers), chunks
        are refined to (workload, partition size) granularity; profile
        sharing across formats is preserved either way.
        """
        return SweepRunner.chunk_indexed(
            list(enumerate(cells)), target_chunks
        )

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[SweepCell]) -> SweepOutcome:
        """Execute every cell; results come back in grid order."""
        cells = list(cells)
        run_start = time.perf_counter() if self.telemetry else 0.0
        if not cells:
            return SweepOutcome(
                results=[],
                stats=CacheStats(),
                telemetry=(
                    RunTelemetry(workers=self.max_workers, n_chunks=0)
                    if self.telemetry
                    else None
                ),
            )

        digests: list[str] | None = None
        replayed: dict[int, CharacterizationResult] = {}
        replay_spans: list[CellTelemetry] = []
        replay_encodings: dict[tuple[str, str], EncodeSummary] = {}
        writer: CheckpointWriter | None = None
        if self.checkpoint is not None:
            digests = [cell_digest(cell) for cell in cells]
            if self.resume:
                state = self._load_resume_state()
                for index, digest in enumerate(digests):
                    found = state.result_for(digest)
                    if found is None:
                        continue
                    result, wall_s, cache_key = found
                    replayed[index] = result
                    replay_spans.append(
                        CellTelemetry(
                            index=index,
                            workload=result.workload,
                            format_name=cells[index].format_name,
                            partition_size=cells[index].partition_size,
                            cache_key=cache_key,
                            wall_s=wall_s,
                        )
                    )
                if self.encode:
                    replay_encodings = dict(state.encodings)
            writer = CheckpointWriter(self.checkpoint)

        pending = [
            (index, cell)
            for index, cell in enumerate(cells)
            if index not in replayed
        ]
        chunks = self.chunk_indexed(
            pending, target_chunks=self.max_workers
        )
        recovery_failures: list[FailedCell] = []
        recovery_counters: dict[str, int] = {}
        try:
            if not chunks:
                outputs: list[_ChunkOutput] = []
            elif self.max_workers == 1 or len(chunks) == 1:
                outputs = self._run_sequential(chunks, writer, digests)
            else:
                outputs, recovery_failures, recovery_counters = (
                    self._run_parallel(chunks, writer, digests)
                )
        finally:
            if writer is not None:
                writer.close()

        indexed: dict[int, CharacterizationResult] = dict(replayed)
        encodings: dict[tuple[str, str], EncodeSummary] = dict(
            replay_encodings
        )
        failures: list[FailedCell] = list(recovery_failures)
        stats = CacheStats()
        spans: list[CellTelemetry] = list(replay_spans)
        metrics = MetricsRegistry()
        for (
            chunk_results,
            chunk_encodings,
            chunk_stats,
            chunk_spans,
            chunk_metrics,
            chunk_failures,
        ) in outputs:
            indexed.update(dict(chunk_results))
            encodings.update(chunk_encodings)
            stats = stats.merged(chunk_stats)
            failures.extend(chunk_failures)
            if chunk_spans:
                spans.extend(chunk_spans)
            if chunk_metrics is not None:
                metrics = metrics.merged(chunk_metrics)
        failures.sort(key=lambda failed: failed.index)

        telemetry: RunTelemetry | None = None
        if self.telemetry:
            spans.sort(key=lambda span: span.index)
            for kind, count in sorted(stats.hits.items()):
                metrics.incr(f"cache.{kind}.hits", count)
            for kind, count in sorted(stats.misses.items()):
                metrics.incr(f"cache.{kind}.misses", count)
            for name, count in sorted(recovery_counters.items()):
                metrics.incr(name, count)
            if failures:
                metrics.incr("sweep.cells.failed", len(failures))
            if replayed:
                metrics.incr("sweep.cells.replayed", len(replayed))
            recipes: dict[str, str] = {}
            for cell in cells:
                if cell.workload_name not in recipes:
                    recipes[cell.workload_name] = workload_recipe_digest(
                        cell.workload
                    )
            telemetry = RunTelemetry(
                cells=spans,
                metrics=metrics,
                recipes=recipes,
                wall_s=time.perf_counter() - run_start,
                workers=self.max_workers,
                n_chunks=len(chunks),
                n_failed=len(failures),
                n_replayed=len(replayed),
            )
        return SweepOutcome(
            results=[
                indexed[index]
                for index in range(len(cells))
                if index in indexed
            ],
            stats=stats,
            encodings=encodings,
            telemetry=telemetry,
            failures=failures,
        )

    def run_grid(
        self,
        workloads: Sequence[Workload | WorkloadSpec],
        format_names: Sequence[str] = PAPER_FORMATS,
        partition_sizes: Sequence[int] = PARTITION_SIZES,
        base_config: HardwareConfig = DEFAULT_CONFIG,
    ) -> SweepOutcome:
        """Expand the cube with :func:`build_grid` and run it."""
        return self.run(
            build_grid(workloads, format_names, partition_sizes, base_config)
        )

    # ------------------------------------------------------------------
    def _load_resume_state(self) -> CheckpointState:
        if (
            self.checkpoint.exists()
            and self.checkpoint.stat().st_size > 0
        ):
            return load_checkpoint(self.checkpoint)
        return CheckpointState()

    def _checkpoint_chunk(
        self,
        writer: CheckpointWriter | None,
        digests: list[str] | None,
        chunk: _Chunk,
        output: _ChunkOutput,
        recorded_encodings: set,
    ) -> None:
        """Append one completed chunk's results to the checkpoint."""
        if writer is None:
            return
        results, chunk_encodings, _, chunk_spans, _, _ = output
        spans_by_index = {
            span.index: span for span in (chunk_spans or ())
        }
        by_index = dict(chunk)
        for index, result in results:
            span = spans_by_index.get(index)
            writer.record_result(
                digests[index],
                by_index[index],
                result,
                wall_s=span.wall_s if span is not None else 0.0,
                cache_key=span.cache_key if span is not None else "",
            )
        for key, summary in chunk_encodings.items():
            if key not in recorded_encodings:
                recorded_encodings.add(key)
                writer.record_encoding(summary)

    # ------------------------------------------------------------------
    def _run_sequential(
        self,
        chunks: list[_Chunk],
        writer: CheckpointWriter | None = None,
        digests: list[str] | None = None,
    ) -> list[_ChunkOutput]:
        cache = ContentKeyedCache()
        recorded_encodings: set = set()
        on_cell = None
        if writer is not None:
            cells_by_index = {
                index: cell
                for chunk in chunks
                for index, cell in chunk
            }

            def on_cell(index, cell, result, wall_s, matrix_key):
                writer.record_result(
                    digests[index],
                    cells_by_index[index],
                    result,
                    wall_s=wall_s,
                    cache_key=matrix_key,
                )

        outputs: list[_ChunkOutput] = []
        for chunk in chunks:
            output = _run_chunk(
                chunk,
                self.encode,
                cache,
                telemetry=self.telemetry,
                error_policy=self.error_policy,
                faults=self.faults,
                in_worker=False,
                on_cell=on_cell,
            )
            results, encodings, _, spans, metrics, failures = output
            outputs.append(
                (results, encodings, CacheStats(), spans, metrics, failures)
            )
            if writer is not None:
                for key, summary in encodings.items():
                    if key not in recorded_encodings:
                        recorded_encodings.add(key)
                        writer.record_encoding(summary)
        # the cache is shared, so its stats are reported once
        last = outputs[-1]
        outputs[-1] = (
            last[0], last[1], cache.stats, last[3], last[4], last[5]
        )
        return outputs

    # ------------------------------------------------------------------
    def _restart_budget(self, chunks: list[_Chunk]) -> int:
        if self.max_pool_restarts is not None:
            return self.max_pool_restarts
        biggest = max(len(chunk) for chunk in chunks)
        # each (retry budget + 1) dispatch cascade can recur once per
        # bisection level of the largest chunk
        depth = max(1, biggest.bit_length())
        return (self.max_retries + 1) * (depth + 1)

    def _run_parallel(
        self,
        chunks: list[_Chunk],
        writer: CheckpointWriter | None = None,
        digests: list[str] | None = None,
    ) -> tuple[list[_ChunkOutput], list[FailedCell], dict[str, int]]:
        pending: list[tuple[_Chunk, int]] = [
            (chunk, 0) for chunk in chunks
        ]
        outputs: list[_ChunkOutput] = []
        crash_failures: list[FailedCell] = []
        counters: dict[str, int] = {}
        recorded_encodings: set = set()
        restarts = 0
        max_restarts = self._restart_budget(chunks)
        degraded = False

        def bump(name: str, count: int = 1) -> None:
            counters[name] = counters.get(name, 0) + count

        def abandon(
            chunk: _Chunk, attempt: int, error_type: str, message: str
        ) -> None:
            """Retry, bisect, or give up on one lost chunk.

            Only called once dispatch is down to one chunk per pool
            (isolation rounds), so a loss is attributable to the chunk
            itself rather than to a pool-mate's crash.
            """
            next_attempt = attempt + 1
            if next_attempt <= self.max_retries:
                bump("sweep.chunk_retries")
                pending.append((chunk, next_attempt))
                return
            if len(chunk) > 1:
                bump("sweep.chunk_bisections")
                mid = len(chunk) // 2
                pending.append((chunk[:mid], 0))
                pending.append((chunk[mid:], 0))
                return
            index, cell = chunk[0]
            digest = workload_recipe_digest(cell.workload)
            if self.error_policy == "fail_fast":
                raise SweepCellError(
                    cell.coords,
                    f"{error_type}: {message}",
                    recipe_digest=digest,
                    attempts=next_attempt,
                )
            crash_failures.append(
                FailedCell(
                    index=index,
                    workload=cell.workload_name,
                    format_name=cell.format_name,
                    partition_size=cell.partition_size,
                    recipe_digest=digest,
                    error_type=error_type,
                    message=message,
                    attempts=next_attempt,
                )
            )

        # After the first pool break, dispatch one chunk per pool
        # ("isolation rounds"): inside a shared pool one crashing cell
        # takes every co-scheduled chunk down with it, so retry budgets
        # would be burned by innocent-bystander losses and bisection
        # could never exonerate the healthy half.
        isolating = False
        while pending:
            if degraded:
                # the pool cannot be trusted; finish in-process, where
                # an injected crash raises WorkerCrashError instead of
                # killing anything
                batch, pending = pending, []
                for chunk, attempt in batch:
                    output = _run_chunk(
                        chunk,
                        self.encode,
                        telemetry=self.telemetry,
                        error_policy=self.error_policy,
                        faults=self.faults,
                        attempt=attempt,
                        in_worker=False,
                    )
                    outputs.append(output)
                    self._checkpoint_chunk(
                        writer, digests, chunk, output, recorded_encodings
                    )
                continue

            if isolating:
                batch = [pending.pop(0)]
            else:
                batch, pending = pending, []
            workers = min(self.max_workers, len(batch))
            lost: list[tuple[_Chunk, int, str, str]] = []
            timed_out = False
            pool = ProcessPoolExecutor(max_workers=workers)
            try:
                futures = [
                    (
                        pool.submit(
                            _run_chunk,
                            chunk,
                            self.encode,
                            telemetry=self.telemetry,
                            error_policy=self.error_policy,
                            faults=self.faults,
                            attempt=attempt,
                            in_worker=True,
                        ),
                        chunk,
                        attempt,
                    )
                    for chunk, attempt in batch
                ]
                # collect in submission order for deterministic merging
                for future, chunk, attempt in futures:
                    try:
                        output = future.result(
                            timeout=self.chunk_timeout
                        )
                    except FuturesTimeoutError:
                        timed_out = True
                        future.cancel()
                        lost.append((
                            chunk,
                            attempt,
                            "ChunkTimeout",
                            f"chunk of {len(chunk)} cell(s) exceeded "
                            f"the {self.chunk_timeout}s wall budget",
                        ))
                    except BrokenProcessPool as error:
                        lost.append((
                            chunk,
                            attempt,
                            "WorkerCrashError",
                            str(error)
                            or "worker process terminated abruptly",
                        ))
                    else:
                        outputs.append(output)
                        self._checkpoint_chunk(
                            writer, digests, chunk, output,
                            recorded_encodings,
                        )
                if timed_out:
                    # the budget-blowing workers are still running;
                    # reclaim them before abandoning the pool
                    for process in list(
                        getattr(pool, "_processes", {}).values()
                    ):
                        try:
                            process.terminate()
                        except Exception:  # noqa: BLE001 — best effort
                            pass
            finally:
                pool.shutdown(wait=not timed_out, cancel_futures=True)

            if lost:
                restarts += 1
                counters["sweep.pool_restarts"] = restarts
                if restarts > max_restarts:
                    degraded = True
                    counters["sweep.degraded"] = 1
                if isolating:
                    for item in lost:
                        abandon(*item)
                else:
                    # a shared-pool loss is not attributable — any
                    # pool-mate may have crashed the pool — so
                    # re-enqueue verbatim (no retry budget burned) and
                    # switch to one-chunk-per-pool isolation rounds
                    isolating = True
                    for chunk, attempt, _error_type, _message in lost:
                        pending.append((chunk, attempt))
        return outputs, crash_failures, counters


def run_sweep(
    workloads: Sequence[Workload | WorkloadSpec],
    format_names: Sequence[str] = PAPER_FORMATS,
    partition_sizes: Sequence[int] = PARTITION_SIZES,
    base_config: HardwareConfig = DEFAULT_CONFIG,
    max_workers: int = 1,
    encode: bool = False,
    telemetry: bool = False,
    error_policy: str = "collect",
    max_retries: int = 2,
    chunk_timeout: float | None = None,
    faults: "FaultPlan | str | None" = None,
    checkpoint: "str | Path | None" = None,
    resume: bool = False,
) -> SweepOutcome:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(
        max_workers=max_workers,
        encode=encode,
        telemetry=telemetry,
        error_policy=error_policy,
        max_retries=max_retries,
        chunk_timeout=chunk_timeout,
        faults=faults,
        checkpoint=checkpoint,
        resume=resume,
    )
    return runner.run_grid(
        workloads, format_names, partition_sizes, base_config
    )
