"""Sweep orchestration: grids in, outcomes out, backends pluggable.

The runner owns *what* runs — grid expansion, cache-affine chunking,
checkpoint resume replay, and assembling the merged
:class:`~repro.engine.grid.SweepOutcome` — and delegates *where* it
runs to an executor backend (:mod:`repro.engine.executors`):

``backend="inline"``
    Everything in-process against one shared cache; the bit-identical
    reference configuration.
``backend="pool"``
    Chunks dispatched to a ``ProcessPoolExecutor`` with the full
    crash-recovery ladder (bounded retries, bisection down to the
    poisonous cell, one-chunk-per-pool isolation rounds, in-process
    degradation).
``backend="queue"``
    Chunks published to a file-based work queue that ``repro worker``
    processes — on this machine or any machine sharing the directory —
    claim by digest shard, execute, and checkpoint into per-worker
    shards the coordinator merges (:mod:`repro.engine.distributed`).
``backend="auto"`` (default)
    The historical rule: inline when ``max_workers == 1`` or there is
    only one chunk, the pool otherwise.

Every backend runs the same per-cell code path, so a sweep's results
are identical cell-for-cell no matter where it executed — checkpoints
included, which is what makes
:func:`~repro.engine.checkpoint.checkpoint_digest` comparison across
backends meaningful.

Orthogonal services the runner provides to all backends:

*   **Error policy** — ``"collect"`` (default) isolates failing cells
    into :class:`~repro.engine.grid.FailedCell` records;
    ``"fail_fast"`` aborts on the first failure with
    :class:`~repro.errors.SweepCellError`.
*   **Checkpointing** (``checkpoint=...``) — completed cells append to
    a JSONL checkpoint; ``resume=True`` replays them by recipe digest
    and executes only the remainder, bit-identically.
*   **Telemetry** (``telemetry=True``) — per-cell spans, merged worker
    metrics, cache counters, and each backend's recovery counters
    (``sweep.pool_restarts``, ``sweep.queue.reclaims``, ...).
*   **Fault injection** (``faults=...``) — deterministic exceptions,
    worker crashes, delays and stream corruption at chosen cells.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Sequence

from ..core.results import CharacterizationResult
from ..errors import SweepConfigError
from ..formats.registry import PAPER_FORMATS
from ..hardware.config import DEFAULT_CONFIG, HardwareConfig
from ..observability import MetricsRegistry
from ..partition import PARTITION_SIZES
from ..workloads.registry import Workload
from .cache import CacheStats
from .checkpoint import (
    CheckpointState,
    CheckpointWriter,
    cell_digest,
    load_checkpoint,
)
from .executors import (
    EXECUTOR_BACKENDS,
    CheckpointSink,
    ExecutionSettings,
    _Chunk,
    _ChunkOutput,
    make_executor,
)
from .chaos import ChaosPlan, install_plan, uninstall_plan
from .faults import FaultPlan
from .grid import (
    EncodeSummary,
    FailedCell,
    SweepCell,
    SweepOutcome,
    build_grid,
)
from .specs import WorkloadSpec
from .telemetry import CellTelemetry, RunTelemetry, workload_recipe_digest

__all__ = ["SweepRunner", "run_sweep", "ERROR_POLICIES"]

#: The supported per-cell error policies.
ERROR_POLICIES = ("collect", "fail_fast")


class SweepRunner:
    """Executes sweep grids, concurrently and fault-tolerantly.

    Parameters
    ----------
    max_workers:
        Worker count.  ``1`` (the default) runs everything in-process
        with a single cache shared across the whole grid; ``> 1``
        dispatches workload-chunks to the selected parallel backend.
    backend:
        Execution backend: ``"auto"`` (default), ``"inline"``,
        ``"pool"``, or ``"queue"`` (the distributed work-queue;
        configure it with ``queue_options``).
    encode:
        Also run each (workload, format) through the format's real
        ``encode``/``size`` path, caching the result across partition
        sizes, and report the exact whole-matrix transfer accounting in
        :attr:`SweepOutcome.encodings`.  Off by default because a dense
        encode of a paper-scale (8000 x 8000) matrix materializes the
        full array.
    telemetry:
        Record per-cell spans, worker timers and workload recipe
        digests into :attr:`SweepOutcome.telemetry` (the input for
        :meth:`SweepOutcome.write_manifest`).  Off by default; when off
        the run path is unchanged except for one branch per cell.
    error_policy:
        ``"collect"`` (default): a failing cell becomes a
        :class:`FailedCell` on :attr:`SweepOutcome.failures` and every
        other cell still runs.  ``"fail_fast"``: the first failure
        aborts the sweep with :class:`SweepCellError` (the pre-existing
        behavior).
    max_retries:
        How many times a chunk lost to a worker crash, a chunk timeout
        or an expired queue lease is re-dispatched verbatim before it
        is bisected (multi-cell chunks) or declared failed (single
        cells).
    chunk_timeout:
        Optional per-chunk wall-clock budget in seconds for the pool
        backend; a chunk that exceeds it is treated like a crashed
        chunk (retried, bisected, then failed with
        ``error_type="ChunkTimeout"``).
    faults:
        A :class:`FaultPlan` (or its compact string form) injecting
        deterministic failures for testing; ``None`` disables.
    checkpoint:
        Path of an append-only JSONL checkpoint; every completed cell
        is appended and flushed as soon as the parent sees it (the
        queue backend additionally keeps per-worker shard checkpoints
        it merges into this one).
    resume:
        Replay cells found in ``checkpoint`` (matched by recipe
        digest) instead of executing them.  Requires ``checkpoint``.
    max_pool_restarts:
        Pool rebuilds tolerated before the pool backend stops trusting
        the process pool and degrades to the in-process path for the
        remaining work.  Default: scaled from ``max_retries`` and the
        bisection depth of the largest chunk.
    queue_options:
        A :class:`~repro.engine.distributed.QueueOptions` for the
        ``"queue"`` backend (queue directory, spawned worker count,
        lease timeout, ...).  Rejected for any other backend.
    chaos:
        A :class:`~repro.engine.chaos.ChaosPlan` (or its compact
        string form) injecting deterministic *durability* faults —
        torn checkpoint writes, stale leases, full disks — for the
        chaos campaign; ``None`` disables.  Installed with
        coordinator semantics in this process (fatal faults raise
        :class:`~repro.errors.ChaosCrash`) and shipped to queue
        workers, which install it with worker semantics (fatal
        faults kill the worker).
    """

    def __init__(
        self,
        max_workers: int = 1,
        encode: bool = False,
        telemetry: bool = False,
        error_policy: str = "collect",
        max_retries: int = 2,
        chunk_timeout: float | None = None,
        faults: "FaultPlan | str | None" = None,
        checkpoint: "str | Path | None" = None,
        resume: bool = False,
        max_pool_restarts: int | None = None,
        backend: str = "auto",
        queue_options=None,
        chaos: "ChaosPlan | str | None" = None,
    ) -> None:
        if not isinstance(max_workers, int) or isinstance(
            max_workers, bool
        ):
            raise SweepConfigError(
                f"max_workers must be an integer, got "
                f"{max_workers!r} ({type(max_workers).__name__})"
            )
        if max_workers < 1:
            raise SweepConfigError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if error_policy not in ERROR_POLICIES:
            raise SweepConfigError(
                f"error_policy must be one of "
                f"{', '.join(ERROR_POLICIES)}; got {error_policy!r}"
            )
        if not isinstance(max_retries, int) or isinstance(
            max_retries, bool
        ) or max_retries < 0:
            raise SweepConfigError(
                f"max_retries must be an integer >= 0, got "
                f"{max_retries!r}"
            )
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise SweepConfigError(
                f"chunk_timeout must be > 0 seconds, got {chunk_timeout}"
            )
        if max_pool_restarts is not None and max_pool_restarts < 0:
            raise SweepConfigError(
                f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
            )
        if resume and checkpoint is None:
            raise SweepConfigError(
                "resume=True requires a checkpoint path"
            )
        if backend not in EXECUTOR_BACKENDS:
            raise SweepConfigError(
                f"backend must be one of "
                f"{', '.join(EXECUTOR_BACKENDS)}; got {backend!r}"
            )
        if queue_options is not None and backend != "queue":
            raise SweepConfigError(
                f"queue options require backend='queue', got "
                f"{backend!r}"
            )
        if isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        if isinstance(chaos, str):
            chaos = ChaosPlan.parse(chaos)
        self.max_workers = max_workers
        self.encode = encode
        self.telemetry = telemetry
        self.error_policy = error_policy
        self.max_retries = max_retries
        self.chunk_timeout = chunk_timeout
        self.faults = faults
        self.checkpoint = None if checkpoint is None else Path(checkpoint)
        self.resume = resume
        self.max_pool_restarts = max_pool_restarts
        self.backend = backend
        self.queue_options = queue_options
        self.chaos = chaos

    # ------------------------------------------------------------------
    @staticmethod
    def chunk_indexed(
        indexed: Sequence[tuple[int, SweepCell]], target_chunks: int = 1
    ) -> list[_Chunk]:
        """Group pre-indexed cells for dispatch (see :meth:`chunk_cells`)."""
        by_workload: dict[str, _Chunk] = {}
        for index, cell in indexed:
            by_workload.setdefault(
                cell.workload_name, []
            ).append((index, cell))
        if len(by_workload) >= target_chunks:
            return list(by_workload.values())
        refined: dict[tuple[str, int], _Chunk] = {}
        for index, cell in indexed:
            key = (cell.workload_name, cell.partition_size)
            refined.setdefault(key, []).append((index, cell))
        return list(refined.values())

    @staticmethod
    def chunk_cells(
        cells: Sequence[SweepCell], target_chunks: int = 1
    ) -> list[_Chunk]:
        """Group indexed cells for dispatch, preserving first-seen order.

        Cells of one workload share partition profiles (across formats)
        and encodings (across partition sizes), so the workload is the
        unit of cache affinity — and therefore the default unit of
        dispatch.  When that yields fewer chunks than
        ``target_chunks`` (e.g. one workload on many workers), chunks
        are refined to (workload, partition size) granularity; profile
        sharing across formats is preserved either way.
        """
        return SweepRunner.chunk_indexed(
            list(enumerate(cells)), target_chunks
        )

    def execution_settings(self) -> ExecutionSettings:
        """The backend-facing view of this runner's configuration."""
        return ExecutionSettings(
            encode=self.encode,
            telemetry=self.telemetry,
            error_policy=self.error_policy,
            faults=self.faults,
            max_retries=self.max_retries,
            chunk_timeout=self.chunk_timeout,
            max_workers=self.max_workers,
            max_pool_restarts=self.max_pool_restarts,
            chaos=self.chaos,
        )

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[SweepCell]) -> SweepOutcome:
        """Execute every cell; results come back in grid order."""
        if self.chaos is None:
            return self._run(cells)
        install_plan(self.chaos, role="coordinator")
        try:
            return self._run(cells)
        finally:
            uninstall_plan()

    def _run(self, cells: Sequence[SweepCell]) -> SweepOutcome:
        cells = list(cells)
        run_start = time.perf_counter() if self.telemetry else 0.0
        if not cells:
            return SweepOutcome(
                results=[],
                stats=CacheStats(),
                telemetry=(
                    RunTelemetry(workers=self.max_workers, n_chunks=0)
                    if self.telemetry
                    else None
                ),
            )

        digests: list[str] | None = None
        replayed: dict[int, CharacterizationResult] = {}
        replay_spans: list[CellTelemetry] = []
        replay_encodings: dict[tuple[str, str], EncodeSummary] = {}
        writer: CheckpointWriter | None = None
        if self.checkpoint is not None:
            digests = [cell_digest(cell) for cell in cells]
            if self.resume:
                state = self._load_resume_state()
                for index, digest in enumerate(digests):
                    found = state.result_for(digest)
                    if found is None:
                        continue
                    result, wall_s, cache_key = found
                    replayed[index] = result
                    replay_spans.append(
                        CellTelemetry(
                            index=index,
                            workload=result.workload,
                            format_name=cells[index].format_name,
                            partition_size=cells[index].partition_size,
                            cache_key=cache_key,
                            wall_s=wall_s,
                        )
                    )
                if self.encode:
                    replay_encodings = dict(state.encodings)
            writer = CheckpointWriter(self.checkpoint)

        pending = [
            (index, cell)
            for index, cell in enumerate(cells)
            if index not in replayed
        ]
        chunks = self.chunk_indexed(
            pending, target_chunks=self.max_workers
        )
        recovery_failures: list[FailedCell] = []
        recovery_counters: dict[str, int] = {}
        outputs: list[_ChunkOutput] = []
        try:
            if chunks:
                executor = make_executor(
                    self.execution_settings(),
                    backend=self.backend,
                    n_chunks=len(chunks),
                    queue_options=self.queue_options,
                )
                sink = (
                    CheckpointSink(writer, digests)
                    if writer is not None
                    else None
                )
                outputs, recovery_failures, recovery_counters = (
                    executor.run_chunks(chunks, sink)
                )
        finally:
            if writer is not None:
                writer.close()

        indexed: dict[int, CharacterizationResult] = dict(replayed)
        encodings: dict[tuple[str, str], EncodeSummary] = dict(
            replay_encodings
        )
        failures: list[FailedCell] = list(recovery_failures)
        stats = CacheStats()
        spans: list[CellTelemetry] = list(replay_spans)
        metrics = MetricsRegistry()
        for (
            chunk_results,
            chunk_encodings,
            chunk_stats,
            chunk_spans,
            chunk_metrics,
            chunk_failures,
        ) in outputs:
            indexed.update(dict(chunk_results))
            encodings.update(chunk_encodings)
            stats = stats.merged(chunk_stats)
            failures.extend(chunk_failures)
            if chunk_spans:
                spans.extend(chunk_spans)
            if chunk_metrics is not None:
                metrics = metrics.merged(chunk_metrics)
        failures.sort(key=lambda failed: failed.index)

        telemetry: RunTelemetry | None = None
        if self.telemetry:
            spans.sort(key=lambda span: span.index)
            for kind, count in sorted(stats.hits.items()):
                metrics.incr(f"cache.{kind}.hits", count)
            for kind, count in sorted(stats.misses.items()):
                metrics.incr(f"cache.{kind}.misses", count)
            for name, count in sorted(recovery_counters.items()):
                metrics.incr(name, count)
            if failures:
                metrics.incr("sweep.cells.failed", len(failures))
            if replayed:
                metrics.incr("sweep.cells.replayed", len(replayed))
            recipes: dict[str, str] = {}
            for cell in cells:
                if cell.workload_name not in recipes:
                    recipes[cell.workload_name] = workload_recipe_digest(
                        cell.workload
                    )
            telemetry = RunTelemetry(
                cells=spans,
                metrics=metrics,
                recipes=recipes,
                wall_s=time.perf_counter() - run_start,
                workers=self.max_workers,
                n_chunks=len(chunks),
                n_failed=len(failures),
                n_replayed=len(replayed),
            )
        return SweepOutcome(
            results=[
                indexed[index]
                for index in range(len(cells))
                if index in indexed
            ],
            stats=stats,
            encodings=encodings,
            telemetry=telemetry,
            failures=failures,
        )

    def run_grid(
        self,
        workloads: Sequence[Workload | WorkloadSpec],
        format_names: Sequence[str] = PAPER_FORMATS,
        partition_sizes: Sequence[int] = PARTITION_SIZES,
        base_config: HardwareConfig = DEFAULT_CONFIG,
    ) -> SweepOutcome:
        """Expand the cube with :func:`build_grid` and run it."""
        return self.run(
            build_grid(workloads, format_names, partition_sizes, base_config)
        )

    # ------------------------------------------------------------------
    def _load_resume_state(self) -> CheckpointState:
        if (
            self.checkpoint.exists()
            and self.checkpoint.stat().st_size > 0
        ):
            return load_checkpoint(self.checkpoint)
        return CheckpointState()


def run_sweep(
    workloads: Sequence[Workload | WorkloadSpec],
    format_names: Sequence[str] = PAPER_FORMATS,
    partition_sizes: Sequence[int] = PARTITION_SIZES,
    base_config: HardwareConfig = DEFAULT_CONFIG,
    max_workers: int = 1,
    encode: bool = False,
    telemetry: bool = False,
    error_policy: str = "collect",
    max_retries: int = 2,
    chunk_timeout: float | None = None,
    faults: "FaultPlan | str | None" = None,
    checkpoint: "str | Path | None" = None,
    resume: bool = False,
    backend: str = "auto",
    queue_options=None,
    chaos: "ChaosPlan | str | None" = None,
) -> SweepOutcome:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(
        max_workers=max_workers,
        encode=encode,
        telemetry=telemetry,
        error_policy=error_policy,
        max_retries=max_retries,
        chunk_timeout=chunk_timeout,
        faults=faults,
        checkpoint=checkpoint,
        resume=resume,
        backend=backend,
        queue_options=queue_options,
        chaos=chaos,
    )
    return runner.run_grid(
        workloads, format_names, partition_sizes, base_config
    )
