"""Digest-keyed single-flight execution for concurrent queries.

The serving layer answers many concurrent questions that reduce to the
same computation: two users asking to characterize the same matrix on
the same grid share one recipe digest, so only one of them should pay
for the sweep.  :class:`SingleFlight` is that sharing primitive — an
asyncio-native map from key to in-flight computation:

* the first caller of a key becomes the **leader** and starts the
  factory as an independent task;
* every caller that arrives while the key is in flight **coalesces**
  onto the leader's future and receives the *same* result object;
* the computation runs in its own task, so cancelling any waiter
  (including the leader's request) never cancels the shared work —
  late coalescers still get their answer;
* completion (or failure) clears the key: single-flight deduplicates
  *concurrent* work only, caching completed results is the caller's
  job (the server layers an LRU on top).

Everything is event-loop-local and lock-free in the asyncio sense —
state is only touched between awaits on one loop.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, Callable, Hashable, TypeVar

__all__ = ["SingleFlight", "SingleFlightStats"]

T = TypeVar("T")


@dataclass
class SingleFlightStats:
    """Counters of how much work coalescing saved."""

    #: Calls that started a new computation.
    leaders: int = 0
    #: Calls that joined an already in-flight computation.
    coalesced: int = 0
    #: Computations that completed with an exception.
    failures: int = 0

    @property
    def calls(self) -> int:
        return self.leaders + self.coalesced

    @property
    def coalesce_rate(self) -> float:
        return self.coalesced / self.calls if self.calls else 0.0


class SingleFlight:
    """Shares one in-flight computation among concurrent same-key calls."""

    def __init__(self) -> None:
        self._inflight: dict[Hashable, asyncio.Future] = {}
        self._tasks: set[asyncio.Task] = set()
        self.stats = SingleFlightStats()

    def __len__(self) -> int:
        return len(self._inflight)

    def is_inflight(self, key: Hashable) -> bool:
        return key in self._inflight

    async def run(
        self, key: Hashable, factory: Callable[[], Awaitable[T]]
    ) -> T:
        """The result of ``factory()``, shared with concurrent callers.

        If ``key`` is already in flight, awaits that computation
        instead of starting a second one.  The factory runs as its own
        task; cancellation of this coroutine abandons the wait but
        leaves the shared computation running for the other callers.
        Exceptions from the factory propagate to every waiter.
        """
        future = self._inflight.get(key)
        if future is not None:
            self.stats.coalesced += 1
            return await asyncio.shield(future)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        # if every waiter is cancelled nobody retrieves the result;
        # mark it retrieved so failed orphan flights don't warn
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = future
        self.stats.leaders += 1
        task = loop.create_task(self._compute(key, factory, future))
        # hold a strong reference so the loop cannot drop the task
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return await asyncio.shield(future)

    async def _compute(
        self,
        key: Hashable,
        factory: Callable[[], Awaitable[T]],
        future: asyncio.Future,
    ) -> None:
        try:
            result = await factory()
        except BaseException as error:  # noqa: BLE001 — forwarded
            self.stats.failures += 1
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_exception(error)
        else:
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_result(result)
