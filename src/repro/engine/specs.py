"""Lazy workload specifications for cheap cross-process dispatch.

A :class:`WorkloadSpec` names a workload by its generator and
parameters instead of carrying the materialized matrix.  Cells built
from specs pickle in a few hundred bytes, and the worker materializes
the matrix through its content-keyed cache — so a spec shared by many
cells is generated once per worker, observable as ``"matrix"`` cache
hits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable

from ..errors import WorkloadError
from ..workloads.band import band_matrix
from ..workloads.pde import poisson_2d
from ..workloads.random_matrices import random_matrix
from ..workloads.registry import Workload
from ..workloads.suitesparse import standin_by_id

__all__ = ["WorkloadSpec"]

_BUILDERS = {
    "random": random_matrix,
    "band": band_matrix,
    "poisson": poisson_2d,
    "standin": standin_by_id,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, picklable recipe for one workload matrix."""

    kind: str
    name: str
    params: tuple[tuple[str, Hashable], ...]
    group: str = ""
    parameter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _BUILDERS:
            raise WorkloadError(
                f"unknown workload spec kind {self.kind!r}; "
                f"known: {', '.join(sorted(_BUILDERS))}"
            )

    # ------------------------------------------------------------------
    # Constructors for the three generator families
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls, n: int, density: float, seed: int = 0, name: str = ""
    ) -> "WorkloadSpec":
        return cls(
            kind="random",
            name=name or f"rand-{density:g}",
            params=(("n", n), ("density", density), ("seed", seed)),
            group="random",
            parameter=density,
        )

    @classmethod
    def band(
        cls, n: int, width: int, seed: int = 0, name: str = ""
    ) -> "WorkloadSpec":
        return cls(
            kind="band",
            name=name or f"band-{width}",
            params=(("n", n), ("width", width), ("seed", seed)),
            group="band",
            parameter=float(width),
        )

    @classmethod
    def poisson(cls, grid: int, name: str = "") -> "WorkloadSpec":
        return cls(
            kind="poisson",
            name=name or f"poisson-{grid}",
            params=(("grid", grid),),
            group="pde",
        )

    @classmethod
    def standin(
        cls, table1_id: str, max_dim: int = 2048, seed: int = 0
    ) -> "WorkloadSpec":
        return cls(
            kind="standin",
            name=table1_id,
            params=(
                ("matrix_id", table1_id),
                ("max_dim", max_dim),
                ("seed", seed),
            ),
            group="suitesparse",
        )

    # ------------------------------------------------------------------
    @property
    def cache_key(self) -> tuple:
        return ("matrix", self.kind, self.name, self.params)

    @property
    def recipe_digest(self) -> str:
        """Stable content digest of the generator recipe.

        Computed from the spec parameters alone (no matrix
        materialization); used by run manifests to identify workloads
        across runs and machines.
        """
        payload = repr(("spec", self.kind, self.name, self.params))
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=16
        ).hexdigest()

    def build(self) -> Workload:
        """Materialize the workload (called through the cache)."""
        matrix = _BUILDERS[self.kind](**dict(self.params))
        return Workload(
            name=self.name,
            group=self.group or self.kind,
            matrix=matrix,
            parameter=self.parameter,
        )
