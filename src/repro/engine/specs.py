"""Lazy workload specifications for cheap cross-process dispatch.

A :class:`WorkloadSpec` names a workload by its generator and
parameters instead of carrying the materialized matrix.  Cells built
from specs pickle in a few hundred bytes, and the worker materializes
the matrix through its content-keyed cache — so a spec shared by many
cells is generated once per worker, observable as ``"matrix"`` cache
hits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import TYPE_CHECKING, Hashable

from ..errors import WorkloadError
from ..workloads.band import band_matrix
from ..workloads.pde import poisson_2d
from ..workloads.random_matrices import random_matrix
from ..workloads.registry import Workload
from ..workloads.suitesparse import standin_by_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..partition import ProfileTable

__all__ = ["WorkloadSpec", "StreamedMatrixSpec"]


def _mtx_matrix(content: str):
    """Parse inline MatrixMarket text (the untrusted-workload kind).

    Serve queries may carry a literal ``.mtx`` body instead of a
    generator recipe; the serve layer proves the content survives
    parse/profile inside the :mod:`repro.guard.sandbox` resource
    boundary *before* any spec built from it reaches a worker.
    """
    from ..io import loads

    return loads(content)


_BUILDERS = {
    "random": random_matrix,
    "band": band_matrix,
    "poisson": poisson_2d,
    "standin": standin_by_id,
    "mtx": _mtx_matrix,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, picklable recipe for one workload matrix."""

    kind: str
    name: str
    params: tuple[tuple[str, Hashable], ...]
    group: str = ""
    parameter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _BUILDERS:
            raise WorkloadError(
                f"unknown workload spec kind {self.kind!r}; "
                f"known: {', '.join(sorted(_BUILDERS))}"
            )

    # ------------------------------------------------------------------
    # Constructors for the three generator families
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls, n: int, density: float, seed: int = 0, name: str = ""
    ) -> "WorkloadSpec":
        return cls(
            kind="random",
            name=name or f"rand-{density:g}",
            params=(("n", n), ("density", density), ("seed", seed)),
            group="random",
            parameter=density,
        )

    @classmethod
    def band(
        cls, n: int, width: int, seed: int = 0, name: str = ""
    ) -> "WorkloadSpec":
        return cls(
            kind="band",
            name=name or f"band-{width}",
            params=(("n", n), ("width", width), ("seed", seed)),
            group="band",
            parameter=float(width),
        )

    @classmethod
    def poisson(cls, grid: int, name: str = "") -> "WorkloadSpec":
        return cls(
            kind="poisson",
            name=name or f"poisson-{grid}",
            params=(("grid", grid),),
            group="pde",
        )

    @classmethod
    def mtx(cls, content: str, name: str = "") -> "WorkloadSpec":
        """An inline (untrusted) MatrixMarket workload."""
        if not content:
            raise WorkloadError("mtx workload content must be non-empty")
        digest = hashlib.blake2b(
            content.encode("utf-8", "surrogateescape"), digest_size=8
        ).hexdigest()
        return cls(
            kind="mtx",
            name=name or f"mtx-{digest}",
            params=(("content", content),),
            group="untrusted",
        )

    @classmethod
    def standin(
        cls, table1_id: str, max_dim: int = 2048, seed: int = 0
    ) -> "WorkloadSpec":
        return cls(
            kind="standin",
            name=table1_id,
            params=(
                ("matrix_id", table1_id),
                ("max_dim", max_dim),
                ("seed", seed),
            ),
            group="suitesparse",
        )

    # ------------------------------------------------------------------
    @property
    def cache_key(self) -> tuple:
        return ("matrix", self.kind, self.name, self.params)

    @property
    def recipe_digest(self) -> str:
        """Stable content digest of the generator recipe.

        Computed from the spec parameters alone (no matrix
        materialization); used by run manifests to identify workloads
        across runs and machines.
        """
        payload = repr(("spec", self.kind, self.name, self.params))
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=16
        ).hexdigest()

    def build(self) -> Workload:
        """Materialize the workload (called through the cache)."""
        matrix = _BUILDERS[self.kind](**dict(self.params))
        return Workload(
            name=self.name,
            group=self.group or self.kind,
            matrix=matrix,
            parameter=self.parameter,
        )


@dataclass(frozen=True)
class StreamedMatrixSpec:
    """An out-of-core workload: a ``.mtx`` file profiled tile-by-tile.

    Unlike :class:`WorkloadSpec`, this spec never materializes a
    :class:`~repro.matrix.SparseMatrix`: the sweep profiles the file
    through :func:`repro.io.streaming_profile_table`, which reads
    bounded batches of entries and folds them into the per-tile
    statistics the hardware model needs
    (:class:`~repro.partition.ProfileAccumulator`).  Peak memory is the
    batch buffer (bounded by ``memory_budget_mb``) plus the columnar
    accumulator state — proportional to distinct (tile, row/col/diag)
    keys, not to ``nnz`` and not to the Python-object overhead of a
    full triplet parse.

    The recipe digest is a content digest of the *file bytes*, so two
    machines pointing at identical files claim, checkpoint and dedupe
    the same cells.  Paths that inherently require a materialized
    matrix (``encode=True``, ``corrupt`` faults) reject streamed cells
    with :class:`~repro.errors.SweepConfigError` instead of silently
    densifying.
    """

    path: str
    name: str
    group: str = "streamed"
    parameter: float = 0.0
    #: Bounds the streaming reader's in-flight entry batches (MiB).
    memory_budget_mb: float = 64.0

    def __post_init__(self) -> None:
        if self.memory_budget_mb <= 0:
            raise WorkloadError(
                f"memory_budget_mb must be > 0, got "
                f"{self.memory_budget_mb}"
            )

    @classmethod
    def of_file(
        cls,
        path: "str | Path",
        name: str = "",
        memory_budget_mb: float = 64.0,
    ) -> "StreamedMatrixSpec":
        path = Path(path)
        return cls(
            path=str(path),
            name=name or path.stem,
            memory_budget_mb=memory_budget_mb,
        )

    @cached_property
    def content_key(self) -> str:
        """Content digest of the file bytes (computed once, streamed)."""
        digest = hashlib.blake2b(digest_size=16)
        with open(self.path, "rb") as stream:
            for block in iter(lambda: stream.read(1 << 20), b""):
                digest.update(block)
        return digest.hexdigest()

    @property
    def recipe_digest(self) -> str:
        """Stable digest of the recipe: the file's exact content."""
        payload = repr(("streamed", self.content_key))
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=16
        ).hexdigest()

    def profile(
        self, partition_size: int, block_size: int = 4
    ) -> "ProfileTable":
        """Stream the file into a :class:`ProfileTable` at one tiling."""
        from ..io import streaming_profile_table

        return streaming_profile_table(
            self.path,
            partition_size,
            block_size=block_size,
            memory_budget_mb=self.memory_budget_mb,
        )
