"""Per-cell sweep telemetry, aggregated correctly across processes.

Each worker records one :class:`CellTelemetry` span per executed cell
plus worker-local counters and timers in a
:class:`~repro.observability.MetricsRegistry`; the parent process
merges everything into one :class:`RunTelemetry` whose cells are in
grid order regardless of which worker ran them.  All objects here are
plain picklable dataclasses — they are the payload that crosses the
``ProcessPoolExecutor`` boundary.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..observability import MetricsRegistry
from ..workloads.registry import Workload
from .cache import matrix_content_key
from .specs import WorkloadSpec

__all__ = ["CellTelemetry", "RunTelemetry", "workload_recipe_digest"]


def workload_recipe_digest(workload: Workload | WorkloadSpec) -> str:
    """Content digest of how a workload is produced.

    Anything carrying a ``recipe_digest`` attribute — a
    :class:`WorkloadSpec`, an out-of-core
    :class:`~repro.engine.specs.StreamedMatrixSpec`, the queue
    backend's :class:`~repro.engine.distributed.StoredWorkload` —
    digests its recipe directly, so the digest is stable without
    materializing the matrix; materialized workloads digest the matrix
    triplets themselves.  Two runs of the same grid therefore carry
    identical digests, which is what lets ``repro stats --against``
    align them and what keys distributed work claiming.
    """
    digest = getattr(workload, "recipe_digest", None)
    if digest is not None:
        return digest
    return matrix_content_key(workload.matrix)


@dataclass(frozen=True)
class CellTelemetry:
    """One executed cell's span: coordinates, cache key, wall time."""

    index: int
    workload: str
    format_name: str
    partition_size: int
    cache_key: str
    wall_s: float

    @property
    def coords(self) -> tuple[str, str, int]:
        return (self.workload, self.format_name, self.partition_size)


@dataclass
class RunTelemetry:
    """Everything one sweep run recorded about itself.

    ``cells`` is in grid order; ``metrics`` is the merge of every
    worker's registry plus the run-level cache counters
    (``cache.<kind>.hits`` / ``cache.<kind>.misses``); ``recipes`` maps
    workload names to their recipe digests.
    """

    cells: list[CellTelemetry] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    recipes: dict[str, str] = field(default_factory=dict)
    wall_s: float = 0.0
    workers: int = 1
    n_chunks: int = 1
    #: Cells that produced no result (error_policy="collect").
    n_failed: int = 0
    #: Cells replayed from a checkpoint instead of executed.
    n_replayed: int = 0

    def cell(self, index: int) -> CellTelemetry:
        for cell in self.cells:
            if cell.index == index:
                return cell
        raise KeyError(index)

    def cache_keys(self) -> set[str]:
        return {cell.cache_key for cell in self.cells}

    @property
    def cells_wall_s(self) -> float:
        return sum(cell.wall_s for cell in self.cells)

    def digest(self) -> str:
        """Order-insensitive digest of what the run *did* (not timing).

        Covers the cell coordinate set, the cache-key set and the
        workload recipes — two semantically equivalent runs (same grid,
        any worker count) produce the same digest.
        """
        payload = repr((
            sorted(
                (c.coords, c.cache_key) for c in self.cells
            ),
            sorted(self.recipes.items()),
        ))
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=16
        ).hexdigest()
