"""Exception hierarchy for the Copernicus reproduction library.

Every error raised by this package derives from :class:`CopernicusError`,
so callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class CopernicusError(Exception):
    """Base class for all errors raised by this library."""


class FormatError(CopernicusError):
    """A sparse-format encode/decode operation failed or was invalid."""


class UnknownFormatError(FormatError):
    """A format name was not found in the registry."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        self.name = name
        self.known = known
        super().__init__(
            f"unknown sparse format {name!r}; known formats: {', '.join(known)}"
        )


class ShapeError(CopernicusError):
    """An array or matrix had an incompatible shape."""


class PartitionError(CopernicusError):
    """Matrix partitioning was requested with invalid parameters."""


class WorkloadError(CopernicusError):
    """A workload generator received invalid parameters."""


class HardwareConfigError(CopernicusError):
    """The hardware model was configured with invalid parameters."""


class SimulationError(CopernicusError):
    """The characterization simulator could not complete a run."""


class SweepConfigError(SimulationError, ValueError):
    """The sweep engine was configured with invalid parameters.

    Derives from both :class:`CopernicusError` (via
    :class:`SimulationError`) and :class:`ValueError`, so the CLI can
    report it cleanly while ``except ValueError`` callers keep working.
    """


class ObservabilityError(CopernicusError):
    """A metrics or telemetry operation failed."""


class ManifestError(ObservabilityError):
    """A run manifest could not be written, read or interpreted."""


class SweepCellError(SimulationError):
    """One cell of a sweep grid failed.

    Carries the failing cell's (workload, format, partition size)
    coordinates so a failure inside a worker process still names the
    exact experiment that died.
    """

    def __init__(self, coords: tuple[str, str, int], reason: str) -> None:
        self.coords = tuple(coords)
        self.reason = reason
        super().__init__(
            f"sweep cell (workload={coords[0]!r}, format={coords[1]!r}, "
            f"p={coords[2]}) failed: {reason}"
        )

    def __reduce__(self):  # keep coords across process boundaries
        return (SweepCellError, (self.coords, self.reason))
