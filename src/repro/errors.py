"""Exception hierarchy for the Copernicus reproduction library.

Every error raised by this package derives from :class:`CopernicusError`,
so callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class CopernicusError(Exception):
    """Base class for all errors raised by this library."""


class FormatError(CopernicusError):
    """A sparse-format encode/decode operation failed or was invalid."""


class FormatIntegrityError(FormatError):
    """An encoded stream failed an integrity check.

    The structured counterpart of the free-text :class:`FormatError`
    messages raised by :mod:`repro.formats.validate`: every check names
    the format, the plane (array) it inspected, a stable check id, the
    offending element offset when one is attributable, and the *kind*
    of violation (``"crc"``, ``"truncation"``, ``"bounds"``,
    ``"monotonicity"``, ``"duplicate"``, ``"padding"``, ...), so
    corruption campaigns can aggregate detections by taxonomy instead
    of string-matching messages.  Subclasses :class:`FormatError`, so
    pre-existing ``except FormatError`` callers keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        format_name: str = "",
        plane: str = "",
        check: str = "",
        offset: "int | None" = None,
        kind: str = "structure",
    ) -> None:
        self.format_name = format_name
        self.plane = plane
        self.check = check
        self.offset = offset
        self.kind = kind
        where = format_name or "stream"
        if plane:
            where = f"{where}.{plane}"
        if offset is not None:
            where = f"{where}[{offset}]"
        tag = f"[{kind}:{check}] " if check else f"[{kind}] "
        super().__init__(f"invalid encoding: {tag}{where}: {message}")

    def __reduce__(self):  # keep the taxonomy across process boundaries
        return (
            _rebuild_integrity_error,
            (
                self.args[0],
                self.format_name,
                self.plane,
                self.check,
                self.offset,
                self.kind,
            ),
        )


def _rebuild_integrity_error(
    message: str,
    format_name: str,
    plane: str,
    check: str,
    offset: "int | None",
    kind: str,
) -> FormatIntegrityError:
    """Unpickle helper: rebuild without re-deriving the message."""
    error = FormatIntegrityError.__new__(FormatIntegrityError)
    Exception.__init__(error, message)
    error.format_name = format_name
    error.plane = plane
    error.check = check
    error.offset = offset
    error.kind = kind
    return error


class ValidationError(FormatIntegrityError):
    """An encoding's declared extents cannot be trusted.

    The dense-bomb guard: raised by
    :func:`repro.formats.validate.validate_encoding` *before* any
    allocation whose size is derived from attacker-controlled headers
    (declared dimensions, nnz, plane widths), so a hostile encoding
    that lies about its extent is refused at header-inspection cost,
    never at allocation cost.  ``reason`` is a stable machine-readable
    tag (``"negative-extent"``, ``"extent-overflow"``,
    ``"nnz-overflow"``, ...); the usual
    :class:`FormatIntegrityError` taxonomy fields are also populated,
    so pre-existing ``except FormatError`` callers keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str,
        format_name: str = "",
        plane: str = "",
        offset: "int | None" = None,
    ) -> None:
        self.reason = reason
        super().__init__(
            message,
            format_name=format_name,
            plane=plane,
            check=reason,
            offset=offset,
            kind="extent",
        )

    def __reduce__(self):  # keep the reason across process boundaries
        return (
            _rebuild_validation_error,
            (
                self.args[0],
                self.reason,
                self.format_name,
                self.plane,
                self.offset,
            ),
        )


def _rebuild_validation_error(
    message: str,
    reason: str,
    format_name: str,
    plane: str,
    offset: "int | None",
) -> ValidationError:
    """Unpickle helper: rebuild without re-deriving the message."""
    error = ValidationError.__new__(ValidationError)
    Exception.__init__(error, message)
    error.reason = reason
    error.format_name = format_name
    error.plane = plane
    error.check = reason
    error.offset = offset
    error.kind = "extent"
    return error


class UnknownFormatError(FormatError):
    """A format name was not found in the registry."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        self.name = name
        self.known = known
        super().__init__(
            f"unknown sparse format {name!r}; known formats: {', '.join(known)}"
        )


class ShapeError(CopernicusError):
    """An array or matrix had an incompatible shape."""


class PartitionError(CopernicusError):
    """Matrix partitioning was requested with invalid parameters."""


class WorkloadError(CopernicusError):
    """A workload generator received invalid parameters."""


class HardwareConfigError(CopernicusError):
    """The hardware model was configured with invalid parameters."""


class SimulationError(CopernicusError):
    """The characterization simulator could not complete a run."""


class SweepConfigError(SimulationError, ValueError):
    """The sweep engine was configured with invalid parameters.

    Derives from both :class:`CopernicusError` (via
    :class:`SimulationError`) and :class:`ValueError`, so the CLI can
    report it cleanly while ``except ValueError`` callers keep working.
    """


class ObservabilityError(CopernicusError):
    """A metrics or telemetry operation failed."""


class ManifestError(ObservabilityError):
    """A run manifest could not be written, read or interpreted."""


class WorkerCrashError(SimulationError):
    """A sweep worker process died (or was fenced off) mid-chunk.

    Raised in the parent when a ``ProcessPoolExecutor`` worker
    disappears and the lost cells cannot be recovered within the retry
    budget; raised directly by the fault-injection harness when a
    ``crash`` fault trips on the in-process path (where actually
    killing the process would take the whole run down with it).
    """


class CheckpointError(CopernicusError):
    """A sweep checkpoint file could not be written, read or trusted."""


class QueueError(SimulationError):
    """A distributed work-queue directory is missing, stale or corrupt.

    Raised when a worker is pointed at a directory that is not a queue
    (or one created by an incompatible schema), when a content blob a
    :class:`~repro.engine.distributed.StoredWorkload` refers to has
    vanished, or when the coordinator finds the queue in a state it
    cannot reconcile.
    """


class ChaosError(SimulationError):
    """A chaos campaign invariant was violated.

    Raised by ``repro chaos`` when a recovered run's checkpoint digest
    diverges from the sequential reference, cells were lost or
    duplicated, or ``repro doctor --check`` still finds damage after
    repair — i.e. when the durability layer actually failed, not when
    a fault merely fired.
    """


class ChaosCrash(ChaosError):
    """An injected coordinator-side crash (the fault *firing*).

    The coordinator analog of a worker's ``os._exit``: raised at the
    chaos-chosen instant so the campaign harness regains control with
    the on-disk state exactly as a real crash would leave it.  Never a
    test failure by itself — recovery from it is what gets gated.
    """


class DoctorError(SimulationError):
    """``repro doctor`` could not audit the given state directory."""


class ServeError(CopernicusError):
    """The characterization server (or its client) failed.

    Every subclass carries an HTTP ``status`` so the server can map a
    raised error to a structured JSON response without inspecting
    types, and so the taxonomy doubles as the wire contract: the
    ``error.type`` field of a ``serve/v1`` error payload is the
    exception class name.
    """

    status: int = 500


class ServeRequestError(ServeError):
    """A query was malformed or referenced unknown formats/workloads."""

    status = 400


class ServeOverloadedError(ServeError):
    """Admission control rejected the request (queue full)."""

    status = 429


class ServeBudgetError(ServeError):
    """The per-request time budget expired with no degradable answer."""

    status = 504


class ServeDrainingError(ServeError):
    """The server is draining (SIGTERM/SIGINT) and sheds this request.

    Distinct from :class:`ServeOverloadedError`: a 429 invites the
    client to retry the same server after backoff, while a drain 503
    means this process is going away and the client should fail over.
    """

    status = 503


class ServeCircuitOpenError(ServeError):
    """A route's circuit breaker is open and sheds this request.

    The backend behind the route failed repeatedly and recently; the
    server answers 503 with ``Retry-After`` set to the breaker's
    remaining recovery time instead of feeding more work into a
    failing dependency.  Distinct from
    :class:`ServeOverloadedError` (429: healthy but full) and
    :class:`ServeDrainingError` (503: process going away).
    """

    status = 503


class ServeShedError(ServeError):
    """SLO-aware load shedding refused this request.

    Raised when request p99 latency or queue depth has crossed the
    configured thresholds and this request's priority class is below
    the current shed line.  Clients retry after ``Retry-After``;
    higher-priority traffic keeps flowing.
    """

    status = 503


class ServeSandboxError(ServeError):
    """An untrusted matrix failed the sandbox boundary.

    The poison-matrix verdict: parsing/profiling the submitted matrix
    in the resource-sandboxed subprocess ended in something other than
    ``ok`` (timeout, oom, oversize, crash, or a typed rejection), so
    the server refuses the query instead of letting the matrix near a
    serve worker.  Carries the verdict kind for the structured body.
    """

    status = 400

    def __init__(self, message: str, verdict_kind: str = "") -> None:
        self.verdict_kind = verdict_kind
        super().__init__(message)


class LoadGenError(ServeError):
    """The load generator could not complete, or a --require gate failed."""

    status = 500


class GuardError(CopernicusError):
    """The untrusted-input defense layer (``repro.guard``) failed.

    Base class for sandbox/fuzz infrastructure errors and for campaign
    gate violations — *not* for the hostile inputs themselves, which
    always come back as typed verdicts, never as exceptions.
    """


class SandboxError(GuardError):
    """The sandbox harness itself misbehaved (not the sandboxed input).

    Raised for infrastructure failures: a child that cannot be
    spawned, a protocol violation on the verdict pipe, limits that are
    not satisfiable.  A hostile input can never raise this — it gets a
    :class:`~repro.guard.sandbox.ResourceVerdict` instead.
    """


class FuzzError(GuardError):
    """The fuzzing subsystem was misconfigured or a corpus is corrupt."""


class AdvisorError(CopernicusError):
    """The learned fast-path advisor could not answer a query.

    Raised when a prediction is requested outside the trained model's
    coverage (unknown objective, format or partition size).  Callers
    holding an exact fallback — the serve layer, ``repro advise`` —
    catch this and degrade to the exact simulation path.
    """


class AdvisorModelError(AdvisorError):
    """An ``advisor_model/v1`` artifact could not be read or trusted.

    Covers missing/unreadable files, malformed JSON, unknown schema
    versions, feature-schema mismatches against the running library,
    and content-digest mismatches (a corrupt or hand-edited artifact).
    """


class SweepCellError(SimulationError):
    """One cell of a sweep grid failed.

    Carries the failing cell's (workload, format, partition size)
    coordinates so a failure inside a worker process still names the
    exact experiment that died, plus — because exception chains do not
    survive pickling across the process boundary — the formatted
    worker-side traceback (``traceback_text``) and the workload's
    recipe digest (``recipe_digest``) so the failure is debuggable and
    attributable from the parent process.
    """

    def __init__(
        self,
        coords: tuple[str, str, int],
        reason: str,
        traceback_text: str = "",
        recipe_digest: str = "",
        attempts: int = 1,
    ) -> None:
        self.coords = tuple(coords)
        self.reason = reason
        self.traceback_text = traceback_text
        self.recipe_digest = recipe_digest
        self.attempts = attempts
        recipe = f", recipe={recipe_digest[:12]}" if recipe_digest else ""
        super().__init__(
            f"sweep cell (workload={coords[0]!r}, format={coords[1]!r}, "
            f"p={coords[2]}{recipe}) failed: {reason}"
        )

    def __reduce__(self):  # keep every attribute across process boundaries
        return (
            SweepCellError,
            (
                self.coords,
                self.reason,
                self.traceback_text,
                self.recipe_digest,
                self.attempts,
            ),
        )
