"""Sparse compression formats characterized by Copernicus.

The package provides the dense baseline, the paper's seven formats
(CSR, CSC, BCSR, COO, LIL, ELL, DIA), and the DOK/SELL variants the
paper describes alongside them.
"""

from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)
from .bcsr import DEFAULT_BLOCK_SIZE, BcsrFormat
from .bitmap import BitmapFormat
from .convert import convert, decode_any, encode_as
from .coo import CooFormat
from .csc import CscFormat
from .csr import CsrFormat
from .dense import DenseFormat
from .dia import DiaFormat, diagonal_length, diagonal_slot
from .dok import DokFormat, dok_table
from .ell import EllFormat
from .hybrid import DEFAULT_HYBRID_WIDTH, EllCooFormat
from .jds import JdsFormat
from .lil import LilFormat
from .sell_c_sigma import SellCSigmaFormat
from .registry import (
    ALL_FORMATS,
    PAPER_FORMATS,
    SPARSE_FORMATS,
    available_formats,
    get_format,
    register_format,
)
from .corrupt import (
    CORRUPTION_KINDS,
    CorruptionSpec,
    StreamCorruptor,
    parse_corruption,
)
from .integrity import (
    DECODE_MODES,
    FRAME_MAGIC,
    FrameLayout,
    PlaneSpan,
    RepairAction,
    RepairReport,
    decode_framed,
    format_for,
    frame,
    frame_layout,
    frame_overhead_bytes,
    repair_encoding,
    safe_decode,
    unframe,
)
from .sell import DEFAULT_SLICE_HEIGHT, SellFormat
from .validate import VALIDATED_FORMATS, validate_encoding

__all__ = [
    "INDEX_BYTES",
    "VALUE_BYTES",
    "EncodedMatrix",
    "SizeBreakdown",
    "SparseFormat",
    "DenseFormat",
    "CsrFormat",
    "CscFormat",
    "BcsrFormat",
    "BitmapFormat",
    "CooFormat",
    "DokFormat",
    "LilFormat",
    "EllFormat",
    "EllCooFormat",
    "JdsFormat",
    "SellFormat",
    "SellCSigmaFormat",
    "DiaFormat",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_HYBRID_WIDTH",
    "DEFAULT_SLICE_HEIGHT",
    "ALL_FORMATS",
    "PAPER_FORMATS",
    "SPARSE_FORMATS",
    "available_formats",
    "get_format",
    "register_format",
    "convert",
    "encode_as",
    "decode_any",
    "dok_table",
    "diagonal_length",
    "diagonal_slot",
    "validate_encoding",
    "VALIDATED_FORMATS",
    "FRAME_MAGIC",
    "DECODE_MODES",
    "FrameLayout",
    "PlaneSpan",
    "RepairAction",
    "RepairReport",
    "frame",
    "unframe",
    "frame_layout",
    "frame_overhead_bytes",
    "format_for",
    "safe_decode",
    "decode_framed",
    "repair_encoding",
    "CORRUPTION_KINDS",
    "CorruptionSpec",
    "StreamCorruptor",
    "parse_corruption",
]
