"""Abstract base classes for sparse compression formats.

A *format* models how a (partition of a) sparse matrix is laid out for
transfer to the accelerator: which arrays exist, how many bytes each
occupies, and how the decompressor traverses them.  Every concrete format
implements four operations:

``encode``
    :class:`~repro.matrix.SparseMatrix` → :class:`EncodedMatrix`.
``decode``
    The inverse; used to prove round-trip losslessness.
``spmv``
    A matrix-vector product that traverses the *encoded* arrays the same
    way the paper's HLS decompressor does (Listings 1-7), never touching
    the original matrix.  This is the functional counterpart of the
    hardware decompressor model in :mod:`repro.hardware.decompressors`.
``size``
    Exact byte accounting (useful data / transferred data / metadata),
    the basis of the memory-latency and bandwidth-utilization metrics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import FormatError, ShapeError
from ..matrix import SparseMatrix

__all__ = [
    "VALUE_BYTES",
    "INDEX_BYTES",
    "SizeBreakdown",
    "EncodedMatrix",
    "SparseFormat",
]

#: Byte width of one matrix value on the wire (the paper streams 32-bit
#: words; a COO tuple is therefore three equal 4-byte fields, giving the
#: constant 1/3 bandwidth utilization reported for COO).
VALUE_BYTES = 4

#: Byte width of one index/offset field on the wire.
INDEX_BYTES = 4


@dataclass(frozen=True)
class SizeBreakdown:
    """Byte-level cost of one encoded matrix (or partition).

    Attributes
    ----------
    useful_bytes:
        Bytes of true non-zero values — the payload the computation
        actually needs.
    data_bytes:
        Bytes of the transferred *values* stream, including any explicit
        zero padding (e.g. ELL padding, zeros inside BCSR blocks).
    metadata_bytes:
        Bytes of indices, offsets, headers and terminators.
    """

    useful_bytes: int
    data_bytes: int
    metadata_bytes: int

    def __post_init__(self) -> None:
        if min(self.useful_bytes, self.data_bytes, self.metadata_bytes) < 0:
            raise FormatError("byte counts must be non-negative")
        if self.useful_bytes > self.data_bytes:
            raise FormatError(
                "useful bytes cannot exceed transferred data bytes "
                f"({self.useful_bytes} > {self.data_bytes})"
            )

    @property
    def total_bytes(self) -> int:
        """All transferred bytes: values stream plus metadata."""
        return self.data_bytes + self.metadata_bytes

    @property
    def bandwidth_utilization(self) -> float:
        """Useful bytes over all transferred bytes (Section 4.2)."""
        if self.total_bytes == 0:
            return 1.0
        return self.useful_bytes / self.total_bytes

    def __add__(self, other: "SizeBreakdown") -> "SizeBreakdown":
        return SizeBreakdown(
            self.useful_bytes + other.useful_bytes,
            self.data_bytes + other.data_bytes,
            self.metadata_bytes + other.metadata_bytes,
        )

    @classmethod
    def zero(cls) -> "SizeBreakdown":
        return cls(0, 0, 0)


@dataclass(frozen=True)
class EncodedMatrix:
    """A matrix compressed into one concrete sparse format.

    Attributes
    ----------
    format_name:
        Registry name of the format that produced this encoding.
    shape:
        Logical ``(rows, cols)`` of the matrix.
    arrays:
        Named numpy arrays making up the encoding (e.g. ``values``,
        ``indices``, ``offsets``).  Their meaning is format-specific.
    nnz:
        Number of true non-zero entries represented.
    meta:
        Format-specific scalar parameters (e.g. ELL width, BCSR block
        size) needed to interpret ``arrays``.
    """

    format_name: str
    shape: tuple[int, int]
    arrays: Mapping[str, np.ndarray]
    nnz: int
    meta: Mapping[str, int] = field(default_factory=dict)

    def array(self, name: str) -> np.ndarray:
        try:
            return self.arrays[name]
        except KeyError:
            raise FormatError(
                f"encoding for {self.format_name!r} has no array {name!r}; "
                f"available: {sorted(self.arrays)}"
            ) from None

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]


class SparseFormat(ABC):
    """Interface implemented by every sparse compression format."""

    #: Registry name; subclasses must override.
    name: str = ""

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    @abstractmethod
    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        """Compress ``matrix`` into this format."""

    @abstractmethod
    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        """Reconstruct the matrix from its encoding (lossless)."""

    @abstractmethod
    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` by traversing the encoded arrays directly."""

    @abstractmethod
    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        """Exact transfer-size accounting for the encoding."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def encode_dense(self, dense: np.ndarray) -> EncodedMatrix:
        """Convenience: encode a 2-D numpy array."""
        return self.encode(SparseMatrix.from_dense(dense))

    def roundtrip(self, matrix: SparseMatrix) -> SparseMatrix:
        """Encode then decode; equals ``matrix`` for a correct format."""
        return self.decode(self.encode(matrix))

    def compression_ratio(self, matrix: SparseMatrix) -> float:
        """Dense transfer bytes divided by this format's transfer bytes."""
        encoded = self.encode(matrix)
        total = self.size(encoded).total_bytes
        dense_bytes = matrix.n_rows * matrix.n_cols * VALUE_BYTES
        if total == 0:
            return float("inf")
        return dense_bytes / total

    def _check_format(self, encoded: EncodedMatrix) -> None:
        if encoded.format_name != self.name:
            raise FormatError(
                f"encoding was produced by {encoded.format_name!r}, "
                f"not {self.name!r}"
            )

    def _check_vector(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        vector = np.asarray(x, dtype=np.float64).ravel()
        if vector.size != encoded.n_cols:
            raise ShapeError(
                f"vector length {vector.size} != matrix columns "
                f"{encoded.n_cols}"
            )
        return vector

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
