"""Block Compressed Sparse Row (BCSR).

CSR over fixed-shape ``b x b`` blocks (Figure 1c; the paper uses b = 4
everywhere).  Every non-zero *block* is stored dense and flattened
row-major, so zeros inside non-zero blocks are transferred — the price
paid for deterministic, bankable parallel access to the values.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)

__all__ = ["BcsrFormat", "DEFAULT_BLOCK_SIZE"]

#: Block edge used throughout the paper's experiments.
DEFAULT_BLOCK_SIZE = 4


class BcsrFormat(SparseFormat):
    """Block-wise row-compressed storage.

    Parameters
    ----------
    block_size:
        Edge length ``b`` of the square blocks.  Matrix dimensions are
        padded up to the next multiple of ``b`` during encoding.
    """

    name = "bcsr"

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size < 1:
            raise FormatError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size

    def __repr__(self) -> str:
        return f"BcsrFormat(block_size={self.block_size})"

    # ------------------------------------------------------------------
    def _block_grid(self, shape: tuple[int, int]) -> tuple[int, int]:
        b = self.block_size
        return (-(-shape[0] // b), -(-shape[1] // b))

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        b = self.block_size
        block_rows, block_cols = self._block_grid(matrix.shape)
        brow = matrix.rows // b
        bcol = matrix.cols // b
        block_keys = brow * block_cols + bcol
        order = np.argsort(block_keys, kind="stable")
        sorted_keys = block_keys[order]
        unique_keys, inverse = np.unique(sorted_keys, return_inverse=True)

        values = np.zeros((unique_keys.size, b * b))
        local = (
            (matrix.rows[order] % b) * b + (matrix.cols[order] % b)
        )
        values[inverse, local] = matrix.vals[order]

        block_brow = unique_keys // block_cols
        first_col = (unique_keys % block_cols) * b
        offsets = np.zeros(block_rows + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(block_brow, minlength=block_rows), out=offsets[1:]
        )
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={
                "offsets": offsets,
                "indices": first_col.astype(np.int64),
                "values": values,
            },
            nnz=matrix.nnz,
            meta={"block_size": b},
        )

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        b = int(encoded.meta["block_size"])
        offsets = encoded.array("offsets")
        first_cols = encoded.array("indices")
        values = encoded.array("values")
        triplets = []
        for block_row in range(offsets.size - 1):
            for k in range(offsets[block_row], offsets[block_row + 1]):
                base_row = block_row * b
                base_col = int(first_cols[k])
                block = values[k].reshape(b, b)
                local_rows, local_cols = np.nonzero(block)
                for lr, lc in zip(local_rows, local_cols):
                    row, col = base_row + int(lr), base_col + int(lc)
                    if row < encoded.n_rows and col < encoded.n_cols:
                        triplets.append((row, col, block[lr, lc]))
        return SparseMatrix.from_triplets(encoded.shape, triplets)

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        """Block-row traversal mirroring Listing 2.

        One offsets access per block-row, then each block contributes a
        dense ``b x b`` multiply — every row of a non-zero block-row is
        processed whether or not it holds data, exactly the BCSR
        downside the paper calls out.
        """
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        b = int(encoded.meta["block_size"])
        offsets = encoded.array("offsets")
        first_cols = encoded.array("indices")
        values = encoded.array("values")
        out = np.zeros(encoded.n_rows)
        padded_cols = -(-encoded.n_cols // b) * b
        padded_x = np.zeros(padded_cols)
        padded_x[: encoded.n_cols] = vector
        for block_row in range(offsets.size - 1):
            start, stop = offsets[block_row], offsets[block_row + 1]
            if stop == start:
                continue
            acc = np.zeros(b)
            for k in range(start, stop):
                col = int(first_cols[k])
                acc += values[k].reshape(b, b) @ padded_x[col : col + b]
            row = block_row * b
            span = min(b, encoded.n_rows - row)
            out[row : row + span] = acc[:span]
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        self._check_format(encoded)
        b = int(encoded.meta["block_size"])
        n_blocks = encoded.array("indices").size
        block_rows = encoded.array("offsets").size - 1
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=n_blocks * b * b * VALUE_BYTES,
            metadata_bytes=(n_blocks + block_rows) * INDEX_BYTES,
        )
