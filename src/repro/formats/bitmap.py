"""Bitmask (bitmap) format.

The paper's related work highlights two accelerator-native encodings
built on occupancy bits: SparTen's *SparseMap* ("a sparse tensor is a
two tuple of a bit mask ... and a set of non-zero values") and SMASH's
hierarchical bitmap.  This format is the flat variant: one bit per
matrix position, row-major, plus the non-zero values in the same
order.  Metadata cost is a constant ``rows * cols / 8`` bytes —
independent of nnz — which beats index-based formats once density
crosses a few percent and loses badly below it.
"""

from __future__ import annotations

import numpy as np

from ..matrix import SparseMatrix
from .base import VALUE_BYTES, EncodedMatrix, SizeBreakdown, SparseFormat

__all__ = ["BitmapFormat"]


class BitmapFormat(SparseFormat):
    """One occupancy bit per position plus packed non-zero values."""

    name = "bitmap"

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        mask = np.zeros(matrix.n_rows * matrix.n_cols, dtype=np.uint8)
        flat = matrix.rows * matrix.n_cols + matrix.cols
        mask[flat] = 1
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={
                # triplets are row-major sorted, matching mask order.
                "mask": np.packbits(mask),
                "values": matrix.vals.copy(),
            },
            nnz=matrix.nnz,
        )

    def _positions(self, encoded: EncodedMatrix) -> np.ndarray:
        total = encoded.n_rows * encoded.n_cols
        bits = np.unpackbits(encoded.array("mask"), count=total)
        return np.nonzero(bits)[0]

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        flat = self._positions(encoded)
        return SparseMatrix(
            encoded.shape,
            flat // encoded.n_cols,
            flat % encoded.n_cols,
            encoded.array("values"),
        )

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        """Mask-walk traversal: popcount-style position recovery.

        The hardware analogue scans the mask bits and pairs each set
        bit with the next value from the packed stream — the SparTen
        dataflow.
        """
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        flat = self._positions(encoded)
        values = encoded.array("values")
        out = np.zeros(encoded.n_rows)
        np.add.at(
            out,
            flat // encoded.n_cols,
            values * vector[flat % encoded.n_cols],
        )
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        """Values plus the constant-size mask (one bit per position)."""
        self._check_format(encoded)
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=encoded.nnz * VALUE_BYTES,
            metadata_bytes=int(encoded.array("mask").size),
        )
