"""Conversions between encoded formats.

All conversions round-trip through :class:`~repro.matrix.SparseMatrix`,
which is lossless for every format in the library; a dedicated fast path
is deliberately not provided because the accelerator model never
re-compresses (the SpMV output is a dense vector, Section 5.1).
"""

from __future__ import annotations

from ..matrix import SparseMatrix
from .base import EncodedMatrix
from .integrity import format_for
from .registry import get_format

__all__ = ["convert", "encode_as", "decode_any"]


def decode_any(encoded: EncodedMatrix) -> SparseMatrix:
    """Decode an encoding of any registered format.

    The codec is instantiated with the parameters the encoding's meta
    declares (block size, slice height, sigma, hybrid width), so
    encodings produced by non-default codec instances decode correctly.
    """
    return format_for(encoded).decode(encoded)


def encode_as(matrix: SparseMatrix, format_name: str, **kwargs: int) -> EncodedMatrix:
    """Encode a matrix into the named format."""
    return get_format(format_name, **kwargs).encode(matrix)


def convert(encoded: EncodedMatrix, target: str, **kwargs: int) -> EncodedMatrix:
    """Re-encode ``encoded`` into the ``target`` format."""
    if encoded.format_name == target and not kwargs:
        return encoded
    return encode_as(decode_any(encoded), target, **kwargs)
