"""Coordinate (COO) format.

A flat list of ``(row, col, value)`` tuples for every non-zero entry
(Figure 1d).  With 4-byte fields, every tuple transfers two index words
per value word, which is why the paper reports a constant ~0.33
memory-bandwidth utilization for COO regardless of the workload.
"""

from __future__ import annotations

import numpy as np

from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)

__all__ = ["CooFormat"]


class CooFormat(SparseFormat):
    """Row-major sorted coordinate tuples."""

    name = "coo"

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={
                "rows": matrix.rows.copy(),
                "cols": matrix.cols.copy(),
                "values": matrix.vals.copy(),
            },
            nnz=matrix.nnz,
        )

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        return SparseMatrix(
            encoded.shape,
            encoded.array("rows"),
            encoded.array("cols"),
            encoded.array("values"),
        )

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        """Single pipelined pass over the tuple stream (Listing 6)."""
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        out = np.zeros(encoded.n_rows)
        rows = encoded.array("rows")
        cols = encoded.array("cols")
        values = encoded.array("values")
        np.add.at(out, rows, values * vector[cols])
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        self._check_format(encoded)
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=encoded.nnz * VALUE_BYTES,
            metadata_bytes=encoded.nnz * 2 * INDEX_BYTES,
        )
