"""Deterministic, seeded corruption of encoded sparse streams.

The counterpart of :mod:`repro.formats.integrity`: where that module
*detects* damage, this one *injects* it — reproducibly, so a detection
coverage experiment is a pure function of its seed.  Corruption specs
reuse the compact selector grammar of :mod:`repro.engine.faults`
(``kind@target#key=value``)::

    bitflip@payload#ber=0.001     # payload bit flips at a target BER
    bitflip@values                # flips confined to one plane
    truncate@*#fraction=0.25      # drop a tail chunk of the frame
    truncate@indices              # splice bytes out of one plane
    tamper@header                 # overwrite a header word
    tamper@offsets#mode=repair    # plane tamper, decoded in repair mode

Two injection surfaces are supported: :meth:`StreamCorruptor.
corrupt_frame` mutates the *serialized* container (what DDR bit flips
and truncated bursts do), and :meth:`StreamCorruptor.corrupt_encoding`
mutates the in-memory planes directly (what the hypothesis property
suite and the sweep-engine ``corrupt`` fault use, where no frame
exists).  Both derive their randomness from ``(seed, injection key)``
alone — same seed, same damage, every run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np

from ..errors import FormatError, SweepConfigError
from .base import EncodedMatrix
from .integrity import DECODE_MODES, FrameLayout, frame_layout

__all__ = [
    "CORRUPTION_KINDS",
    "CorruptionSpec",
    "StreamCorruptor",
    "parse_corruption",
]

#: Supported corruption kinds.
CORRUPTION_KINDS: tuple[str, ...] = ("bitflip", "truncate", "tamper")

#: Selector targeting the whole frame / any plane.
ANY_PLANE = "*"


@dataclass(frozen=True)
class CorruptionSpec:
    """One reproducible corruption rule.

    Attributes
    ----------
    kind:
        ``bitflip`` (random bit flips at ``ber``), ``truncate`` (drop
        a ``fraction``-sized tail), or ``tamper`` (overwrite one
        word/field with an adversarial value).
    plane:
        Target selector: a plane name, ``"header"`` / ``"payload"``
        (frame surface only), or ``"*"`` for the whole stream.
    ber:
        Bit-error rate for ``bitflip``; at least one bit always flips.
    fraction:
        Tail fraction removed by ``truncate`` (upper bound; the exact
        cut length is drawn per injection).
    decode_mode:
        The :data:`~repro.formats.integrity.DECODE_MODES` policy a
        downstream consumer should decode the damaged stream under —
        carried here so sweep fault specs stay self-contained.
    """

    kind: str
    plane: str = ANY_PLANE
    ber: float = 1e-3
    fraction: float = 0.25
    decode_mode: str = "strict"

    def __post_init__(self) -> None:
        if self.kind not in CORRUPTION_KINDS:
            raise SweepConfigError(
                f"unknown corruption kind {self.kind!r}; "
                f"known: {', '.join(CORRUPTION_KINDS)}"
            )
        if not self.plane:
            raise SweepConfigError(
                "corruption plane selector must be non-empty "
                "(use '*' to target any plane)"
            )
        if not 0.0 < self.ber <= 1.0:
            raise SweepConfigError(
                f"ber must be in (0, 1], got {self.ber}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise SweepConfigError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )
        if self.decode_mode not in DECODE_MODES:
            raise SweepConfigError(
                f"unknown decode mode {self.decode_mode!r}; "
                f"known: {', '.join(DECODE_MODES)}"
            )

    def describe(self) -> str:
        options = []
        if self.kind == "bitflip" and self.ber != 1e-3:
            options.append(f"ber={self.ber:g}")
        if self.kind == "truncate" and self.fraction != 0.25:
            options.append(f"fraction={self.fraction:g}")
        if self.decode_mode != "strict":
            options.append(f"mode={self.decode_mode}")
        tail = "#" + "#".join(options) if options else ""
        return f"{self.kind}@{self.plane}{tail}"

    @classmethod
    def parse(cls, text: str) -> "CorruptionSpec":
        """Parse one ``kind@target#key=value`` selector."""
        head, *option_chunks = text.strip().split("#")
        kind, sep, plane = head.partition("@")
        if not sep or not plane:
            raise SweepConfigError(
                f"corruption spec {text!r} must look like kind@target "
                f"(e.g. bitflip@payload#ber=0.001, truncate@*)"
            )
        options: dict = {}
        for chunk in option_chunks:
            key, eq, value = chunk.partition("=")
            if not eq:
                raise SweepConfigError(
                    f"corruption option {chunk!r} is not key=value"
                )
            if key in ("ber", "fraction"):
                try:
                    options[key] = float(value)
                except ValueError:
                    raise SweepConfigError(
                        f"corruption option {key}={value!r} is not "
                        f"a number"
                    ) from None
            elif key == "mode":
                options["decode_mode"] = value
            else:
                raise SweepConfigError(
                    f"unknown corruption option {key!r}; "
                    f"known: ber, fraction, mode"
                )
        return cls(kind=kind, plane=plane, **options)


def parse_corruption(text: str) -> CorruptionSpec:
    """Module-level alias of :meth:`CorruptionSpec.parse`."""
    return CorruptionSpec.parse(text)


def _salt(key: tuple) -> int:
    """Stable 32-bit salt from an arbitrary injection key tuple."""
    return zlib.crc32(repr(key).encode("utf-8"))


class StreamCorruptor:
    """Seeded injector applying :class:`CorruptionSpec` rules.

    Every injection is keyed: the random stream is derived from
    ``(seed, key)``, never from global state, so campaigns are
    bit-reproducible and individual injections can be replayed in
    isolation.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _rng(self, key: tuple) -> np.random.Generator:
        return np.random.default_rng((self.seed, _salt(key)))

    # ------------------------------------------------------------------
    # Frame surface
    # ------------------------------------------------------------------
    def _frame_span(
        self, layout: FrameLayout, data_len: int, plane: str
    ) -> tuple[int, int]:
        if plane == "header":
            return (0, layout.header_bytes)
        if plane == "payload":
            return (layout.header_bytes, data_len)
        if plane != ANY_PLANE:
            span = layout.plane(plane)
            if span.nbytes > 0:
                return (span.start, min(span.stop, data_len))
            # empty plane: nothing to hit — fall through to whole frame
        return (0, data_len)

    def corrupt_frame(
        self, data: bytes, spec: CorruptionSpec, key: tuple = ()
    ) -> bytes:
        """Return a damaged copy of a serialized frame.

        The pristine frame's own layout chooses the target span, so a
        ``plane`` selector lands exactly on that plane's payload
        bytes.  The input is never modified.
        """
        if not data:
            raise FormatError("cannot corrupt an empty stream")
        rng = self._rng(("frame", spec.kind, spec.plane) + key)
        layout = frame_layout(data)
        start, stop = self._frame_span(layout, len(data), spec.plane)
        if stop <= start:
            start, stop = 0, len(data)
        if spec.kind == "bitflip":
            return self._flip_bits(data, start, stop, spec.ber, rng)
        if spec.kind == "truncate":
            return self._truncate(data, start, stop, spec.fraction, rng)
        return self._tamper_frame(data, start, stop, rng)

    def _flip_bits(
        self,
        data: bytes,
        start: int,
        stop: int,
        ber: float,
        rng: np.random.Generator,
    ) -> bytes:
        span_bits = (stop - start) * 8
        n_flips = max(1, int(round(ber * span_bits)))
        n_flips = min(n_flips, span_bits)
        positions = rng.choice(span_bits, size=n_flips, replace=False)
        out = bytearray(data)
        for bit in positions:
            out[start + int(bit) // 8] ^= 1 << (int(bit) % 8)
        return bytes(out)

    def _truncate(
        self,
        data: bytes,
        start: int,
        stop: int,
        fraction: float,
        rng: np.random.Generator,
    ) -> bytes:
        span = stop - start
        limit = max(1, int(span * fraction))
        cut = int(rng.integers(1, limit + 1))
        if stop == len(data):
            return data[: len(data) - cut]
        # mid-stream plane: splice its tail out (a lost burst)
        return data[: stop - cut] + data[stop:]

    def _tamper_frame(
        self,
        data: bytes,
        start: int,
        stop: int,
        rng: np.random.Generator,
    ) -> bytes:
        width = min(4, stop - start)
        offset = start + int(
            rng.integers(0, max(1, (stop - start) - width + 1))
        )
        out = bytearray(data)
        replacement = bytes(rng.integers(0, 256, size=width, dtype=np.uint8))
        if bytes(out[offset : offset + width]) == replacement:
            replacement = bytes(b ^ 0xFF for b in replacement)
        out[offset : offset + width] = replacement
        return bytes(out)

    # ------------------------------------------------------------------
    # Array surface
    # ------------------------------------------------------------------
    def _pick_plane(
        self,
        encoded: EncodedMatrix,
        spec: CorruptionSpec,
        rng: np.random.Generator,
    ) -> str:
        if spec.plane not in (ANY_PLANE, "header", "payload"):
            target = encoded.array(spec.plane)
            if target.size:
                return spec.plane
        candidates = sorted(
            name
            for name, array in encoded.arrays.items()
            if np.asarray(array).size
        )
        if not candidates:
            raise FormatError(
                f"encoding for {encoded.format_name!r} has no "
                f"non-empty plane to corrupt"
            )
        return candidates[int(rng.integers(0, len(candidates)))]

    def corrupt_encoding(
        self,
        encoded: EncodedMatrix,
        spec: CorruptionSpec,
        key: tuple = (),
    ) -> EncodedMatrix:
        """Return a damaged copy of an in-memory encoding.

        Exactly one plane is hit per injection; the original encoding
        (and its arrays) are never modified.
        """
        rng = self._rng(("arrays", spec.kind, spec.plane) + key)
        plane = self._pick_plane(encoded, spec, rng)
        arrays = {
            name: np.asarray(array) for name, array in encoded.arrays.items()
        }
        target = arrays[plane].copy()
        if spec.kind == "bitflip":
            flat = target.reshape(-1).view(np.uint8)
            n_bits = flat.size * 8
            n_flips = min(
                n_bits, max(1, int(round(spec.ber * n_bits)))
            )
            bits = rng.choice(n_bits, size=n_flips, replace=False)
            for bit in bits:
                flat[int(bit) // 8] ^= 1 << (int(bit) % 8)
            arrays[plane] = target
        elif spec.kind == "truncate":
            # drop trailing elements (2-D planes lose whole rows)
            count = target.shape[0]
            limit = max(1, int(count * spec.fraction))
            cut = int(rng.integers(1, limit + 1))
            arrays[plane] = target[: count - cut].copy()
        else:  # tamper: one element becomes an adversarial extreme
            flat = target.reshape(-1)
            index = int(rng.integers(0, flat.size))
            if flat.dtype.kind == "f":
                extremes = (1e300, -1e300, float(2**31))
            else:
                info = np.iinfo(flat.dtype)
                extremes = (info.max, info.min, max(1, info.max // 3))
            flat[index] = extremes[int(rng.integers(0, len(extremes)))]
            arrays[plane] = target
        return EncodedMatrix(
            format_name=encoded.format_name,
            shape=encoded.shape,
            arrays=arrays,
            nnz=encoded.nnz,
            meta=dict(encoded.meta),
        )

    def with_seed(self, seed: int) -> "StreamCorruptor":
        return StreamCorruptor(seed)

    def __repr__(self) -> str:
        return f"StreamCorruptor(seed={self.seed})"


def spec_with_mode(
    spec: CorruptionSpec, decode_mode: str
) -> CorruptionSpec:
    """Copy of ``spec`` under a different downstream decode policy."""
    return replace(spec, decode_mode=decode_mode)
