"""Compressed Sparse Column (CSC).

The column-major mirror of CSR.  The accelerator consumes *rows*, so a
row-oriented decompressor must scan every column to rebuild one row —
the paper's worst case (up to 21-30x slower than dense, Section 6.1).
"""

from __future__ import annotations

import numpy as np

from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)

__all__ = ["CscFormat"]


class CscFormat(SparseFormat):
    """Column-compressed storage with offsets / row indices / values."""

    name = "csc"

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        transposed = matrix.transpose()
        offsets = np.zeros(matrix.n_cols + 1, dtype=np.int64)
        np.cumsum(matrix.col_nnz(), out=offsets[1:])
        # transposed triplets are sorted by (col, row) of the original.
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={
                "offsets": offsets,
                "indices": transposed.cols.copy(),  # original row indices
                "values": transposed.vals.copy(),
            },
            nnz=matrix.nnz,
        )

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        offsets = encoded.array("offsets")
        cols = np.repeat(np.arange(encoded.n_cols), np.diff(offsets))
        return SparseMatrix(
            encoded.shape, encoded.array("indices"), cols, encoded.array("values")
        )

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        """Row-reconstruction traversal mirroring Listing 3.

        For each output row, *all* columns are walked and each column's
        entries are searched for the current row index — deliberately
        inefficient, modelling the format/hardware orientation mismatch
        the paper quantifies.
        """
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        offsets = encoded.array("offsets")
        indices = encoded.array("indices")
        values = encoded.array("values")
        out = np.zeros(encoded.n_rows)
        for row in range(encoded.n_rows):
            acc = 0.0
            for col in range(encoded.n_cols):
                start, stop = offsets[col], offsets[col + 1]
                for k in range(start, stop):
                    if indices[k] == row:
                        acc += values[k] * vector[col]
            out[row] = acc
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        self._check_format(encoded)
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=encoded.nnz * VALUE_BYTES,
            metadata_bytes=encoded.nnz * INDEX_BYTES
            + encoded.n_cols * INDEX_BYTES,
        )
