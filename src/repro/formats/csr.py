"""Compressed Sparse Row (CSR).

Three arrays (Figure 1b of the paper):

``values``
    Non-zero values in row-major order.
``indices``
    The column index of each value.
``offsets``
    Row pointers: ``offsets[i] : offsets[i + 1]`` slices out row ``i``.
    We store ``n_rows + 1`` entries but account for only ``n_rows`` on
    the wire, matching the paper's note that the leading zero can be
    folded into an absolute first value.
"""

from __future__ import annotations

import numpy as np

from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)

__all__ = ["CsrFormat"]


class CsrFormat(SparseFormat):
    """Row-compressed storage with offsets / column indices / values."""

    name = "csr"

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        offsets = np.zeros(matrix.n_rows + 1, dtype=np.int64)
        np.cumsum(matrix.row_nnz(), out=offsets[1:])
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={
                "offsets": offsets,
                "indices": matrix.cols.copy(),
                "values": matrix.vals.copy(),
            },
            nnz=matrix.nnz,
        )

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        offsets = encoded.array("offsets")
        rows = np.repeat(np.arange(encoded.n_rows), np.diff(offsets))
        return SparseMatrix(
            encoded.shape, rows, encoded.array("indices"), encoded.array("values")
        )

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        """Row-by-row traversal mirroring Listing 1.

        For each row we first read the offsets pair (the extra BRAM
        access the paper identifies as CSR's compute-bound cause), then
        walk ``numVal`` sequential (index, value) pairs.
        """
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        offsets = encoded.array("offsets")
        indices = encoded.array("indices")
        values = encoded.array("values")
        out = np.zeros(encoded.n_rows)
        for row in range(encoded.n_rows):
            start, stop = offsets[row], offsets[row + 1]
            if stop > start:
                out[row] = values[start:stop] @ vector[indices[start:stop]]
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        self._check_format(encoded)
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=encoded.nnz * VALUE_BYTES,
            metadata_bytes=encoded.nnz * INDEX_BYTES
            + encoded.n_rows * INDEX_BYTES,
        )
