"""The uncompressed dense baseline format.

Every entry of the matrix — zero or not — is transferred.  This is the
paper's baseline: its decompression overhead is defined to be
:math:`\\sigma = 1` and it carries no metadata at all.
"""

from __future__ import annotations

import numpy as np

from ..matrix import SparseMatrix
from .base import VALUE_BYTES, EncodedMatrix, SizeBreakdown, SparseFormat

__all__ = ["DenseFormat"]


class DenseFormat(SparseFormat):
    """Row-major dense storage of all entries."""

    name = "dense"

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={"values": matrix.to_dense()},
            nnz=matrix.nnz,
        )

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        return SparseMatrix.from_dense(encoded.array("values"))

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        return encoded.array("values") @ vector

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        self._check_format(encoded)
        n_entries = encoded.n_rows * encoded.n_cols
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=n_entries * VALUE_BYTES,
            metadata_bytes=0,
        )
