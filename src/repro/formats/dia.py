"""Diagonal (DIA) format.

Each non-zero diagonal is stored contiguously, prefixed by its diagonal
number (Figure 1h): 0 is the main diagonal, negative numbers start on a
lower row, positive on a higher column.  A diagonal is stored *whole*
once any of its entries is non-zero, so scattered data that only grazes
many diagonals transfers mostly zeros — the inefficiency Section 5.2
highlights for non-banded matrices.
"""

from __future__ import annotations

import numpy as np

from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)

__all__ = ["DiaFormat", "diagonal_length", "diagonal_slot"]


def diagonal_length(shape: tuple[int, int], offset: int) -> int:
    """Number of entries on diagonal ``offset`` of a ``shape`` matrix."""
    n_rows, n_cols = shape
    if offset >= 0:
        return max(0, min(n_rows, n_cols - offset))
    return max(0, min(n_rows + offset, n_cols))


def diagonal_slot(row: int, offset: int) -> int:
    """Position of ``row``'s entry within diagonal ``offset``.

    Mirrors the paper's ``DiaInxForRow``: ``row + d`` for the lower
    (negative) diagonals, ``row`` otherwise.
    """
    return row + offset if offset < 0 else row


class DiaFormat(SparseFormat):
    """Per-diagonal storage with a diagonal-number header each."""

    name = "dia"

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        offsets = matrix.diagonals()
        if not offsets.size:
            offsets = np.array([0], dtype=np.int64)
        max_len = max(diagonal_length(matrix.shape, int(d)) for d in offsets)
        diags = np.zeros((offsets.size, max_len))
        lengths = np.array(
            [diagonal_length(matrix.shape, int(d)) for d in offsets],
            dtype=np.int64,
        )
        slot_of = {int(d): k for k, d in enumerate(offsets)}
        for row, col, val in zip(matrix.rows, matrix.cols, matrix.vals):
            offset = int(col - row)
            diags[slot_of[offset], diagonal_slot(int(row), offset)] = val
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={
                "offsets": offsets.astype(np.int64),
                "lengths": lengths,
                "diagonals": diags,
            },
            nnz=matrix.nnz,
        )

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        offsets = encoded.array("offsets")
        lengths = encoded.array("lengths")
        diags = encoded.array("diagonals")
        triplets = []
        for k, offset in enumerate(offsets):
            d = int(offset)
            row_start = max(0, -d)
            for pos in range(int(lengths[k])):
                value = diags[k, pos]
                if value != 0.0:
                    row = row_start + pos
                    triplets.append((row, row + d, value))
        return SparseMatrix.from_triplets(encoded.shape, triplets)

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        """Per-row scan over all stored diagonals (Listing 7)."""
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        offsets = encoded.array("offsets")
        diags = encoded.array("diagonals")
        out = np.zeros(encoded.n_rows)
        for row in range(encoded.n_rows):
            acc = 0.0
            for k, offset in enumerate(offsets):
                d = int(offset)
                col = row + d
                if col < 0 or col >= encoded.n_cols:
                    continue
                acc += diags[k, diagonal_slot(row, d)] * vector[col]
            out[row] = acc
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        """Transfer cost of the *padded* 2-D layout of Listing 7.

        The decompressor indexes ``diags[NUM_DIAGONALS][MAX_LEN]``, so
        every stored diagonal occupies the longest diagonal's slot
        count on the wire — the reason DIA loses its bandwidth edge on
        wide bands (Figure 11) even though a ragged encoding would not.
        """
        self._check_format(encoded)
        n_diags, max_len = encoded.array("diagonals").shape
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=n_diags * max_len * VALUE_BYTES,
            metadata_bytes=n_diags * INDEX_BYTES,
        )
