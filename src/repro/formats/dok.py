"""Dictionary of Keys (DOK).

Stores ``(row, col) -> value`` pairs in a hash table (Figure 1e).  On the
wire it transfers the same three fields per entry as COO, and the paper
evaluates it with the same decompressor ("the same procedure is also
applicable to DOK", Section 5.2) — here the host-side representation is a
real Python dict so that incremental construction semantics are available
to applications.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)

__all__ = ["DokFormat", "dok_table"]


def dok_table(encoded: EncodedMatrix) -> dict[tuple[int, int], float]:
    """Materialize the key-value view of a DOK encoding."""
    if encoded.format_name != DokFormat.name:
        raise FormatError(f"not a DOK encoding: {encoded.format_name!r}")
    rows = encoded.array("rows")
    cols = encoded.array("cols")
    values = encoded.array("values")
    return {
        (int(r), int(c)): float(v) for r, c, v in zip(rows, cols, values)
    }


class DokFormat(SparseFormat):
    """Hash-table storage keyed by coordinate pairs."""

    name = "dok"

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={
                "rows": matrix.rows.copy(),
                "cols": matrix.cols.copy(),
                "values": matrix.vals.copy(),
            },
            nnz=matrix.nnz,
        )

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        table = dok_table(encoded)
        return SparseMatrix.from_triplets(
            encoded.shape, ((r, c, v) for (r, c), v in table.items())
        )

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        """Hash-table traversal; the stream order matches COO."""
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        out = np.zeros(encoded.n_rows)
        for (row, col), value in dok_table(encoded).items():
            out[row] += value * vector[col]
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        self._check_format(encoded)
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=encoded.nnz * VALUE_BYTES,
            metadata_bytes=encoded.nnz * 2 * INDEX_BYTES,
        )
