"""ELLPACK (ELL).

Non-zeros are pushed left within each row and padded out to the longest
row's length (Figure 1g).  All rows — including all-zero ones — occupy a
full padded slot, which is exactly why the paper finds ELL's compute
latency proportional to the dense baseline and insensitive to the
sparsity pattern.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)

__all__ = ["EllFormat", "ell_slot_arrays"]


def ell_slot_arrays(
    matrix: SparseMatrix, width: int
) -> tuple[np.ndarray, np.ndarray]:
    """Left-pushed ``(values, column indices)`` arrays of a given width.

    Padding slots carry column index 0 and value 0, which is a no-op for
    both decode and SpMV.  Shared with :class:`SellFormat`.
    """
    values = np.zeros((matrix.n_rows, width))
    indices = np.zeros((matrix.n_rows, width), dtype=np.int64)
    slot = np.zeros(matrix.n_rows, dtype=np.int64)
    for row, col, val in zip(matrix.rows, matrix.cols, matrix.vals):
        k = slot[row]
        values[row, k] = val
        indices[row, k] = col
        slot[row] = k + 1
    return values, indices


class EllFormat(SparseFormat):
    """Fixed-width padded row storage (values + column indices).

    Parameters
    ----------
    min_width:
        Lower bound on the padded width; the encoded width is
        ``max(min_width, longest row)``.  The paper sizes its hardware
        for a width of six; rows longer than the minimum simply grow the
        encoding, preserving losslessness.
    """

    name = "ell"

    def __init__(self, min_width: int = 1) -> None:
        if min_width < 1:
            raise FormatError(f"min_width must be >= 1, got {min_width}")
        self.min_width = min_width

    def __repr__(self) -> str:
        return f"EllFormat(min_width={self.min_width})"

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        row_counts = matrix.row_nnz()
        longest = int(row_counts.max()) if row_counts.size else 0
        width = max(self.min_width, longest, 1)
        values, indices = ell_slot_arrays(matrix, width)
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={"values": values, "indices": indices},
            nnz=matrix.nnz,
            meta={"width": width},
        )

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        values = encoded.array("values")
        indices = encoded.array("indices")
        rows, slots = np.nonzero(values)
        return SparseMatrix(
            encoded.shape, rows, indices[rows, slots], values[rows, slots]
        )

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        """Fully unrolled per-row gather (Listing 5); all rows processed."""
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        values = encoded.array("values")
        indices = encoded.array("indices")
        return np.einsum("rw,rw->r", values, vector[indices])

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        self._check_format(encoded)
        width = int(encoded.meta["width"])
        slots = encoded.n_rows * width
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=slots * VALUE_BYTES,
            metadata_bytes=slots * INDEX_BYTES,
        )
