"""ELL+COO hybrid.

Section 2: "ELL+COO mixes ELL and COO formats to reduce the width of
long rows" — the first ``width`` non-zeros of each row live in fixed
ELL planes (deterministic, bankable), and the overflow of the few long
rows spills into a COO tuple list.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)
from .ell import ell_slot_arrays

__all__ = ["EllCooFormat", "DEFAULT_HYBRID_WIDTH"]

#: Default ELL-part width; matches the paper's hardware padding width.
DEFAULT_HYBRID_WIDTH = 6


class EllCooFormat(SparseFormat):
    """Fixed-width ELL planes plus a COO overflow list."""

    name = "ell+coo"

    def __init__(self, width: int = DEFAULT_HYBRID_WIDTH) -> None:
        if width < 1:
            raise FormatError(f"width must be >= 1, got {width}")
        self.width = width

    def __repr__(self) -> str:
        return f"EllCooFormat(width={self.width})"

    def _split(self, matrix: SparseMatrix) -> tuple[SparseMatrix, SparseMatrix]:
        """Per row: the first ``width`` entries vs the overflow."""
        order = np.arange(matrix.nnz)  # triplets already row-major
        position_in_row = order - np.concatenate(
            [[0], np.cumsum(matrix.row_nnz())]
        )[matrix.rows]
        in_ell = position_in_row < self.width
        ell_part = SparseMatrix(
            matrix.shape,
            matrix.rows[in_ell],
            matrix.cols[in_ell],
            matrix.vals[in_ell],
        )
        overflow = SparseMatrix(
            matrix.shape,
            matrix.rows[~in_ell],
            matrix.cols[~in_ell],
            matrix.vals[~in_ell],
        )
        return ell_part, overflow

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        ell_part, overflow = self._split(matrix)
        values, indices = ell_slot_arrays(ell_part, self.width)
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={
                "values": values,
                "indices": indices,
                "coo_rows": overflow.rows,
                "coo_cols": overflow.cols,
                "coo_values": overflow.vals,
            },
            nnz=matrix.nnz,
            meta={"width": self.width},
        )

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        values = encoded.array("values")
        indices = encoded.array("indices")
        rows, slots = np.nonzero(values)
        ell_part = SparseMatrix(
            encoded.shape, rows, indices[rows, slots], values[rows, slots]
        )
        overflow = SparseMatrix(
            encoded.shape,
            encoded.array("coo_rows"),
            encoded.array("coo_cols"),
            encoded.array("coo_values"),
        )
        return ell_part.add(overflow)

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        values = encoded.array("values")
        indices = encoded.array("indices")
        out = np.einsum("rw,rw->r", values, vector[indices])
        np.add.at(
            out,
            encoded.array("coo_rows"),
            encoded.array("coo_values") * vector[encoded.array("coo_cols")],
        )
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        self._check_format(encoded)
        slots = encoded.array("values").size
        overflow = encoded.array("coo_values").size
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=(slots + overflow) * VALUE_BYTES,
            metadata_bytes=slots * INDEX_BYTES
            + overflow * 2 * INDEX_BYTES,
        )
