"""Checksummed container framing and hardened decoding.

An :class:`~repro.formats.base.EncodedMatrix` is a set of in-memory
numpy planes; on a real accelerator those planes travel over DDR/AXI as
one byte stream per tile.  This module supplies the missing container
layer and the defensive decode paths that make corrupted streams a
first-class, *measurable* event instead of an interpreter crash:

``frame()`` / ``unframe()``
    A little-endian, CRC32-protected container: magic, format id,
    shape, nnz, the format's scalar meta, a plane table (name, dtype
    tag, dims, byte length, payload CRC32), a header CRC32, then the
    raw plane payloads.  Byte accounting is exact and
    :func:`frame_overhead_bytes` is a per-format constant, so framing
    cost composes with the existing :class:`SizeBreakdown` model.

``safe_decode()`` with ``DecodeMode = strict | repair | lenient``
    *strict* promotes :func:`~repro.formats.validate.validate_encoding`
    plus decode-time failures into the structured
    :class:`~repro.errors.FormatIntegrityError` taxonomy and never
    leaks a bare numpy exception.  *repair* applies best-effort,
    per-format fixes (clip out-of-bounds indices, re-monotonize
    offsets, drop trailing garbage, re-bijectivize permutations) and
    returns a machine-readable :class:`RepairReport`.  *lenient*
    accepts anything that decodes, falling back to repair.

Wire layout (all integers little-endian)::

    magic      4s   = b"CTF1"
    format     u16 length + ASCII name
    rows,cols  u32, u32
    nnz        u64
    meta       u16 count, then per entry: u16 key length + key, i64
    planes     u16 count, then per plane:
                 u16 name length + name
                 u16 dtype-tag length + numpy dtype.str (e.g. "<f8")
                 u8 ndim, u32 per dimension
                 u64 payload bytes
                 u32 CRC32(payload)
    header CRC u32  (CRC32 of every byte above)
    payloads   concatenated in plane-table order, C-contiguous
"""

from __future__ import annotations

import re
import struct
import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from math import isqrt

import numpy as np

from ..errors import CopernicusError, FormatError, FormatIntegrityError
from ..matrix import SparseMatrix
from .base import EncodedMatrix, SparseFormat
from .registry import get_format
from .validate import validate_encoding

__all__ = [
    "FRAME_MAGIC",
    "DECODE_MODES",
    "FrameLayout",
    "PlaneSpan",
    "RepairAction",
    "RepairReport",
    "frame",
    "unframe",
    "frame_layout",
    "frame_overhead_bytes",
    "format_for",
    "safe_decode",
    "decode_framed",
    "repair_encoding",
]

#: Container magic: "Copernicus Tile Frame", layout version 1.
FRAME_MAGIC = b"CTF1"

#: Hardened decode modes, in decreasing order of paranoia.
DECODE_MODES: tuple[str, ...] = ("strict", "repair", "lenient")

# Header sanity bounds — a parsed count beyond these is corruption, not
# a large matrix (no built-in format exceeds 5 planes or 2 meta keys).
_MAX_PLANES = 64
_MAX_META = 32
_MAX_NAME = 256
_MAX_NDIM = 4

# Allocation guard: never materialize more than this many bytes beyond
# what the untrusted input itself supplies as evidence.
_ALLOC_SLACK_FACTOR = 16
_ALLOC_SLACK_BYTES = 4096


def _check_mode(mode: str) -> None:
    if mode not in DECODE_MODES:
        raise FormatError(
            f"unknown decode mode {mode!r}; expected one of "
            f"{', '.join(DECODE_MODES)}"
        )


def _guard_alloc(
    requested_bytes: int,
    evidence_bytes: int,
    *,
    format_name: str,
    plane: str,
) -> None:
    """Refuse allocations a corrupted header asks for but cannot back.

    A tampered dimension or byte count must not drive a multi-gigabyte
    ``np.zeros``: anything more than a small multiple of the bytes the
    input actually contains is implausible and raised as corruption.
    """
    limit = evidence_bytes * _ALLOC_SLACK_FACTOR + _ALLOC_SLACK_BYTES
    if requested_bytes > limit:
        raise FormatIntegrityError(
            f"declared size {requested_bytes} bytes exceeds the "
            f"plausible bound {limit} for {evidence_bytes} input bytes",
            format_name=format_name,
            plane=plane,
            check="alloc-guard",
            kind="implausible",
        )


# ----------------------------------------------------------------------
# Repair reporting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RepairAction:
    """One best-effort fix applied while repairing a stream."""

    plane: str
    action: str
    detail: str = ""

    def describe(self) -> str:
        where = self.plane or "frame"
        tail = f": {self.detail}" if self.detail else ""
        return f"{where}: {self.action}{tail}"


@dataclass(frozen=True)
class RepairReport:
    """Machine-readable record of everything a repair pass changed.

    Falsy when the stream needed no fixes, so
    ``matrix, report = safe_decode(encoded, "repair")`` callers can
    test ``if report:`` to learn whether the data was pristine.
    """

    format_name: str
    mode: str
    actions: tuple[RepairAction, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.actions)

    def __add__(self, other: "RepairReport") -> "RepairReport":
        return RepairReport(
            format_name=self.format_name or other.format_name,
            mode=self.mode,
            actions=self.actions + other.actions,
        )

    def to_dict(self) -> dict:
        return {
            "format": self.format_name,
            "mode": self.mode,
            "actions": [
                {
                    "plane": a.plane,
                    "action": a.action,
                    "detail": a.detail,
                }
                for a in self.actions
            ],
        }

    def describe(self) -> str:
        if not self.actions:
            return f"{self.format_name or 'stream'}: clean"
        body = "; ".join(a.describe() for a in self.actions)
        return f"{self.format_name or 'stream'}: {body}"


class _RepairLog:
    """Mutable accumulator behind the frozen :class:`RepairReport`."""

    def __init__(self, format_name: str, mode: str) -> None:
        self.format_name = format_name
        self.mode = mode
        self.actions: list[RepairAction] = []

    def fixed(self, plane: str, action: str, detail: str = "") -> None:
        self.actions.append(RepairAction(plane, action, detail))

    def report(self) -> RepairReport:
        return RepairReport(
            self.format_name, self.mode, tuple(self.actions)
        )


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlaneSpan:
    """One plane's entry in the frame table, with its payload span."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    start: int
    stop: int
    crc: int

    @property
    def nbytes(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class FrameLayout:
    """Parsed frame header: where every byte of the stream lives."""

    format_name: str
    shape: tuple[int, int]
    nnz: int
    meta: dict = field(default_factory=dict)
    header_bytes: int = 0
    header_crc: int = 0
    planes: tuple[PlaneSpan, ...] = ()

    @property
    def declared_bytes(self) -> int:
        """Total frame length the header claims (header + payloads)."""
        return self.header_bytes + sum(p.nbytes for p in self.planes)

    def plane(self, name: str) -> PlaneSpan:
        for span in self.planes:
            if span.name == name:
                return span
        raise FormatIntegrityError(
            f"frame has no plane {name!r}; available: "
            f"{[p.name for p in self.planes]}",
            format_name=self.format_name,
            plane=name,
            check="plane-missing",
            kind="structure",
        )


def frame(encoded: EncodedMatrix) -> bytes:
    """Serialize an encoding into the checksummed container format."""
    out = bytearray()
    out += FRAME_MAGIC
    name = encoded.format_name.encode("ascii")
    out += struct.pack("<H", len(name)) + name
    out += struct.pack(
        "<IIQ", encoded.n_rows, encoded.n_cols, encoded.nnz
    )
    out += struct.pack("<H", len(encoded.meta))
    for key, value in encoded.meta.items():
        key_bytes = key.encode("ascii")
        out += struct.pack("<H", len(key_bytes)) + key_bytes
        out += struct.pack("<q", int(value))
    payloads: list[bytes] = []
    out += struct.pack("<H", len(encoded.arrays))
    for plane_name, array in encoded.arrays.items():
        payload = np.ascontiguousarray(array).tobytes()
        payloads.append(payload)
        plane_bytes = plane_name.encode("ascii")
        out += struct.pack("<H", len(plane_bytes)) + plane_bytes
        tag = np.asarray(array).dtype.str.encode("ascii")
        out += struct.pack("<H", len(tag)) + tag
        out += struct.pack("<B", np.asarray(array).ndim)
        for dim in np.asarray(array).shape:
            out += struct.pack("<I", dim)
        out += struct.pack("<QI", len(payload), zlib.crc32(payload))
    out += struct.pack("<I", zlib.crc32(bytes(out)))
    for payload in payloads:
        out += payload
    return bytes(out)


class _Reader:
    """Bounds-checked little-endian cursor over untrusted bytes."""

    def __init__(self, data: bytes, format_name: str = "") -> None:
        self.data = data
        self.cursor = 0
        self.format_name = format_name

    def _fail(self, what: str) -> FormatIntegrityError:
        return FormatIntegrityError(
            f"frame ends inside {what} "
            f"(offset {self.cursor} of {len(self.data)})",
            format_name=self.format_name,
            check="header-truncated",
            offset=self.cursor,
            kind="truncation",
        )

    def take(self, count: int, what: str) -> bytes:
        if self.cursor + count > len(self.data):
            raise self._fail(what)
        chunk = self.data[self.cursor : self.cursor + count]
        self.cursor += count
        return chunk

    def unpack(self, fmt: str, what: str):
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self.take(size, what))

    def ascii(self, length: int, what: str) -> str:
        raw = self.take(length, what)
        try:
            return raw.decode("ascii")
        except UnicodeDecodeError as exc:
            raise FormatIntegrityError(
                f"non-ASCII bytes in {what}",
                format_name=self.format_name,
                check="header-encoding",
                offset=self.cursor - length,
                kind="structure",
            ) from exc


def _header_fail(
    message: str,
    *,
    format_name: str = "",
    plane: str = "",
    check: str,
    offset: int | None = None,
    kind: str = "structure",
) -> FormatIntegrityError:
    return FormatIntegrityError(
        message,
        format_name=format_name,
        plane=plane,
        check=check,
        offset=offset,
        kind=kind,
    )


def _parse_dtype(tag: str, format_name: str, plane: str) -> np.dtype:
    # only byte-order + numeric-kind + width tags are legal on the
    # wire; anything else (including numpy's deprecated aliases, which
    # np.dtype would warn about rather than reject) is header damage
    if not re.fullmatch(r"[<>|=]?[fiu][0-9]{1,2}", tag):
        raise _header_fail(
            f"unparseable dtype tag {tag!r}",
            format_name=format_name,
            plane=plane,
            check="dtype-tag",
        )
    try:
        dtype = np.dtype(tag)
    except (TypeError, ValueError) as exc:
        raise _header_fail(
            f"unparseable dtype tag {tag!r}",
            format_name=format_name,
            plane=plane,
            check="dtype-tag",
        ) from exc
    if dtype.kind not in "fiu" or dtype.itemsize > 16:
        raise _header_fail(
            f"dtype {tag!r} is not a plain numeric scalar type",
            format_name=format_name,
            plane=plane,
            check="dtype-kind",
        )
    return dtype


def frame_layout(data: bytes) -> FrameLayout:
    """Parse a frame header into spans, without touching payloads.

    Header parsing is always strict — a frame whose *structure* cannot
    be established has nothing to repair against.  CRC values are
    reported, not verified; :func:`unframe` decides what to do with
    them.
    """
    reader = _Reader(data)
    magic = reader.take(4, "magic")
    if magic != FRAME_MAGIC:
        raise _header_fail(
            f"bad magic {magic!r} (expected {FRAME_MAGIC!r})",
            check="magic",
            offset=0,
        )
    (name_len,) = reader.unpack("<H", "format name length")
    if name_len > _MAX_NAME:
        raise _header_fail(
            f"format name length {name_len} too large",
            check="name-length",
        )
    format_name = reader.ascii(name_len, "format name")
    reader.format_name = format_name
    rows, cols, nnz = reader.unpack("<IIQ", "shape header")
    (n_meta,) = reader.unpack("<H", "meta count")
    if n_meta > _MAX_META:
        raise _header_fail(
            f"meta count {n_meta} too large",
            format_name=format_name,
            check="meta-count",
        )
    meta: dict = {}
    for _ in range(n_meta):
        (key_len,) = reader.unpack("<H", "meta key length")
        if key_len > _MAX_NAME:
            raise _header_fail(
                f"meta key length {key_len} too large",
                format_name=format_name,
                check="meta-key-length",
            )
        key = reader.ascii(key_len, "meta key")
        (value,) = reader.unpack("<q", "meta value")
        meta[key] = int(value)
    (n_planes,) = reader.unpack("<H", "plane count")
    if n_planes > _MAX_PLANES:
        raise _header_fail(
            f"plane count {n_planes} too large",
            format_name=format_name,
            check="plane-count",
        )
    table = []
    for _ in range(n_planes):
        (plane_len,) = reader.unpack("<H", "plane name length")
        if plane_len > _MAX_NAME:
            raise _header_fail(
                f"plane name length {plane_len} too large",
                format_name=format_name,
                check="plane-name-length",
            )
        plane_name = reader.ascii(plane_len, "plane name")
        (tag_len,) = reader.unpack("<H", "dtype tag length")
        if tag_len > _MAX_NAME:
            raise _header_fail(
                f"dtype tag length {tag_len} too large",
                format_name=format_name,
                plane=plane_name,
                check="dtype-tag-length",
            )
        tag = reader.ascii(tag_len, "dtype tag")
        dtype = _parse_dtype(tag, format_name, plane_name)
        (ndim,) = reader.unpack("<B", "plane rank")
        if ndim > _MAX_NDIM:
            raise _header_fail(
                f"plane rank {ndim} too large",
                format_name=format_name,
                plane=plane_name,
                check="plane-rank",
            )
        dims = tuple(
            reader.unpack("<I", "plane dimension")[0]
            for _ in range(ndim)
        )
        nbytes, crc = reader.unpack("<QI", "plane size")
        elements = 1
        for dim in dims:
            elements *= dim
        if elements * dtype.itemsize != nbytes:
            raise _header_fail(
                f"dims {dims} x {dtype.str} = "
                f"{elements * dtype.itemsize} bytes, header says "
                f"{nbytes}",
                format_name=format_name,
                plane=plane_name,
                check="plane-size-consistency",
            )
        table.append((plane_name, tag, dims, nbytes, crc))
    header_stop = reader.cursor
    (header_crc,) = reader.unpack("<I", "header CRC")
    planes = []
    cursor = reader.cursor
    for plane_name, tag, dims, nbytes, crc in table:
        planes.append(
            PlaneSpan(
                name=plane_name,
                dtype=tag,
                shape=dims,
                start=cursor,
                stop=cursor + nbytes,
                crc=crc,
            )
        )
        cursor += nbytes
    layout = FrameLayout(
        format_name=format_name,
        shape=(int(rows), int(cols)),
        nnz=int(nnz),
        meta=meta,
        header_bytes=reader.cursor,
        header_crc=int(header_crc),
        planes=tuple(planes),
    )
    expected = zlib.crc32(data[:header_stop])
    # stash the verification result for unframe without re-hashing
    object.__setattr__(layout, "_header_crc_ok", expected == header_crc)
    return layout


def unframe(
    data: bytes,
    *,
    mode: str = "strict",
    verify_crc: bool = True,
) -> tuple[EncodedMatrix, RepairReport]:
    """Parse a frame back into an :class:`EncodedMatrix`.

    ``strict`` raises :class:`FormatIntegrityError` on any deviation:
    CRC mismatch (header or plane, unless ``verify_crc=False``),
    truncated payloads, trailing garbage.  ``repair`` keeps going —
    zero-padding truncated payloads, dropping trailing bytes and
    accepting CRC mismatches — and records every concession in the
    returned :class:`RepairReport`.  ``lenient`` is ``strict`` with a
    ``repair`` fallback.  An unparseable *header* always raises.
    """
    _check_mode(mode)
    if mode == "lenient":
        try:
            return unframe(data, mode="strict", verify_crc=verify_crc)
        except FormatIntegrityError:
            encoded, report = unframe(
                data, mode="repair", verify_crc=verify_crc
            )
            return encoded, RepairReport(
                report.format_name, "lenient", report.actions
            )
    layout = frame_layout(data)
    log = _RepairLog(layout.format_name, mode)
    strict = mode == "strict"
    if verify_crc and not getattr(layout, "_header_crc_ok"):
        if strict:
            raise FormatIntegrityError(
                "header CRC mismatch",
                format_name=layout.format_name,
                check="header-crc",
                kind="crc",
            )
        log.fixed("", "accepted-header-crc-mismatch")
    arrays: dict[str, np.ndarray] = {}
    for span in layout.planes:
        payload = data[span.start : span.stop]
        if len(payload) < span.nbytes:
            if strict:
                raise FormatIntegrityError(
                    f"payload truncated to {len(payload)} of "
                    f"{span.nbytes} bytes",
                    format_name=layout.format_name,
                    plane=span.name,
                    check="payload-truncated",
                    offset=len(payload),
                    kind="truncation",
                )
            _guard_alloc(
                span.nbytes,
                len(data),
                format_name=layout.format_name,
                plane=span.name,
            )
            log.fixed(
                span.name,
                "zero-padded-truncated-payload",
                f"{len(payload)} of {span.nbytes} bytes present",
            )
            payload = payload + b"\x00" * (span.nbytes - len(payload))
        if verify_crc and zlib.crc32(payload) != span.crc:
            if strict:
                raise FormatIntegrityError(
                    "payload CRC mismatch",
                    format_name=layout.format_name,
                    plane=span.name,
                    check="plane-crc",
                    kind="crc",
                )
            log.fixed(span.name, "accepted-payload-crc-mismatch")
        dtype = np.dtype(span.dtype)
        arrays[span.name] = (
            np.frombuffer(payload, dtype=dtype)
            .reshape(span.shape)
            .copy()
        )
    if len(data) > layout.declared_bytes:
        extra = len(data) - layout.declared_bytes
        if strict:
            raise FormatIntegrityError(
                f"{extra} trailing bytes after the last payload",
                format_name=layout.format_name,
                check="trailing-bytes",
                offset=layout.declared_bytes,
                kind="truncation",
            )
        log.fixed("", "dropped-trailing-bytes", f"{extra} bytes")
    encoded = EncodedMatrix(
        format_name=layout.format_name,
        shape=layout.shape,
        arrays=arrays,
        nnz=layout.nnz,
        meta=layout.meta,
    )
    return encoded, log.report()


@lru_cache(maxsize=None)
def frame_overhead_bytes(format_name: str, **format_kwargs: int) -> int:
    """Exact framing overhead of one tile of ``format_name``.

    The header's size depends only on the format (plane names, ranks,
    dtype tags and meta keys are fixed per codec), never on the matrix,
    so the overhead is a per-format constant: computed once by framing
    a small sample encoding and subtracting its payload bytes.
    """
    sample = SparseMatrix.from_triplets(
        (4, 4), [(0, 0, 1.0), (1, 2, 2.0), (3, 3, 3.0)]
    )
    encoded = get_format(format_name, **format_kwargs).encode(sample)
    payload_bytes = sum(
        np.ascontiguousarray(a).nbytes for a in encoded.arrays.values()
    )
    return len(frame(encoded)) - payload_bytes


# ----------------------------------------------------------------------
# Hardened decoding
# ----------------------------------------------------------------------
def format_for(encoded: EncodedMatrix) -> SparseFormat:
    """Instantiate the codec with the parameters the encoding declares.

    ``get_format(name)`` alone silently uses constructor defaults,
    which is wrong for e.g. a SELL-C-sigma stream encoded with a
    non-default slice height (its ``_inner`` view trusts
    ``self.slice_height``, not the meta).  This helper closes that gap
    for every parameterized codec.
    """
    meta = encoded.meta
    name = encoded.format_name
    if name == "sell":
        return get_format(name, slice_height=int(meta["slice_height"]))
    if name == "sell-c-sigma":
        return get_format(
            name,
            slice_height=int(meta["slice_height"]),
            sigma=int(meta["sigma"]),
        )
    if name == "bcsr":
        return get_format(name, block_size=int(meta["block_size"]))
    if name == "ell+coo":
        return get_format(name, width=int(meta["width"]))
    return get_format(name)


def _wrap_decode_failure(
    exc: Exception, format_name: str, kind: str
) -> FormatIntegrityError:
    reason = str(exc) or type(exc).__name__
    return FormatIntegrityError(
        f"decode failed ({type(exc).__name__}): {reason}",
        format_name=format_name,
        check="decode-failure",
        kind=kind,
    )


def safe_decode(
    encoded: EncodedMatrix, mode: str = "strict"
) -> tuple[SparseMatrix, RepairReport]:
    """Decode under a :data:`DECODE_MODES` policy.

    Never lets a bare numpy/``IndexError`` escape: whatever goes wrong
    surfaces as :class:`FormatIntegrityError` (strict/repair) or is
    absorbed by the repair fallback (lenient).
    """
    _check_mode(mode)
    name = encoded.format_name
    if mode == "strict":
        try:
            validate_encoding(encoded)
            matrix = format_for(encoded).decode(encoded)
        except FormatIntegrityError:
            raise
        except Exception as exc:
            raise _wrap_decode_failure(
                exc, name, "undecodable"
            ) from exc
        return matrix, RepairReport(name, mode)
    if mode == "repair":
        repaired, report = repair_encoding(encoded)
        try:
            validate_encoding(repaired)
            matrix = format_for(repaired).decode(repaired)
        except Exception as exc:
            raise _wrap_decode_failure(
                exc, name, "unrepairable"
            ) from exc
        return matrix, report
    # lenient: accept anything that decodes, else best-effort repair.
    try:
        matrix = format_for(encoded).decode(encoded)
        return matrix, RepairReport(name, mode)
    except Exception:
        matrix, report = safe_decode(encoded, "repair")
        return matrix, RepairReport(name, mode, report.actions)


def decode_framed(
    data: bytes,
    mode: str = "strict",
    *,
    verify_crc: bool = True,
) -> tuple[SparseMatrix, RepairReport]:
    """Unframe then decode under one policy, merging the reports."""
    encoded, frame_report = unframe(data, mode=mode, verify_crc=verify_crc)
    matrix, decode_report = safe_decode(encoded, mode)
    return matrix, frame_report + decode_report


# ----------------------------------------------------------------------
# Best-effort repair
# ----------------------------------------------------------------------
def _resize1d(
    array: np.ndarray,
    size: int,
    log: _RepairLog,
    plane: str,
    fill=0,
) -> np.ndarray:
    array = np.asarray(array).ravel()
    if array.size == size:
        return array
    log.fixed(
        plane,
        "resized" if array.size < size else "truncated",
        f"{array.size} -> {size} elements",
    )
    if array.size > size:
        return array[:size].copy()
    out = np.full(size, fill, dtype=array.dtype)
    out[: array.size] = array
    return out


def _resize2d(
    array: np.ndarray,
    shape: tuple[int, int],
    log: _RepairLog,
    plane: str,
    evidence_bytes: int,
) -> np.ndarray:
    array = np.asarray(array)
    if array.ndim == 2 and array.shape == shape:
        return array
    _guard_alloc(
        shape[0] * shape[1] * array.dtype.itemsize,
        evidence_bytes,
        format_name=log.format_name,
        plane=plane,
    )
    log.fixed(plane, "reshaped", f"{array.shape} -> {shape}")
    out = np.zeros(shape, dtype=array.dtype)
    flat = array.ravel()
    take = min(flat.size, out.size)
    out.ravel()[:take] = flat[:take]
    return out


def _clip_indices(
    array: np.ndarray,
    low: int,
    high: int,
    log: _RepairLog,
    plane: str,
) -> np.ndarray:
    """Clip to ``[low, high]`` inclusive, logging if anything moved."""
    high = max(high, low)
    clipped = np.clip(array, low, high)
    moved = int((clipped != array).sum())
    if moved:
        log.fixed(
            plane,
            "clipped-out-of-bounds",
            f"{moved} entries into [{low}, {high}]",
        )
    return clipped


def _evidence(encoded: EncodedMatrix) -> int:
    """Bytes of real data backing an encoding (the allocation budget)."""
    return sum(
        np.asarray(a).nbytes for a in encoded.arrays.values()
    )


def _fix_permutation(
    perm: np.ndarray, n: int, log: _RepairLog, plane: str = "perm"
) -> np.ndarray:
    perm = _resize1d(perm, n, log, plane, fill=np.iinfo(np.int64).max)
    order = np.argsort(perm, kind="stable")
    fixed = np.empty(n, dtype=np.int64)
    fixed[order] = np.arange(n)
    # ranks of a valid permutation reproduce it exactly
    if n and not np.array_equal(fixed, perm):
        log.fixed(plane, "re-bijectivized", "replaced by rank order")
    return fixed


def _repair_compressed_axis(
    encoded: EncodedMatrix,
    n_major: int,
    n_minor: int,
    log: _RepairLog,
) -> dict:
    offsets = np.asarray(encoded.array("offsets")).ravel()
    indices = np.asarray(encoded.array("indices")).ravel()
    values = np.asarray(encoded.array("values")).ravel()
    n_entries = min(indices.size, values.size)
    indices = _resize1d(indices, n_entries, log, "indices")
    values = _resize1d(values, n_entries, log, "values")
    offsets = _resize1d(offsets, n_major + 1, log, "offsets")
    fixed = np.clip(offsets, 0, n_entries)
    np.maximum.accumulate(fixed, out=fixed)
    fixed[0] = 0
    fixed[-1] = n_entries
    np.maximum.accumulate(fixed, out=fixed)
    if not np.array_equal(fixed, offsets):
        log.fixed("offsets", "re-monotonized")
    indices = _clip_indices(indices, 0, n_minor - 1, log, "indices")
    return {
        "arrays": {
            "offsets": fixed.astype(np.int64),
            "indices": indices.astype(np.int64),
            "values": values.astype(np.float64),
        },
        "nnz": int(np.count_nonzero(values)),
    }


def _repair_coordinates(
    encoded: EncodedMatrix, log: _RepairLog, *, dedup: bool
) -> dict:
    rows = np.asarray(encoded.array("rows")).ravel()
    cols = np.asarray(encoded.array("cols")).ravel()
    values = np.asarray(encoded.array("values")).ravel()
    n = min(rows.size, cols.size, values.size)
    rows = _resize1d(rows, n, log, "rows")
    cols = _resize1d(cols, n, log, "cols")
    values = _resize1d(values, n, log, "values")
    rows = _clip_indices(rows, 0, encoded.n_rows - 1, log, "rows")
    cols = _clip_indices(cols, 0, encoded.n_cols - 1, log, "cols")
    if dedup and n:
        keys = rows.astype(np.int64) * encoded.n_cols + cols
        # first occurrences, in row-major key order
        _, order = np.unique(keys, return_index=True)
        if order.size != n:
            log.fixed(
                "rows",
                "deduplicated",
                f"dropped {n - order.size} duplicates",
            )
        elif not np.array_equal(order, np.arange(n)):
            log.fixed("rows", "re-sorted-row-major")
        rows, cols, values = rows[order], cols[order], values[order]
    return {
        "arrays": {
            "rows": rows.astype(np.int64),
            "cols": cols.astype(np.int64),
            "values": values.astype(np.float64),
        },
        "nnz": int(np.count_nonzero(values)),
    }


def _repair_padded_planes(
    encoded: EncodedMatrix, log: _RepairLog
) -> tuple[np.ndarray, np.ndarray, int]:
    """Shared ELL-style fix: consistent planes, bounds, sentinels."""
    values = np.asarray(encoded.array("values"))
    indices = np.asarray(encoded.array("indices"))
    if values.ndim == 2 and values.shape[1] >= 1:
        width = int(values.shape[1])
    else:
        width = max(1, int(encoded.meta.get("width", 1)))
    shape = (encoded.n_rows, width)
    evidence = _evidence(encoded)
    values = _resize2d(values, shape, log, "values", evidence)
    indices = _resize2d(indices, shape, log, "indices", evidence)
    indices = _clip_indices(
        indices, 0, encoded.n_cols - 1, log, "indices"
    )
    padding = values == 0.0
    broken = padding & (indices != 0)
    if broken.any():
        indices = indices.copy()
        indices[broken] = 0
        log.fixed(
            "indices",
            "reset-padding-sentinels",
            f"{int(broken.sum())} slots",
        )
    return values.astype(np.float64), indices.astype(np.int64), width


def _repair_ell(encoded: EncodedMatrix, log: _RepairLog) -> dict:
    values, indices, width = _repair_padded_planes(encoded, log)
    return {
        "arrays": {"values": values, "indices": indices},
        "nnz": int(np.count_nonzero(values)),
        "meta": {"width": width},
    }


def _repair_ell_coo(encoded: EncodedMatrix, log: _RepairLog) -> dict:
    values, indices, width = _repair_padded_planes(encoded, log)
    rows = np.asarray(encoded.array("coo_rows")).ravel()
    cols = np.asarray(encoded.array("coo_cols")).ravel()
    overflow = np.asarray(encoded.array("coo_values")).ravel()
    n = min(rows.size, cols.size, overflow.size)
    rows = _resize1d(rows, n, log, "coo_rows")
    cols = _resize1d(cols, n, log, "coo_cols")
    overflow = _resize1d(overflow, n, log, "coo_values")
    rows = _clip_indices(rows, 0, encoded.n_rows - 1, log, "coo_rows")
    cols = _clip_indices(cols, 0, encoded.n_cols - 1, log, "coo_cols")
    return {
        "arrays": {
            "values": values,
            "indices": indices,
            "coo_rows": rows.astype(np.int64),
            "coo_cols": cols.astype(np.int64),
            "coo_values": overflow.astype(np.float64),
        },
        "nnz": int(np.count_nonzero(values))
        + int(np.count_nonzero(overflow)),
        "meta": {"width": width},
    }


def _repair_lil(encoded: EncodedMatrix, log: _RepairLog) -> dict:
    values = np.asarray(encoded.array("values"))
    indices = np.asarray(encoded.array("indices"))
    height = max(
        1,
        values.shape[0]
        if values.ndim == 2
        else int(encoded.meta.get("height", 1)),
    )
    shape = (height, encoded.n_cols)
    evidence = _evidence(encoded)
    values = _resize2d(values, shape, log, "values", evidence)
    indices = _resize2d(indices, shape, log, "indices", evidence)
    sentinel = encoded.n_rows
    indices = _clip_indices(indices, 0, sentinel, log, "indices")
    # re-top-push each column: live entries first, sentinels below.
    pushed_values = np.zeros_like(values)
    pushed_indices = np.full_like(indices, sentinel)
    repacked = 0
    for col in range(shape[1]):
        live = np.nonzero(indices[:, col] < sentinel)[0]
        if live.size and int(live.max()) != live.size - 1:
            repacked += 1
        pushed_values[: live.size, col] = values[live, col]
        pushed_indices[: live.size, col] = indices[live, col]
    if repacked:
        log.fixed(
            "indices", "re-top-pushed", f"{repacked} columns repacked"
        )
    live_mask = pushed_indices < sentinel
    return {
        "arrays": {
            "values": pushed_values.astype(np.float64),
            "indices": pushed_indices.astype(np.int64),
        },
        "nnz": int(np.count_nonzero(pushed_values[live_mask])),
        "meta": {"height": height, "width": encoded.n_cols},
    }


def _repair_dia(encoded: EncodedMatrix, log: _RepairLog) -> dict:
    offsets = np.asarray(encoded.array("offsets")).ravel()
    lengths = np.asarray(encoded.array("lengths")).ravel()
    diags = np.asarray(encoded.array("diagonals"))
    if diags.ndim != 2:
        diags = diags.reshape(diags.size, 1) if diags.size else (
            np.zeros((0, 1))
        )
        log.fixed("diagonals", "reshaped", "flattened input re-ranked")
    n = min(offsets.size, lengths.size, diags.shape[0])
    offsets = _resize1d(offsets, n, log, "offsets")
    lengths = _resize1d(lengths, n, log, "lengths")
    if diags.shape[0] != n:
        log.fixed(
            "diagonals", "truncated", f"{diags.shape[0]} -> {n} rows"
        )
        diags = diags[:n]
    offsets = _clip_indices(
        offsets, 1 - encoded.n_rows, encoded.n_cols - 1, log, "offsets"
    )
    unique, first = np.unique(offsets, return_index=True)
    if unique.size != offsets.size or not np.array_equal(
        unique, offsets
    ):
        log.fixed(
            "offsets",
            "re-monotonized",
            f"kept {unique.size} of {offsets.size} diagonals",
        )
    offsets, lengths, diags = unique, lengths[first], diags[first]
    lengths = _clip_indices(
        lengths, 0, diags.shape[1] if diags.size else 0, log, "lengths"
    )
    return {
        "arrays": {
            "offsets": offsets.astype(np.int64),
            "lengths": lengths.astype(np.int64),
            "diagonals": diags.astype(np.float64),
        },
        "nnz": int(np.count_nonzero(diags)),
    }


def _repair_bcsr(encoded: EncodedMatrix, log: _RepairLog) -> dict:
    values = np.asarray(encoded.array("values"))
    b = int(encoded.meta.get("block_size", 0))
    if b < 1 or b * b != (values.shape[1] if values.ndim == 2 else -1):
        inferred = (
            isqrt(values.shape[1]) if values.ndim == 2 else 0
        )
        if inferred >= 1 and inferred * inferred == values.shape[1]:
            if b != inferred:
                log.fixed(
                    "", "inferred-block-size", f"{b} -> {inferred}"
                )
            b = inferred
        elif b < 1:
            log.fixed("", "reset-block-size", f"{b} -> 1")
            b = 1
    indices = np.asarray(encoded.array("indices")).ravel()
    n_blocks = min(
        indices.size, values.shape[0] if values.ndim == 2 else 0
    )
    evidence = _evidence(encoded)
    values = _resize2d(values, (n_blocks, b * b), log, "values", evidence)
    indices = _resize1d(indices, n_blocks, log, "indices")
    indices = _clip_indices(
        indices, 0, encoded.n_cols - 1, log, "indices"
    )
    misaligned = indices % b != 0
    if misaligned.any():
        indices = indices - indices % b
        log.fixed(
            "indices",
            "re-block-aligned",
            f"{int(misaligned.sum())} block columns",
        )
    block_rows = -(-encoded.n_rows // b)
    offsets = np.asarray(encoded.array("offsets")).ravel()
    offsets = _resize1d(offsets, block_rows + 1, log, "offsets")
    fixed = np.clip(offsets, 0, n_blocks)
    np.maximum.accumulate(fixed, out=fixed)
    fixed[0] = 0
    fixed[-1] = n_blocks
    np.maximum.accumulate(fixed, out=fixed)
    if not np.array_equal(fixed, offsets):
        log.fixed("offsets", "re-monotonized")
    return {
        "arrays": {
            "offsets": fixed.astype(np.int64),
            "indices": indices.astype(np.int64),
            "values": values.astype(np.float64),
        },
        "nnz": int(np.count_nonzero(values)),
        "meta": {"block_size": b},
    }


def _repair_bitmap(encoded: EncodedMatrix, log: _RepairLog) -> dict:
    total = encoded.n_rows * encoded.n_cols
    mask_bytes = -(-total // 8)
    evidence = _evidence(encoded)
    _guard_alloc(
        mask_bytes, evidence, format_name=log.format_name, plane="mask"
    )
    mask = np.asarray(encoded.array("mask")).ravel().astype(np.uint8)
    mask = _resize1d(mask, mask_bytes, log, "mask").astype(np.uint8)
    bits = np.unpackbits(mask)
    if bits[total:].any():
        bits[total:] = 0
        mask = np.packbits(bits)
        log.fixed("mask", "cleared-tail-bits")
    popcount = int(bits[:total].sum())
    values = np.asarray(encoded.array("values")).ravel()
    values = _resize1d(values, popcount, log, "values")
    return {
        "arrays": {
            "mask": mask,
            "values": values.astype(np.float64),
        },
        "nnz": popcount,
    }


def _repair_sell_planes(
    encoded: EncodedMatrix, log: _RepairLog, slice_height: int
) -> tuple[dict, int]:
    """Shared SELL / SELL-C-sigma slice repair; returns arrays + h."""
    h = max(1, slice_height)
    if h != slice_height:
        log.fixed("", "reset-slice-height", f"{slice_height} -> {h}")
    n_slices = -(-encoded.n_rows // h)
    widths = np.asarray(encoded.array("widths")).ravel()
    widths = _resize1d(widths, n_slices, log, "widths", fill=1)
    widths = _clip_indices(
        widths, 1, max(1, encoded.n_cols), log, "widths"
    )
    rows_per_slice = np.minimum(
        h, encoded.n_rows - h * np.arange(n_slices)
    )
    slots = int((rows_per_slice * widths).sum())
    evidence = _evidence(encoded)
    _guard_alloc(
        slots * 8, evidence, format_name=log.format_name, plane="values"
    )
    values = _resize1d(
        np.asarray(encoded.array("values")).ravel(), slots, log, "values"
    )
    indices = _resize1d(
        np.asarray(encoded.array("indices")).ravel(),
        slots,
        log,
        "indices",
    )
    indices = _clip_indices(
        indices, 0, encoded.n_cols - 1, log, "indices"
    )
    broken = (values == 0.0) & (indices != 0)
    if broken.any():
        indices = indices.copy()
        indices[broken] = 0
        log.fixed(
            "indices",
            "reset-padding-sentinels",
            f"{int(broken.sum())} slots",
        )
    arrays = {
        "values": values.astype(np.float64),
        "indices": indices.astype(np.int64),
        "widths": widths.astype(np.int64),
    }
    return arrays, h


def _repair_sell(encoded: EncodedMatrix, log: _RepairLog) -> dict:
    arrays, h = _repair_sell_planes(
        encoded, log, int(encoded.meta.get("slice_height", 1))
    )
    return {
        "arrays": arrays,
        "nnz": int(np.count_nonzero(arrays["values"])),
        "meta": {"slice_height": h},
    }


def _repair_sell_c_sigma(
    encoded: EncodedMatrix, log: _RepairLog
) -> dict:
    arrays, h = _repair_sell_planes(
        encoded, log, int(encoded.meta.get("slice_height", 1))
    )
    sigma = int(encoded.meta.get("sigma", h))
    if sigma < h or sigma % h != 0:
        fixed_sigma = h * max(1, sigma // h if sigma >= h else 1)
        log.fixed("", "reset-sigma", f"{sigma} -> {fixed_sigma}")
        sigma = fixed_sigma
    arrays["perm"] = _fix_permutation(
        np.asarray(encoded.array("perm")), encoded.n_rows, log
    )
    return {
        "arrays": arrays,
        "nnz": int(np.count_nonzero(arrays["values"])),
        "meta": {"slice_height": h, "sigma": sigma},
    }


def _repair_jds(encoded: EncodedMatrix, log: _RepairLog) -> dict:
    perm = _fix_permutation(
        np.asarray(encoded.array("perm")), encoded.n_rows, log
    )
    lengths = np.asarray(encoded.array("jd_lengths")).ravel()
    lengths = _clip_indices(
        lengths, 0, encoded.n_rows, log, "jd_lengths"
    )
    monotone = np.minimum.accumulate(lengths) if lengths.size else lengths
    if not np.array_equal(monotone, lengths):
        log.fixed("jd_lengths", "re-monotonized", "non-increasing")
    lengths = monotone
    total = int(lengths.sum())
    evidence = _evidence(encoded)
    _guard_alloc(
        total * 8, evidence, format_name=log.format_name, plane="values"
    )
    values = _resize1d(
        np.asarray(encoded.array("values")).ravel(), total, log, "values"
    )
    indices = _resize1d(
        np.asarray(encoded.array("indices")).ravel(),
        total,
        log,
        "indices",
    )
    indices = _clip_indices(
        indices, 0, encoded.n_cols - 1, log, "indices"
    )
    return {
        "arrays": {
            "perm": perm,
            "jd_lengths": lengths.astype(np.int64),
            "values": values.astype(np.float64),
            "indices": indices.astype(np.int64),
        },
        "nnz": int(np.count_nonzero(values)),
        "meta": {"width": int(lengths.size)},
    }


def _repair_dense(encoded: EncodedMatrix, log: _RepairLog) -> dict:
    values = _resize2d(
        np.asarray(encoded.array("values")),
        encoded.shape,
        log,
        "values",
        _evidence(encoded),
    )
    return {
        "arrays": {"values": values.astype(np.float64)},
        "nnz": int(np.count_nonzero(values)),
    }


_REPAIRERS = {
    "dense": _repair_dense,
    "csr": lambda e, log: _repair_compressed_axis(
        e, e.n_rows, e.n_cols, log
    ),
    "csc": lambda e, log: _repair_compressed_axis(
        e, e.n_cols, e.n_rows, log
    ),
    "coo": lambda e, log: _repair_coordinates(e, log, dedup=True),
    "dok": lambda e, log: _repair_coordinates(e, log, dedup=True),
    "ell": _repair_ell,
    "ell+coo": _repair_ell_coo,
    "lil": _repair_lil,
    "dia": _repair_dia,
    "bcsr": _repair_bcsr,
    "bitmap": _repair_bitmap,
    "sell": _repair_sell,
    "sell-c-sigma": _repair_sell_c_sigma,
    "jds": _repair_jds,
}


def repair_encoding(
    encoded: EncodedMatrix,
) -> tuple[EncodedMatrix, RepairReport]:
    """Best-effort structural repair of a possibly corrupted encoding.

    Returns the (possibly new) encoding together with the
    :class:`RepairReport` of fixes applied; a clean input comes back
    untouched with an empty (falsy) report.  Formats without a repair
    strategy raise :class:`FormatIntegrityError` — corruption in a
    format we cannot reason about is not silently passed through.
    """
    log = _RepairLog(encoded.format_name, "repair")
    try:
        repairer = _REPAIRERS[encoded.format_name]
    except KeyError:
        raise FormatIntegrityError(
            "no repair strategy registered for this format",
            format_name=encoded.format_name,
            check="repair-unsupported",
            kind="unrepairable",
        ) from None
    try:
        fixed = repairer(encoded, log)
    except FormatIntegrityError:
        raise
    except Exception as exc:
        raise _wrap_decode_failure(
            exc, encoded.format_name, "unrepairable"
        ) from exc
    report = log.report()
    if not report:
        return encoded, report
    meta = dict(encoded.meta)
    meta.update(fixed.get("meta", {}))
    repaired = EncodedMatrix(
        format_name=encoded.format_name,
        shape=encoded.shape,
        arrays=fixed["arrays"],
        nnz=int(fixed["nnz"]),
        meta=meta,
    )
    return repaired, report
