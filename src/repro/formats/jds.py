"""Jagged Diagonal Storage (JDS).

Section 2 lists JDS among the popular ELL variants: rows are sorted
from longest to shortest (for vector machines), left-packed, and then
stored as "jagged diagonals" — the j-th stored column holds the j-th
non-zero of every row long enough to have one.  A permutation array
maps sorted positions back to the original rows.
"""

from __future__ import annotations

import numpy as np

from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)
from .ell import ell_slot_arrays

__all__ = ["JdsFormat"]


class JdsFormat(SparseFormat):
    """Row-sorted jagged-diagonal storage.

    Arrays: ``perm`` (sorted position -> original row), ``jd_lengths``
    (rows participating in each jagged diagonal), and the flat
    ``values`` / ``indices`` streams concatenated diagonal by diagonal.
    """

    name = "jds"

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        counts = matrix.row_nnz()
        perm = np.argsort(-counts, kind="stable").astype(np.int64)
        width = int(counts.max()) if counts.size else 0
        sorted_counts = counts[perm]
        if width == 0:
            return EncodedMatrix(
                format_name=self.name,
                shape=matrix.shape,
                arrays={
                    "perm": perm,
                    "jd_lengths": np.zeros(0, dtype=np.int64),
                    "values": np.zeros(0),
                    "indices": np.zeros(0, dtype=np.int64),
                },
                nnz=0,
                meta={"width": 0},
            )
        slot_values, slot_indices = ell_slot_arrays(matrix, width)
        # reorder rows longest-first, then read off column-by-column.
        slot_values = slot_values[perm]
        slot_indices = slot_indices[perm]
        jd_lengths = np.array(
            [int((sorted_counts > j).sum()) for j in range(width)],
            dtype=np.int64,
        )
        value_parts = [
            slot_values[: jd_lengths[j], j] for j in range(width)
        ]
        index_parts = [
            slot_indices[: jd_lengths[j], j] for j in range(width)
        ]
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={
                "perm": perm,
                "jd_lengths": jd_lengths,
                "values": np.concatenate(value_parts),
                "indices": np.concatenate(index_parts),
            },
            nnz=matrix.nnz,
            meta={"width": width},
        )

    def _iter_diagonals(self, encoded: EncodedMatrix):
        """Yield ``(rows, values, indices)`` per jagged diagonal."""
        perm = encoded.array("perm")
        lengths = encoded.array("jd_lengths")
        values = encoded.array("values")
        indices = encoded.array("indices")
        cursor = 0
        for length in lengths:
            length = int(length)
            yield (
                perm[:length],
                values[cursor : cursor + length],
                indices[cursor : cursor + length],
            )
            cursor += length

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        rows_parts, cols_parts, vals_parts = [], [], []
        for rows, values, indices in self._iter_diagonals(encoded):
            keep = values != 0.0
            rows_parts.append(rows[keep])
            cols_parts.append(indices[keep])
            vals_parts.append(values[keep])
        if not rows_parts:
            return SparseMatrix.empty(encoded.shape)
        return SparseMatrix(
            encoded.shape,
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
        )

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        """Vector-machine style: one pass per jagged diagonal."""
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        out = np.zeros(encoded.n_rows)
        for rows, values, indices in self._iter_diagonals(encoded):
            out[rows] += values * vector[indices]
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        self._check_format(encoded)
        width = int(encoded.meta["width"])
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=encoded.nnz * VALUE_BYTES,
            metadata_bytes=(
                encoded.nnz  # column indices
                + encoded.n_rows  # permutation
                + width  # jagged-diagonal lengths
            )
            * INDEX_BYTES,
        )
