"""List of Lists (LIL), Copernicus orientation.

The paper's LIL variant (Figure 1f) compresses *rows upward* within each
column: all non-zeros of a column are pushed to the top of that column
and their original row indices are stored alongside.  Decompression is a
multi-way merge across columns by minimum row index (Listing 4), which
gives deterministic parallel BRAM access — the key advantage the paper
highlights over CSR.
"""

from __future__ import annotations

import numpy as np

from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)

__all__ = ["LilFormat"]


class LilFormat(SparseFormat):
    """Column-wise top-pushed lists of (row index, value) pairs.

    ``values`` and ``indices`` are ``height x width`` arrays, where
    ``width = n_cols`` and ``height`` is the longest column's non-zero
    count.  Unused slots carry the sentinel row index ``n_rows``.
    """

    name = "lil"

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        col_counts = matrix.col_nnz()
        height = max(1, int(col_counts.max()) if col_counts.size else 1)
        width = matrix.n_cols
        values = np.zeros((height, width))
        indices = np.full((height, width), matrix.n_rows, dtype=np.int64)
        # triplets are row-major sorted; within each column rows ascend
        # after a stable per-column ordering.
        order = np.argsort(matrix.cols * (matrix.n_rows + 1) + matrix.rows,
                           kind="stable")
        cols = matrix.cols[order]
        rows = matrix.rows[order]
        vals = matrix.vals[order]
        slot = np.zeros(width, dtype=np.int64)
        for row, col, val in zip(rows, cols, vals):
            k = slot[col]
            values[k, col] = val
            indices[k, col] = row
            slot[col] = k + 1
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={"values": values, "indices": indices},
            nnz=matrix.nnz,
            meta={"height": height, "width": width},
        )

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        indices = encoded.array("indices")
        values = encoded.array("values")
        slots, cols = np.nonzero(indices < encoded.n_rows)
        return SparseMatrix(
            encoded.shape,
            indices[slots, cols],
            cols,
            values[slots, cols],
        )

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        """Min-row merge across columns mirroring Listing 4.

        Per emitted row: a pipelined scan finds the minimum pending row
        index, then an unrolled gather pulls every column whose head
        matches it — one merge step per non-zero row.
        """
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        indices = encoded.array("indices")
        values = encoded.array("values")
        height, width = indices.shape
        sentinel = encoded.n_rows
        read_inx = np.zeros(width, dtype=np.int64)
        out = np.zeros(encoded.n_rows)
        while True:
            heads = np.where(
                read_inx < height,
                indices[np.minimum(read_inx, height - 1), np.arange(width)],
                sentinel,
            )
            min_row = int(heads.min())
            if min_row >= sentinel:
                break
            active = heads == min_row
            cols = np.nonzero(active)[0]
            row_vals = values[read_inx[cols], cols]
            out[min_row] = row_vals @ vector[cols]
            read_inx[cols] += 1
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        """Non-zeros plus per-entry row indices plus one terminator row.

        The paper charges LIL "one additional row for indicating the
        end of the non-zero rows"; we account one index word per column
        for it.
        """
        self._check_format(encoded)
        width = int(encoded.meta["width"])
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=encoded.nnz * VALUE_BYTES,
            metadata_bytes=(encoded.nnz + width) * INDEX_BYTES,
        )
