"""Name-based registry of the sparse formats.

The registry gives every tool in the library (simulator, sweeps,
benchmarks, CLI-style examples) a single way to resolve a format by its
short name.  The ordering of :data:`PAPER_FORMATS` follows the paper's
figures: dense baseline first, then the seven characterized formats.
"""

from __future__ import annotations

from typing import Callable

from ..errors import UnknownFormatError
from .base import SparseFormat
from .bcsr import BcsrFormat
from .bitmap import BitmapFormat
from .coo import CooFormat
from .csc import CscFormat
from .csr import CsrFormat
from .dense import DenseFormat
from .dia import DiaFormat
from .dok import DokFormat
from .ell import EllFormat
from .hybrid import EllCooFormat
from .jds import JdsFormat
from .lil import LilFormat
from .sell import SellFormat
from .sell_c_sigma import SellCSigmaFormat

__all__ = [
    "ALL_FORMATS",
    "PAPER_FORMATS",
    "SPARSE_FORMATS",
    "get_format",
    "available_formats",
    "register_format",
]

_FACTORIES: dict[str, Callable[[], SparseFormat]] = {
    DenseFormat.name: DenseFormat,
    CsrFormat.name: CsrFormat,
    CscFormat.name: CscFormat,
    BcsrFormat.name: BcsrFormat,
    CooFormat.name: CooFormat,
    DokFormat.name: DokFormat,
    LilFormat.name: LilFormat,
    EllFormat.name: EllFormat,
    SellFormat.name: SellFormat,
    DiaFormat.name: DiaFormat,
    JdsFormat.name: JdsFormat,
    EllCooFormat.name: EllCooFormat,
    SellCSigmaFormat.name: SellCSigmaFormat,
    BitmapFormat.name: BitmapFormat,
}

#: Every format the library ships, including the DOK/SELL extensions.
ALL_FORMATS: tuple[str, ...] = tuple(_FACTORIES)

#: The formats plotted in the paper's figures, in figure order.
PAPER_FORMATS: tuple[str, ...] = (
    "dense",
    "csr",
    "bcsr",
    "csc",
    "lil",
    "ell",
    "coo",
    "dia",
)

#: The seven compressed formats (paper set minus the dense baseline).
SPARSE_FORMATS: tuple[str, ...] = tuple(
    name for name in PAPER_FORMATS if name != "dense"
)


def get_format(name: str, **kwargs: int) -> SparseFormat:
    """Instantiate a format by registry name.

    Keyword arguments are forwarded to the format constructor (e.g.
    ``get_format("bcsr", block_size=8)``).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownFormatError(name, ALL_FORMATS) from None
    return factory(**kwargs)


def available_formats() -> tuple[str, ...]:
    """Names of every registered format."""
    return tuple(_FACTORIES)


def register_format(factory: Callable[[], SparseFormat], name: str) -> None:
    """Register a user-defined format under ``name``.

    Later registrations replace earlier ones, allowing experiments with
    modified variants of the built-in formats.
    """
    _FACTORIES[name] = factory
