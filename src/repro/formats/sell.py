"""Sliced ELLPACK (SELL).

The matrix is cut row-wise into fixed-height slices and ELL is applied
per slice (Section 2), so each slice pads only to *its own* longest row.
The paper lists SELL as the variant that "reduces the overhead of zero
paddings for larger matrices"; it is included here as the natural
extension format beyond the seven headline ones.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)
from .ell import ell_slot_arrays

__all__ = ["SellFormat", "DEFAULT_SLICE_HEIGHT"]

#: Default slice height; matches the BCSR block edge used in the paper.
DEFAULT_SLICE_HEIGHT = 4


class SellFormat(SparseFormat):
    """Per-slice padded row storage.

    Slices are concatenated into flat ``values``/``indices`` arrays; a
    ``widths`` array records each slice's padded width and doubles as
    the per-slice offset table.
    """

    name = "sell"

    def __init__(self, slice_height: int = DEFAULT_SLICE_HEIGHT) -> None:
        if slice_height < 1:
            raise FormatError(
                f"slice_height must be >= 1, got {slice_height}"
            )
        self.slice_height = slice_height

    def __repr__(self) -> str:
        return f"SellFormat(slice_height={self.slice_height})"

    def _n_slices(self, n_rows: int) -> int:
        return -(-n_rows // self.slice_height)

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        h = self.slice_height
        n_slices = self._n_slices(matrix.n_rows)
        widths = np.zeros(n_slices, dtype=np.int64)
        value_parts: list[np.ndarray] = []
        index_parts: list[np.ndarray] = []
        for s in range(n_slices):
            row_stop = min((s + 1) * h, matrix.n_rows)
            chunk = matrix.submatrix(s * h, row_stop, 0, matrix.n_cols)
            row_counts = chunk.row_nnz()
            width = max(1, int(row_counts.max()) if row_counts.size else 1)
            widths[s] = width
            vals, inx = ell_slot_arrays(chunk, width)
            value_parts.append(vals.ravel())
            index_parts.append(inx.ravel())
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays={
                "values": np.concatenate(value_parts),
                "indices": np.concatenate(index_parts),
                "widths": widths,
            },
            nnz=matrix.nnz,
            meta={"slice_height": h},
        )

    def _iter_slices(self, encoded: EncodedMatrix):
        """Yield ``(row_start, rows, values_2d, indices_2d)`` per slice."""
        h = int(encoded.meta["slice_height"])
        widths = encoded.array("widths")
        values = encoded.array("values")
        indices = encoded.array("indices")
        cursor = 0
        for s, width in enumerate(widths):
            row_start = s * h
            rows = min(h, encoded.n_rows - row_start)
            count = rows * int(width)
            yield (
                row_start,
                rows,
                values[cursor : cursor + count].reshape(rows, int(width)),
                indices[cursor : cursor + count].reshape(rows, int(width)),
            )
            cursor += count

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        triplets = []
        for row_start, _, vals, inx in self._iter_slices(encoded):
            local_rows, slots = np.nonzero(vals)
            for lr, slot in zip(local_rows, slots):
                triplets.append(
                    (row_start + int(lr), int(inx[lr, slot]), vals[lr, slot])
                )
        return SparseMatrix.from_triplets(encoded.shape, triplets)

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        out = np.zeros(encoded.n_rows)
        for row_start, rows, vals, inx in self._iter_slices(encoded):
            out[row_start : row_start + rows] = np.einsum(
                "rw,rw->r", vals, vector[inx]
            )
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        self._check_format(encoded)
        slots = encoded.array("values").size
        n_slices = encoded.array("widths").size
        return SizeBreakdown(
            useful_bytes=encoded.nnz * VALUE_BYTES,
            data_bytes=slots * VALUE_BYTES,
            metadata_bytes=(slots + n_slices) * INDEX_BYTES,
        )
