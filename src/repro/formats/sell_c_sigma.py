"""SELL-C-sigma.

Section 2: "SELL-C-sigma is a variant of JDS that only sorts rows
within a window of sigma" — rows are sorted by length inside each
sigma-sized window (keeping the permutation local and cheap), then
sliced into chunks of C and padded per slice like SELL.  The format of
Kreutzer et al. for wide-SIMD machines.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..matrix import SparseMatrix
from .base import (
    INDEX_BYTES,
    EncodedMatrix,
    SizeBreakdown,
    SparseFormat,
)
from .sell import SellFormat

__all__ = ["SellCSigmaFormat"]


class SellCSigmaFormat(SparseFormat):
    """Window-sorted sliced ELLPACK.

    Parameters
    ----------
    slice_height:
        ``C`` — rows per padded slice.
    sigma:
        Sorting-window height; must be a multiple of ``slice_height``
        (the usual constraint, so slices never straddle windows).
    """

    name = "sell-c-sigma"

    def __init__(self, slice_height: int = 4, sigma: int = 16) -> None:
        if slice_height < 1:
            raise FormatError(
                f"slice_height must be >= 1, got {slice_height}"
            )
        if sigma < slice_height or sigma % slice_height != 0:
            raise FormatError(
                f"sigma ({sigma}) must be a positive multiple of "
                f"slice_height ({slice_height})"
            )
        self.slice_height = slice_height
        self.sigma = sigma
        self._sell = SellFormat(slice_height)

    def __repr__(self) -> str:
        return (
            f"SellCSigmaFormat(slice_height={self.slice_height}, "
            f"sigma={self.sigma})"
        )

    def _permutation(self, matrix: SparseMatrix) -> np.ndarray:
        """Sorted position -> original row, window by window."""
        counts = matrix.row_nnz()
        perm = np.arange(matrix.n_rows, dtype=np.int64)
        for start in range(0, matrix.n_rows, self.sigma):
            stop = min(start + self.sigma, matrix.n_rows)
            window = perm[start:stop]
            order = np.argsort(-counts[window], kind="stable")
            perm[start:stop] = window[order]
        return perm

    def _permuted(self, matrix: SparseMatrix, perm: np.ndarray
                  ) -> SparseMatrix:
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(perm.size)
        return SparseMatrix(
            matrix.shape, inverse[matrix.rows], matrix.cols, matrix.vals
        )

    def encode(self, matrix: SparseMatrix) -> EncodedMatrix:
        perm = self._permutation(matrix)
        inner = self._sell.encode(self._permuted(matrix, perm))
        arrays = dict(inner.arrays)
        arrays["perm"] = perm
        return EncodedMatrix(
            format_name=self.name,
            shape=matrix.shape,
            arrays=arrays,
            nnz=matrix.nnz,
            meta={
                "slice_height": self.slice_height,
                "sigma": self.sigma,
            },
        )

    def _inner(self, encoded: EncodedMatrix) -> EncodedMatrix:
        arrays = {
            name: array
            for name, array in encoded.arrays.items()
            if name != "perm"
        }
        return EncodedMatrix(
            format_name=self._sell.name,
            shape=encoded.shape,
            arrays=arrays,
            nnz=encoded.nnz,
            meta={"slice_height": self.slice_height},
        )

    def decode(self, encoded: EncodedMatrix) -> SparseMatrix:
        self._check_format(encoded)
        perm = encoded.array("perm")
        permuted = self._sell.decode(self._inner(encoded))
        return SparseMatrix(
            encoded.shape, perm[permuted.rows], permuted.cols, permuted.vals
        )

    def spmv(self, encoded: EncodedMatrix, x: np.ndarray) -> np.ndarray:
        self._check_format(encoded)
        vector = self._check_vector(encoded, x)
        permuted_out = self._sell.spmv(self._inner(encoded), vector)
        out = np.zeros(encoded.n_rows)
        out[encoded.array("perm")] = permuted_out
        return out

    def size(self, encoded: EncodedMatrix) -> SizeBreakdown:
        """SELL cost plus the permutation array."""
        self._check_format(encoded)
        inner = self._sell.size(self._inner(encoded))
        return SizeBreakdown(
            useful_bytes=inner.useful_bytes,
            data_bytes=inner.data_bytes,
            metadata_bytes=inner.metadata_bytes
            + encoded.n_rows * INDEX_BYTES,
        )
