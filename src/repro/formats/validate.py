"""Structural validation of encoded matrices.

Decoding proves an encoding is *usable*; validation proves it is
*well-formed* without decoding — the checks a hardware loader would
perform before streaming (offset monotonicity, index bounds, plane
shapes, mask sizes).  Useful both as a debugging aid for new formats
and as a guard when encodings arrive from outside the library.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from .base import EncodedMatrix

__all__ = ["validate_encoding"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FormatError(f"invalid encoding: {message}")


def _validate_compressed_axis(
    encoded: EncodedMatrix, n_major: int, n_minor: int
) -> None:
    """Shared CSR/CSC checks (offsets + minor indices + values)."""
    offsets = encoded.array("offsets")
    indices = encoded.array("indices")
    values = encoded.array("values")
    _require(offsets.size == n_major + 1, "offsets length mismatch")
    _require(offsets[0] == 0, "offsets must start at zero")
    _require(bool(np.all(np.diff(offsets) >= 0)), "offsets not monotone")
    _require(int(offsets[-1]) == values.size, "offsets do not cover values")
    _require(indices.size == values.size, "indices/values length mismatch")
    if indices.size:
        _require(
            0 <= int(indices.min()) and int(indices.max()) < n_minor,
            "minor indices out of bounds",
        )
    _require(encoded.nnz == int(np.count_nonzero(values)),
             "nnz disagrees with stored values")


def _validate_coordinates(encoded: EncodedMatrix) -> None:
    rows = encoded.array("rows")
    cols = encoded.array("cols")
    values = encoded.array("values")
    _require(rows.size == cols.size == values.size,
             "tuple arrays disagree in length")
    if rows.size:
        _require(0 <= int(rows.min()) and int(rows.max()) < encoded.n_rows,
                 "row indices out of bounds")
        _require(0 <= int(cols.min()) and int(cols.max()) < encoded.n_cols,
                 "column indices out of bounds")
    _require(encoded.nnz == int(np.count_nonzero(values)),
             "nnz disagrees with stored values")


def _validate_padded_planes(encoded: EncodedMatrix) -> None:
    values = encoded.array("values")
    indices = encoded.array("indices")
    _require(values.shape == indices.shape, "plane shapes disagree")
    _require(values.shape[0] == encoded.n_rows, "plane height mismatch")
    width = int(encoded.meta["width"])
    _require(values.shape[1] == width, "plane width disagrees with meta")
    if indices.size:
        _require(
            0 <= int(indices.min()) and int(indices.max()) < encoded.n_cols,
            "column indices out of bounds",
        )
    _require(encoded.nnz == int(np.count_nonzero(values)),
             "nnz disagrees with stored values")


def _validate_lil(encoded: EncodedMatrix) -> None:
    values = encoded.array("values")
    indices = encoded.array("indices")
    _require(values.shape == indices.shape, "plane shapes disagree")
    _require(values.shape[1] == encoded.n_cols, "plane width mismatch")
    _require(
        int(indices.max(initial=0)) <= encoded.n_rows,
        "row indices exceed the sentinel",
    )
    live = indices < encoded.n_rows
    _require(encoded.nnz == int(np.count_nonzero(values[live])),
             "nnz disagrees with live values")
    # top-pushed: sentinels never sit above live entries.
    for col in range(indices.shape[1]):
        column = indices[:, col]
        live_slots = np.nonzero(column < encoded.n_rows)[0]
        if live_slots.size:
            _require(
                int(live_slots.max()) == live_slots.size - 1,
                f"column {col} is not top-pushed",
            )


def _validate_dia(encoded: EncodedMatrix) -> None:
    offsets = encoded.array("offsets")
    lengths = encoded.array("lengths")
    diags = encoded.array("diagonals")
    _require(offsets.size == lengths.size == diags.shape[0],
             "diagonal arrays disagree in count")
    _require(bool(np.all(np.diff(offsets) > 0)),
             "diagonal offsets must be strictly increasing")
    low = 1 - encoded.n_rows
    high = encoded.n_cols - 1
    _require(
        bool(np.all((offsets >= low) & (offsets <= high))),
        "diagonal offsets out of range",
    )
    _require(int(lengths.max(initial=0)) <= diags.shape[1],
             "diagonal longer than its storage row")
    _require(encoded.nnz == int(np.count_nonzero(diags)),
             "nnz disagrees with stored values")


def _validate_bcsr(encoded: EncodedMatrix) -> None:
    offsets = encoded.array("offsets")
    indices = encoded.array("indices")
    values = encoded.array("values")
    b = int(encoded.meta["block_size"])
    block_rows = -(-encoded.n_rows // b)
    _require(offsets.size == block_rows + 1, "block-row offsets mismatch")
    _require(bool(np.all(np.diff(offsets) >= 0)), "offsets not monotone")
    _require(int(offsets[-1]) == indices.size, "offsets do not cover blocks")
    _require(values.shape == (indices.size, b * b),
             "block value plane shape mismatch")
    if indices.size:
        _require(
            bool(np.all(indices % b == 0)),
            "block first-column indices must be block-aligned",
        )
        _require(int(indices.max()) < encoded.n_cols,
                 "block columns out of bounds")
    _require(encoded.nnz == int(np.count_nonzero(values)),
             "nnz disagrees with stored values")


def _validate_dense(encoded: EncodedMatrix) -> None:
    values = encoded.array("values")
    _require(values.shape == encoded.shape, "dense plane shape mismatch")
    _require(encoded.nnz == int(np.count_nonzero(values)),
             "nnz disagrees with stored values")


def _validate_bitmap(encoded: EncodedMatrix) -> None:
    mask = encoded.array("mask")
    values = encoded.array("values")
    total = encoded.n_rows * encoded.n_cols
    _require(mask.size == -(-total // 8), "mask byte count mismatch")
    bits = np.unpackbits(mask, count=total)
    _require(int(bits.sum()) == values.size,
             "mask population disagrees with value count")
    _require(encoded.nnz == values.size, "nnz disagrees with value count")


_VALIDATORS = {
    "dense": _validate_dense,
    "csr": lambda e: _validate_compressed_axis(e, e.n_rows, e.n_cols),
    "csc": lambda e: _validate_compressed_axis(e, e.n_cols, e.n_rows),
    "coo": _validate_coordinates,
    "dok": _validate_coordinates,
    "ell": _validate_padded_planes,
    "lil": _validate_lil,
    "dia": _validate_dia,
    "bcsr": _validate_bcsr,
    "bitmap": _validate_bitmap,
}


def validate_encoding(encoded: EncodedMatrix) -> None:
    """Raise :class:`FormatError` if ``encoded`` is malformed.

    Formats without a structural validator (the SELL/JDS variants,
    whose invariants are exercised through decode) pass trivially.
    """
    validator = _VALIDATORS.get(encoded.format_name)
    if validator is not None:
        validator(encoded)
