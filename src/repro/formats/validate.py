"""Structural validation of encoded matrices.

Decoding proves an encoding is *usable*; validation proves it is
*well-formed* without decoding — the checks a hardware loader would
perform before streaming (offset monotonicity, index bounds, plane
shapes, mask sizes, padding sentinels).  Useful both as a debugging aid
for new formats and as a guard when encodings arrive from outside the
library — which is exactly what strict-mode decoding in
:mod:`repro.formats.integrity` does with it.

Every check raises :class:`~repro.errors.FormatIntegrityError` carrying
the failing format name, the plane it inspected, a stable check id and
a violation kind, so corruption campaigns can aggregate detections by
taxonomy.  The error subclasses :class:`~repro.errors.FormatError`, so
pre-existing ``except FormatError`` callers keep working.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatIntegrityError, ValidationError
from .base import EncodedMatrix

__all__ = ["validate_encoding", "VALIDATED_FORMATS", "MAX_EXTENT_DIM"]

#: Largest declared dimension an encoding may claim — matches the
#: ``.mtx`` reader's :data:`repro.io.MAX_DIM`, so indices always fit
#: ``int64`` and row-major cell keys stay under ``2**62``.
MAX_EXTENT_DIM = 2**31 - 1


def _check_extent(encoded: EncodedMatrix) -> None:
    """The dense-bomb guard: distrust the header before the planes.

    Every later check (and any decode) sizes work from the declared
    ``shape``/``nnz``; this pre-pass rejects negative, oversized or
    arithmetically-impossible declarations at header-inspection cost,
    before anything is allocated from them.  Raises the typed
    :class:`~repro.errors.ValidationError` with a stable ``reason``.
    """
    name = encoded.format_name
    if len(encoded.shape) != 2:
        raise ValidationError(
            f"shape must be 2-D, got {encoded.shape!r}",
            reason="bad-shape",
            format_name=name,
        )
    n_rows, n_cols = (int(d) for d in encoded.shape)
    if n_rows < 0 or n_cols < 0:
        raise ValidationError(
            f"negative declared shape {n_rows} x {n_cols}",
            reason="negative-extent",
            format_name=name,
        )
    if n_rows > MAX_EXTENT_DIM or n_cols > MAX_EXTENT_DIM:
        raise ValidationError(
            f"declared shape {n_rows} x {n_cols} exceeds the supported "
            f"maximum dimension {MAX_EXTENT_DIM}",
            reason="extent-overflow",
            format_name=name,
        )
    nnz = int(encoded.nnz)
    if nnz < 0:
        raise ValidationError(
            f"negative declared nnz {nnz}",
            reason="negative-nnz",
            format_name=name,
        )
    if nnz > n_rows * n_cols:
        raise ValidationError(
            f"declared nnz {nnz} exceeds the {n_rows} x {n_cols} "
            f"extent ({n_rows * n_cols} cells)",
            reason="nnz-overflow",
            format_name=name,
        )


def _require(
    condition: bool,
    message: str,
    *,
    format_name: str,
    check: str,
    plane: str = "",
    offset: int | None = None,
    kind: str = "structure",
) -> None:
    if not condition:
        raise FormatIntegrityError(
            message,
            format_name=format_name,
            plane=plane,
            check=check,
            offset=offset,
            kind=kind,
        )


def _first_bad(bad: np.ndarray) -> int | None:
    """Index of the first offending element of a boolean mask."""
    hits = np.nonzero(bad)[0]
    return int(hits[0]) if hits.size else None


def _check_bounds(
    array: np.ndarray,
    low: int,
    high: int,
    *,
    format_name: str,
    plane: str,
    check: str,
) -> None:
    """Every element must lie in ``[low, high)``."""
    if not array.size:
        return
    bad = (array < low) | (array >= high)
    if bad.any():
        offset = _first_bad(bad.ravel())
        raise FormatIntegrityError(
            f"index {int(array.ravel()[offset])} outside [{low}, {high})",
            format_name=format_name,
            plane=plane,
            check=check,
            offset=offset,
            kind="bounds",
        )


def _check_nnz(
    encoded: EncodedMatrix, observed: int, *, plane: str = "values"
) -> None:
    _require(
        encoded.nnz == observed,
        f"nnz={encoded.nnz} disagrees with stored values ({observed})",
        format_name=encoded.format_name,
        check="nnz-count",
        plane=plane,
        kind="count",
    )


def _check_padding_sentinel(
    values: np.ndarray,
    indices: np.ndarray,
    *,
    format_name: str,
    check: str = "padding-sentinel",
) -> None:
    """Padding slots (value 0) must carry the sentinel column index 0.

    ``ell_slot_arrays`` zero-initializes both planes and only writes
    live slots, so a non-zero column index under a zero value is
    corruption (a lost value or a tampered index), never a valid
    encoding — the zero/zero convention is what makes padding a no-op
    for decode and SpMV.
    """
    padding = values == 0.0
    if not padding.any():
        return
    bad = padding & (indices != 0)
    if bad.any():
        raise FormatIntegrityError(
            "padding slot carries a non-sentinel column index",
            format_name=format_name,
            plane="indices",
            check=check,
            offset=_first_bad(bad.ravel()),
            kind="padding",
        )


def _check_permutation(
    perm: np.ndarray, n: int, *, format_name: str
) -> None:
    _require(
        perm.size == n,
        f"permutation length {perm.size} != {n} rows",
        format_name=format_name,
        check="perm-length",
        plane="perm",
        kind="length",
    )
    _check_bounds(
        perm, 0, max(n, 1),
        format_name=format_name, plane="perm", check="perm-bounds",
    )
    if perm.size:
        seen = np.zeros(n, dtype=bool)
        seen[perm] = True
        if not seen.all():
            raise FormatIntegrityError(
                "permutation has duplicate entries",
                format_name=format_name,
                plane="perm",
                check="perm-bijective",
                kind="duplicate",
            )


# ----------------------------------------------------------------------
# Per-format validators
# ----------------------------------------------------------------------
def _validate_compressed_axis(
    encoded: EncodedMatrix, n_major: int, n_minor: int
) -> None:
    """Shared CSR/CSC checks (offsets + minor indices + values)."""
    name = encoded.format_name
    offsets = encoded.array("offsets")
    indices = encoded.array("indices")
    values = encoded.array("values")
    _require(
        offsets.size == n_major + 1,
        f"offsets length {offsets.size} != {n_major + 1}",
        format_name=name, check="offsets-length", plane="offsets",
        kind="length",
    )
    _require(
        int(offsets[0]) == 0, "offsets must start at zero",
        format_name=name, check="offsets-origin", plane="offsets",
        offset=0, kind="structure",
    )
    steps = np.diff(offsets)
    if (steps < 0).any():
        raise FormatIntegrityError(
            "offsets not monotone",
            format_name=name, plane="offsets",
            check="offsets-monotone",
            offset=_first_bad(steps < 0),
            kind="monotonicity",
        )
    _require(
        int(offsets[-1]) == values.size,
        f"offsets cover {int(offsets[-1])} values, stored {values.size}",
        format_name=name, check="offsets-coverage", plane="offsets",
        offset=offsets.size - 1, kind="truncation",
    )
    _require(
        indices.size == values.size,
        f"{indices.size} indices vs {values.size} values",
        format_name=name, check="plane-lengths", plane="indices",
        kind="length",
    )
    _check_bounds(
        indices, 0, n_minor,
        format_name=name, plane="indices", check="index-bounds",
    )
    _check_nnz(encoded, int(np.count_nonzero(values)))


def _validate_coordinates(
    encoded: EncodedMatrix, *, require_sorted: bool
) -> None:
    """COO/DOK tuple checks; COO additionally requires row-major order.

    DOK is conceptually a hash table, so its wire order carries no
    invariant beyond uniqueness of the keys; COO's decompressor relies
    on the row-major sorted stream, so out-of-order (or duplicate)
    tuples are flagged there.
    """
    name = encoded.format_name
    rows = encoded.array("rows")
    cols = encoded.array("cols")
    values = encoded.array("values")
    _require(
        rows.size == cols.size == values.size,
        "tuple arrays disagree in length",
        format_name=name, check="plane-lengths", plane="rows",
        kind="length",
    )
    _check_bounds(
        rows, 0, encoded.n_rows,
        format_name=name, plane="rows", check="row-bounds",
    )
    _check_bounds(
        cols, 0, encoded.n_cols,
        format_name=name, plane="cols", check="col-bounds",
    )
    if rows.size:
        keys = rows.astype(np.int64) * encoded.n_cols + cols
        if require_sorted:
            steps = np.diff(keys)
            if (steps < 0).any():
                raise FormatIntegrityError(
                    "tuples not in row-major order",
                    format_name=name, plane="rows",
                    check="row-major-order",
                    offset=_first_bad(steps < 0),
                    kind="monotonicity",
                )
        duplicate = _duplicate_mask(keys)
        if duplicate.any():
            raise FormatIntegrityError(
                "duplicate coordinate",
                format_name=name, plane="rows",
                check="coordinate-unique",
                offset=_first_bad(duplicate),
                kind="duplicate",
            )
    _check_nnz(encoded, int(np.count_nonzero(values)))


def _duplicate_mask(keys: np.ndarray) -> np.ndarray:
    """Mask of keys that occur more than once (order-independent)."""
    _, inverse, counts = np.unique(
        keys, return_inverse=True, return_counts=True
    )
    return counts[inverse] > 1


def _validate_padded_planes(encoded: EncodedMatrix) -> None:
    name = encoded.format_name
    values = encoded.array("values")
    indices = encoded.array("indices")
    _require(
        values.shape == indices.shape, "plane shapes disagree",
        format_name=name, check="plane-shapes", plane="values",
        kind="length",
    )
    _require(
        values.ndim == 2 and values.shape[0] == encoded.n_rows,
        f"plane height {values.shape[0] if values.ndim else 0} != "
        f"{encoded.n_rows} rows",
        format_name=name, check="plane-height", plane="values",
        kind="length",
    )
    width = int(encoded.meta["width"])
    _require(
        values.shape[1] == width,
        f"plane width {values.shape[1]} disagrees with meta {width}",
        format_name=name, check="meta-width", plane="values",
        kind="meta",
    )
    _check_bounds(
        indices, 0, encoded.n_cols,
        format_name=name, plane="indices", check="index-bounds",
    )
    _check_padding_sentinel(values, indices, format_name=name)
    _check_nnz(encoded, int(np.count_nonzero(values)))


def _validate_ell_coo(encoded: EncodedMatrix) -> None:
    name = encoded.format_name
    values = encoded.array("values")
    indices = encoded.array("indices")
    _require(
        values.shape == indices.shape, "ELL plane shapes disagree",
        format_name=name, check="plane-shapes", plane="values",
        kind="length",
    )
    _require(
        values.ndim == 2 and values.shape[0] == encoded.n_rows,
        "ELL plane height mismatch",
        format_name=name, check="plane-height", plane="values",
        kind="length",
    )
    width = int(encoded.meta["width"])
    _require(
        values.shape[1] == width,
        f"ELL plane width {values.shape[1]} disagrees with meta {width}",
        format_name=name, check="meta-width", plane="values",
        kind="meta",
    )
    _check_bounds(
        indices, 0, encoded.n_cols,
        format_name=name, plane="indices", check="index-bounds",
    )
    _check_padding_sentinel(values, indices, format_name=name)
    coo_rows = encoded.array("coo_rows")
    coo_cols = encoded.array("coo_cols")
    coo_values = encoded.array("coo_values")
    _require(
        coo_rows.size == coo_cols.size == coo_values.size,
        "overflow tuple arrays disagree in length",
        format_name=name, check="overflow-lengths", plane="coo_rows",
        kind="length",
    )
    _check_bounds(
        coo_rows, 0, encoded.n_rows,
        format_name=name, plane="coo_rows", check="overflow-row-bounds",
    )
    _check_bounds(
        coo_cols, 0, encoded.n_cols,
        format_name=name, plane="coo_cols", check="overflow-col-bounds",
    )
    observed = int(np.count_nonzero(values)) + int(
        np.count_nonzero(coo_values)
    )
    _check_nnz(encoded, observed)


def _validate_lil(encoded: EncodedMatrix) -> None:
    name = encoded.format_name
    values = encoded.array("values")
    indices = encoded.array("indices")
    _require(
        values.shape == indices.shape, "plane shapes disagree",
        format_name=name, check="plane-shapes", plane="values",
        kind="length",
    )
    _require(
        values.ndim == 2 and values.shape[1] == encoded.n_cols,
        "plane width mismatch",
        format_name=name, check="plane-width", plane="values",
        kind="length",
    )
    # the sentinel row index n_rows is one past the last valid row
    _check_bounds(
        indices, 0, encoded.n_rows + 1,
        format_name=name, plane="indices", check="row-bounds",
    )
    live = indices < encoded.n_rows
    _check_nnz(encoded, int(np.count_nonzero(values[live])))
    # top-pushed: sentinels never sit above live entries.
    for col in range(indices.shape[1]):
        column = indices[:, col]
        live_slots = np.nonzero(column < encoded.n_rows)[0]
        if live_slots.size:
            _require(
                int(live_slots.max()) == live_slots.size - 1,
                f"column {col} is not top-pushed",
                format_name=name, check="top-pushed", plane="indices",
                offset=col, kind="structure",
            )


def _validate_dia(encoded: EncodedMatrix) -> None:
    name = encoded.format_name
    offsets = encoded.array("offsets")
    lengths = encoded.array("lengths")
    diags = encoded.array("diagonals")
    _require(
        diags.ndim == 2
        and offsets.size == lengths.size == diags.shape[0],
        "diagonal arrays disagree in count",
        format_name=name, check="plane-lengths", plane="offsets",
        kind="length",
    )
    if np.unique(offsets).size != offsets.size:
        raise FormatIntegrityError(
            "duplicate diagonal offset",
            format_name=name, plane="offsets",
            check="offsets-unique", kind="duplicate",
        )
    steps = np.diff(offsets)
    if (steps <= 0).any():
        raise FormatIntegrityError(
            "diagonal offsets must be strictly increasing",
            format_name=name, plane="offsets",
            check="offsets-monotone",
            offset=_first_bad(steps <= 0),
            kind="monotonicity",
        )
    low = 1 - encoded.n_rows
    high = encoded.n_cols - 1
    _check_bounds(
        offsets, low, high + 1,
        format_name=name, plane="offsets", check="offset-range",
    )
    _require(
        int(lengths.max(initial=0)) <= diags.shape[1],
        "diagonal longer than its storage row",
        format_name=name, check="length-fits-storage", plane="lengths",
        kind="truncation",
    )
    _require(
        int(lengths.min(initial=0)) >= 0,
        "negative diagonal length",
        format_name=name, check="length-non-negative", plane="lengths",
        kind="bounds",
    )
    _check_nnz(encoded, int(np.count_nonzero(diags)), plane="diagonals")


def _validate_bcsr(encoded: EncodedMatrix) -> None:
    name = encoded.format_name
    offsets = encoded.array("offsets")
    indices = encoded.array("indices")
    values = encoded.array("values")
    b = int(encoded.meta["block_size"])
    _require(
        b >= 1, f"block size {b} must be >= 1",
        format_name=name, check="meta-block-size", kind="meta",
    )
    block_rows = -(-encoded.n_rows // b)
    _require(
        offsets.size == block_rows + 1,
        f"block-row offsets length {offsets.size} != {block_rows + 1}",
        format_name=name, check="offsets-length", plane="offsets",
        kind="length",
    )
    steps = np.diff(offsets)
    if (steps < 0).any():
        raise FormatIntegrityError(
            "offsets not monotone",
            format_name=name, plane="offsets",
            check="offsets-monotone",
            offset=_first_bad(steps < 0),
            kind="monotonicity",
        )
    _require(
        int(offsets[-1]) == indices.size,
        "offsets do not cover blocks",
        format_name=name, check="offsets-coverage", plane="offsets",
        offset=offsets.size - 1, kind="truncation",
    )
    _require(
        values.shape == (indices.size, b * b),
        f"block value plane shape {values.shape} != "
        f"({indices.size}, {b * b})",
        format_name=name, check="block-plane-shape", plane="values",
        kind="length",
    )
    if indices.size:
        aligned = indices % b == 0
        _require(
            bool(aligned.all()),
            "block first-column indices must be block-aligned",
            format_name=name, check="block-alignment", plane="indices",
            offset=_first_bad(~aligned), kind="structure",
        )
        _check_bounds(
            indices, 0, encoded.n_cols,
            format_name=name, plane="indices", check="index-bounds",
        )
    _check_nnz(encoded, int(np.count_nonzero(values)))


def _validate_dense(encoded: EncodedMatrix) -> None:
    _require(
        encoded.array("values").shape == encoded.shape,
        "dense plane shape mismatch",
        format_name=encoded.format_name, check="plane-shape",
        plane="values", kind="length",
    )
    _check_nnz(
        encoded, int(np.count_nonzero(encoded.array("values")))
    )


def _validate_bitmap(encoded: EncodedMatrix) -> None:
    name = encoded.format_name
    mask = encoded.array("mask")
    values = encoded.array("values")
    total = encoded.n_rows * encoded.n_cols
    _require(
        mask.size == -(-total // 8),
        f"mask byte count {mask.size} != {-(-total // 8)}",
        format_name=name, check="mask-bytes", plane="mask",
        kind="length",
    )
    bits = np.unpackbits(np.ascontiguousarray(mask, dtype=np.uint8))
    _require(
        not bits[total:].any(),
        "mask tail bits beyond the matrix extent are set",
        format_name=name, check="mask-tail", plane="mask",
        kind="padding",
    )
    _require(
        int(bits[:total].sum()) == values.size,
        "mask population disagrees with value count",
        format_name=name, check="mask-population", plane="mask",
        kind="count",
    )
    _check_nnz(encoded, values.size)


def _sell_inner_checks(
    encoded: EncodedMatrix, slice_height: int, name: str
) -> None:
    """Shared SELL / SELL-C-sigma slice-layout checks."""
    values = encoded.array("values")
    indices = encoded.array("indices")
    widths = encoded.array("widths")
    _require(
        slice_height >= 1,
        f"slice height {slice_height} must be >= 1",
        format_name=name, check="meta-slice-height", kind="meta",
    )
    n_slices = -(-encoded.n_rows // slice_height)
    _require(
        widths.size == n_slices,
        f"{widths.size} slice widths for {n_slices} slices",
        format_name=name, check="slice-count", plane="widths",
        kind="length",
    )
    _require(
        int(widths.min(initial=1)) >= 1,
        "slice width must be >= 1",
        format_name=name, check="width-positive", plane="widths",
        kind="bounds",
    )
    rows_per_slice = np.minimum(
        slice_height,
        encoded.n_rows - slice_height * np.arange(widths.size),
    )
    expected_slots = int((rows_per_slice * widths).sum())
    _require(
        values.size == expected_slots and indices.size == expected_slots,
        f"slot planes hold {values.size}/{indices.size} entries, "
        f"slices require {expected_slots}",
        format_name=name, check="slot-coverage", plane="values",
        kind="truncation",
    )
    _check_bounds(
        indices, 0, encoded.n_cols,
        format_name=name, plane="indices", check="index-bounds",
    )
    _check_padding_sentinel(values, indices, format_name=name)
    _check_nnz(encoded, int(np.count_nonzero(values)))


def _validate_sell(encoded: EncodedMatrix) -> None:
    _sell_inner_checks(
        encoded,
        int(encoded.meta["slice_height"]),
        encoded.format_name,
    )


def _validate_sell_c_sigma(encoded: EncodedMatrix) -> None:
    name = encoded.format_name
    slice_height = int(encoded.meta["slice_height"])
    sigma = int(encoded.meta["sigma"])
    _require(
        slice_height >= 1
        and sigma >= slice_height
        and sigma % slice_height == 0,
        f"sigma {sigma} must be a positive multiple of the slice "
        f"height {slice_height}",
        format_name=name, check="meta-sigma", kind="meta",
    )
    _check_permutation(
        encoded.array("perm"), encoded.n_rows, format_name=name
    )
    _sell_inner_checks(encoded, slice_height, name)


def _validate_jds(encoded: EncodedMatrix) -> None:
    name = encoded.format_name
    lengths = encoded.array("jd_lengths")
    values = encoded.array("values")
    indices = encoded.array("indices")
    _check_permutation(
        encoded.array("perm"), encoded.n_rows, format_name=name
    )
    width = int(encoded.meta["width"])
    _require(
        lengths.size == width,
        f"{lengths.size} jagged diagonals, meta width {width}",
        format_name=name, check="meta-width", plane="jd_lengths",
        kind="meta",
    )
    _check_bounds(
        lengths, 0, encoded.n_rows + 1,
        format_name=name, plane="jd_lengths", check="length-bounds",
    )
    steps = np.diff(lengths)
    if (steps > 0).any():
        raise FormatIntegrityError(
            "jagged-diagonal lengths must be non-increasing",
            format_name=name, plane="jd_lengths",
            check="lengths-monotone",
            offset=_first_bad(steps > 0),
            kind="monotonicity",
        )
    total = int(lengths.sum())
    _require(
        values.size == total and indices.size == total,
        f"streams hold {values.size}/{indices.size} entries, "
        f"lengths require {total}",
        format_name=name, check="stream-coverage", plane="values",
        kind="truncation",
    )
    _check_bounds(
        indices, 0, encoded.n_cols,
        format_name=name, plane="indices", check="index-bounds",
    )
    _check_nnz(encoded, int(np.count_nonzero(values)))


_VALIDATORS = {
    "dense": _validate_dense,
    "csr": lambda e: _validate_compressed_axis(e, e.n_rows, e.n_cols),
    "csc": lambda e: _validate_compressed_axis(e, e.n_cols, e.n_rows),
    "coo": lambda e: _validate_coordinates(e, require_sorted=True),
    "dok": lambda e: _validate_coordinates(e, require_sorted=False),
    "ell": _validate_padded_planes,
    "ell+coo": _validate_ell_coo,
    "lil": _validate_lil,
    "dia": _validate_dia,
    "bcsr": _validate_bcsr,
    "bitmap": _validate_bitmap,
    "sell": _validate_sell,
    "sell-c-sigma": _validate_sell_c_sigma,
    "jds": _validate_jds,
}

#: Formats with a structural validator — every registered format.
VALIDATED_FORMATS: tuple[str, ...] = tuple(sorted(_VALIDATORS))


def validate_encoding(encoded: EncodedMatrix) -> None:
    """Raise :class:`FormatIntegrityError` if ``encoded`` is malformed.

    Formats without a structural validator pass trivially (none of the
    built-in formats fall in that bucket anymore, but user-registered
    formats do until they add one).
    """
    _check_extent(encoded)
    validator = _VALIDATORS.get(encoded.format_name)
    if validator is not None:
        validator(encoded)
