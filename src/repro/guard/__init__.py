"""Untrusted-input defense line for the characterization system.

Three layers between hostile bytes and a serve worker:

* :mod:`repro.guard.sandbox` — a resource-sandboxed execution
  boundary: parse/profile/encode for untrusted matrices runs in a
  subprocess under hard wall-clock, address-space and output-size
  caps, and comes back as a typed :class:`ResourceVerdict` (``ok`` /
  ``rejected`` / ``timeout`` / ``oom`` / ``oversize`` / ``crash``)
  instead of an exception or a dead worker;
* :mod:`repro.guard.fuzz` — structured fuzzing of the ``.mtx`` parser
  and the 14 format codecs: seeded generators for malformed bytes and
  semantically-corrupted encodings, a delta-debugging minimizer, and
  an on-disk regression corpus replayed in CI;
* :mod:`repro.guard.overload` — serve-side overload protection:
  per-route circuit breakers, bulkhead lane accounting, and SLO-aware
  priority load shedding.

:mod:`repro.guard.campaign` ties them together into the gated
``bench_guard/v1`` campaign behind ``repro guard``.
"""

from .campaign import (
    BENCH_GUARD_SCHEMA,
    DEFAULT_CORPUS_DIR,
    check_guard_campaign,
    run_guard_campaign,
    write_guard_report,
)
from .fuzz import (
    FUZZ_KINDS,
    CaseOutcome,
    FuzzCase,
    FuzzReport,
    build_case,
    execute_case,
    fuzz_run,
    load_corpus,
    minimize_case,
    replay_corpus,
    save_case,
)
from .overload import (
    PRIORITIES,
    BulkheadStats,
    CircuitBreaker,
    GuardPolicy,
    LoadShedder,
    parse_priority,
)
from .sandbox import (
    SANDBOX_OPS,
    VERDICT_KINDS,
    ResourceVerdict,
    Sandbox,
    SandboxLimits,
    run_sandboxed,
)

__all__ = [
    "BENCH_GUARD_SCHEMA",
    "DEFAULT_CORPUS_DIR",
    "check_guard_campaign",
    "run_guard_campaign",
    "write_guard_report",
    "SANDBOX_OPS",
    "VERDICT_KINDS",
    "ResourceVerdict",
    "Sandbox",
    "SandboxLimits",
    "run_sandboxed",
    "FUZZ_KINDS",
    "CaseOutcome",
    "FuzzCase",
    "FuzzReport",
    "build_case",
    "execute_case",
    "fuzz_run",
    "load_corpus",
    "minimize_case",
    "replay_corpus",
    "save_case",
    "PRIORITIES",
    "BulkheadStats",
    "CircuitBreaker",
    "GuardPolicy",
    "LoadShedder",
    "parse_priority",
]
