"""The gated ``bench_guard/v1`` campaign behind ``repro guard``.

One command proves the whole defense line end to end, in four phases:

1. **Corpus replay** — every committed regression case in
   ``tests/corpus/`` re-executes through :func:`~repro.guard.fuzz.
   execute_case` (sandbox armed).  The gate: every input comes back as
   a *typed* verdict — zero crash outcomes, zero exceptions escaping
   the harness.
2. **Seeded fuzz budget** — a fresh :func:`~repro.guard.fuzz.fuzz_run`
   over all generator kinds and formats.  The gate: zero new crash
   signatures beyond what the corpus already records (the corpus holds
   *fixed* crashes, so in a healthy tree that set is empty).
3. **Breaker exercise** — a live server with a poison route (every
   ``dia`` cell fault-injected) is driven to its failure threshold;
   the gate: the route's breaker *opens* (503 + ``Retry-After``
   answered from the breaker, not the backend) AND *recovers* (a
   half-open probe closes it and a healthy request answers 200).
4. **Priority shedding** — a live server with a deliberately tiny p99
   SLO sheds under pressure; the gate: ``high``-priority requests all
   answer 200 with bounded p99 while ``normal``/``low`` are refused
   with 503 + ``Retry-After``.  A hostile loadgen mix (malformed
   matrices straight from the fuzz generators) runs against the same
   guarded server class; the gate: zero worker harm — every hostile
   request is contained as a 4xx/503, never a connection drop or an
   unhandled 500.

:func:`run_guard_campaign` returns the report;
:func:`check_guard_campaign` turns failed gates into a
:class:`~repro.errors.GuardError` (exit 2 on the CLI).
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path

from .. import io_atomic
from ..errors import GuardError
from ..observability import machine_metadata
from .fuzz import FuzzReport, execute_case, fuzz_run, load_corpus
from .overload import GuardPolicy
from .sandbox import Sandbox, SandboxLimits

__all__ = [
    "BENCH_GUARD_SCHEMA",
    "DEFAULT_CORPUS_DIR",
    "check_guard_campaign",
    "run_guard_campaign",
    "write_guard_report",
]

BENCH_GUARD_SCHEMA = "bench_guard/v1"

#: The committed regression corpus CI replays (repo-relative).
DEFAULT_CORPUS_DIR = (
    Path(__file__).resolve().parents[3] / "tests" / "corpus"
)

#: A benign workload the serve phases query.
_BENIGN = {"kind": "random", "n": 32, "density": 0.1, "seed": 1}


# ----------------------------------------------------------------------
# Phase 1+2: the fuzz surface
# ----------------------------------------------------------------------
def _replay_phase(
    corpus_dir: "str | Path", sandbox: "Sandbox | None"
) -> dict:
    cases = load_corpus(corpus_dir)
    report = FuzzReport(seed=0)
    unhandled: list[str] = []
    started = time.perf_counter()
    for case in cases:
        # execute_case is contractually exception-free; this except is
        # the measurement of that contract, not a convenience trap
        try:
            outcome = execute_case(case, sandbox=sandbox)
        except BaseException as error:  # noqa: BLE001 — the gate itself
            unhandled.append(
                f"{case.kind}-{case.seed}: "
                f"{type(error).__name__}: {error}"
            )
            continue
        report.record(outcome)
    report.wall_s = time.perf_counter() - started
    return {
        "corpus_dir": str(corpus_dir),
        "n_cases": len(cases),
        "by_verdict": dict(sorted(report.by_verdict.items())),
        "crash_signatures": list(report.crash_signatures),
        "unhandled_exceptions": unhandled,
        "wall_s": report.wall_s,
    }


def _fuzz_phase(
    seed: int,
    *,
    n_cases: "int | None",
    budget_s: "float | None",
    known_signatures: "set[str]",
    sandbox: "Sandbox | None",
) -> dict:
    unhandled: list[str] = []
    try:
        report = fuzz_run(
            seed, n_cases=n_cases, budget_s=budget_s, sandbox=sandbox
        )
    except BaseException as error:  # noqa: BLE001 — the gate itself
        unhandled.append(f"{type(error).__name__}: {error}")
        report = FuzzReport(seed=seed)
    payload = report.to_dict()
    payload["new_crash_signatures"] = [
        signature
        for signature in report.crash_signatures
        if signature not in known_signatures
    ]
    payload["unhandled_exceptions"] = unhandled
    return payload


# ----------------------------------------------------------------------
# Phase 3: breaker opens and recovers on a live server
# ----------------------------------------------------------------------
async def _post(server, endpoint: str, payload: dict, priority=None):
    import json

    from ..serve import http_request

    headers = (
        {"X-Copernicus-Priority": priority} if priority else None
    )
    return await http_request(
        server.host,
        server.port,
        "POST",
        f"/{endpoint}",
        json.dumps(payload).encode(),
        headers=headers,
    )


async def _breaker_phase() -> dict:
    from ..serve import CharacterizationServer

    policy = GuardPolicy(
        breaker_threshold=3, breaker_recovery_s=0.4
    )
    # every dia cell raises persistently: a poison route the breaker
    # must learn to answer for
    server = CharacterizationServer(
        port=0,
        max_inflight=2,
        faults="raise@*:dia:*#times=none",
        guard_policy=policy,
    )
    await server.start()
    try:
        poison_statuses: list[int] = []
        for index in range(policy.breaker_threshold):
            status, _, _ = await _post(
                server,
                "characterize",
                {
                    "workload": {**_BENIGN, "seed": 100 + index},
                    "formats": ["dia"],
                    "partitions": [8],
                },
            )
            poison_statuses.append(status)
        # threshold reached: the next request must be refused by the
        # breaker itself, with a Retry-After hint
        status, headers, _ = await _post(
            server,
            "characterize",
            {
                "workload": {**_BENIGN, "seed": 999},
                "formats": ["dia"],
                "partitions": [8],
            },
        )
        open_status = status
        retry_after = headers.get("retry-after", "")
        # sit out the recovery window, then probe with a healthy query
        # — half-open lets it through, success closes the breaker
        await asyncio.sleep(policy.breaker_recovery_s + 0.05)
        probe_status, _, _ = await _post(
            server,
            "characterize",
            {
                "workload": _BENIGN,
                "formats": ["coo"],
                "partitions": [8],
            },
        )
        breaker = server._breaker("characterize")
        transitions = dict(sorted(breaker.transitions.items()))
        return {
            "policy": {
                "threshold": policy.breaker_threshold,
                "recovery_s": policy.breaker_recovery_s,
            },
            "poison_statuses": poison_statuses,
            "open_status": open_status,
            "retry_after": retry_after,
            "probe_status": probe_status,
            "final_state": breaker.state,
            "transitions": transitions,
            "opened": open_status == 503
            and transitions.get("closed-open", 0) >= 1,
            "recovered": probe_status == 200
            and transitions.get("half-open-closed", 0) >= 1,
        }
    finally:
        await server.aclose()


# ----------------------------------------------------------------------
# Phase 4a: priority shedding keeps the high class bounded
# ----------------------------------------------------------------------
async def _shed_phase() -> dict:
    from ..serve import CharacterizationServer
    from ..serve.loadgen import percentile

    # a deliberately unmeetable SLO: any real sweep latency is far
    # beyond 2x this threshold, so after the window holds one sample
    # the shedder is severely over the line and sheds normal+low
    policy = GuardPolicy(shed_p99_ms=0.01)
    server = CharacterizationServer(
        port=0, max_inflight=2, guard_policy=policy
    )
    await server.start()
    try:
        high_latencies_ms: list[float] = []
        by_priority: dict[str, dict] = {}

        async def _probe(priority: str, seed: int) -> None:
            started = time.perf_counter()
            status, headers, _ = await _post(
                server,
                "characterize",
                {
                    "workload": {**_BENIGN, "seed": seed},
                    "formats": ["coo"],
                    "partitions": [8],
                },
                priority=priority,
            )
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            record = by_priority.setdefault(
                priority,
                {"requests": 0, "statuses": {}, "retry_after": ""},
            )
            record["requests"] += 1
            record["statuses"][str(status)] = (
                record["statuses"].get(str(status), 0) + 1
            )
            if headers.get("retry-after"):
                record["retry_after"] = headers["retry-after"]
            if priority == "high" and status == 200:
                high_latencies_ms.append(elapsed_ms)

        # prime the latency window (high is never shed, so these all
        # reach the backend and their latencies are observed)
        for seed in range(200, 204):
            await _probe("high", seed)
        # under severe pressure: high keeps serving, the rest shed
        for seed in range(300, 304):
            await _probe("high", seed)
            await _probe("normal", seed)
            await _probe("low", seed)
        shedder = server.shedder.snapshot()
        high = by_priority.get("high", {"statuses": {}})
        normal = by_priority.get("normal", {"statuses": {}})
        low = by_priority.get("low", {"statuses": {}})
        return {
            "policy": {"shed_p99_ms": policy.shed_p99_ms},
            "by_priority": by_priority,
            "high_p99_ms": percentile(high_latencies_ms, 99)
            if high_latencies_ms
            else 0.0,
            "shedder": shedder,
            "high_all_served": set(high["statuses"]) == {"200"},
            "low_all_shed": set(low["statuses"]) == {"503"}
            and bool(low.get("retry_after")),
            "normal_all_shed": set(normal["statuses"]) == {"503"}
            and bool(normal.get("retry_after")),
        }
    finally:
        await server.aclose()


# ----------------------------------------------------------------------
# Phase 4b: hostile traffic is contained at the wire
# ----------------------------------------------------------------------
async def _hostile_phase(
    seed: int, requests: int, concurrency: int
) -> dict:
    from ..serve import CharacterizationServer
    from ..serve.loadgen import (
        bench_report,
        fetch_metrics,
        plan_requests,
        run_load,
    )

    server = CharacterizationServer(
        port=0,
        max_inflight=2,
        guard_policy=GuardPolicy(),
        sandbox_limits=SandboxLimits(wall_s=5.0),
    )
    await server.start()
    try:
        planned = plan_requests("hostile", requests, seed)
        before = await fetch_metrics(server.host, server.port)
        # tolerate_errors: a dead worker shows up as a status-0
        # outcome (counted as worker harm) instead of killing the
        # measurement — the whole point of this phase
        outcomes, wall_s = await run_load(
            server.host,
            server.port,
            planned,
            concurrency=concurrency,
            tolerate_errors=True,
        )
        after = await fetch_metrics(server.host, server.port)
        report = bench_report(
            mix="hostile",
            seed=seed,
            concurrency=concurrency,
            outcomes=outcomes,
            wall_s=wall_s,
            metrics_before=before,
            metrics_after=after,
        )
        guard_extra = after["extra"]["guard"]
        return {
            "requests": report["requests"],
            "statuses": report["statuses"],
            "hostile": report["hostile"],
            "sandbox": guard_extra["sandbox"],
            "wall_s": wall_s,
        }
    finally:
        await server.aclose()


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
def run_guard_campaign(
    seed: int = 7,
    *,
    corpus_dir: "str | Path | None" = None,
    fuzz_cases: "int | None" = 400,
    fuzz_budget_s: "float | None" = None,
    hostile_requests: int = 40,
    concurrency: int = 4,
    sandbox_limits: "SandboxLimits | None" = None,
) -> dict:
    """Run all four phases and return the ``bench_guard/v1`` report.

    Deterministic per ``(seed, fuzz_cases, hostile_requests)`` up to
    wall-clock fields.  Use :func:`check_guard_campaign` to turn
    failed gates into a :class:`~repro.errors.GuardError`.
    """
    if hostile_requests < 1:
        raise GuardError(
            f"hostile_requests must be >= 1, got {hostile_requests}"
        )
    started = time.perf_counter()
    corpus = (
        Path(corpus_dir) if corpus_dir is not None
        else DEFAULT_CORPUS_DIR
    )
    with Sandbox(sandbox_limits or SandboxLimits(wall_s=5.0)) as sb:
        replay = _replay_phase(corpus, sb)
        fuzz = _fuzz_phase(
            seed,
            n_cases=fuzz_cases,
            budget_s=fuzz_budget_s,
            known_signatures=set(replay["crash_signatures"]),
            sandbox=sb,
        )
    breaker = asyncio.run(_breaker_phase())
    shedding = asyncio.run(_shed_phase())
    hostile = asyncio.run(
        _hostile_phase(seed, hostile_requests, concurrency)
    )
    gates = {
        "corpus_zero_crashes": not replay["crash_signatures"],
        "corpus_zero_unhandled": not replay["unhandled_exceptions"],
        "fuzz_zero_new_crashes": not fuzz["new_crash_signatures"]
        and not fuzz["unhandled_exceptions"],
        "breaker_opened": breaker["opened"],
        "breaker_recovered": breaker["recovered"],
        "high_priority_served": shedding["high_all_served"],
        "low_priority_shed": shedding["low_all_shed"],
        "hostile_zero_worker_harm": (
            hostile["hostile"]["worker_harm"] == 0
        ),
    }
    return {
        "schema": BENCH_GUARD_SCHEMA,
        "machine": machine_metadata(),
        "config": {
            "seed": seed,
            "corpus_dir": str(corpus),
            "fuzz_cases": fuzz_cases,
            "fuzz_budget_s": fuzz_budget_s,
            "hostile_requests": hostile_requests,
            "concurrency": concurrency,
        },
        "corpus": replay,
        "fuzz": fuzz,
        "breaker": breaker,
        "shedding": shedding,
        "hostile": hostile,
        "summary": {
            "gates": gates,
            "n_gates_failed": sum(
                1 for passed in gates.values() if not passed
            ),
            "inputs_executed": replay["n_cases"]
            + fuzz["inputs_tried"],
            "wall_s": time.perf_counter() - started,
        },
    }


def check_guard_campaign(report: dict) -> None:
    """Raise :class:`GuardError` naming every failed gate."""
    gates = report["summary"]["gates"]
    failed = sorted(
        name for name, passed in gates.items() if not passed
    )
    if not failed:
        return
    raise GuardError(
        f"{len(failed)} guard gate(s) failed: {', '.join(failed)} "
        "(see the bench_guard/v1 report for the phase records)"
    )


def write_guard_report(report: dict, path: "str | Path") -> Path:
    """Atomically persist one campaign report."""
    target = Path(path)
    io_atomic.atomic_write_json(target, report)
    return target
