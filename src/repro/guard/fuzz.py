"""Structured fuzzing of the ``.mtx`` parser and the format codecs.

Copernicus decodes 14 formats, each with its own index invariants, and
parses a textual exchange format — a large attack surface for a public
endpoint.  This module generates *hostile* inputs deterministically
from a seed, executes them under a full exception trap, and classifies
every outcome with the same taxonomy the sandbox uses:

* ``ok`` — the input was actually valid and was processed;
* ``rejected`` — the library refused it with a typed
  :class:`~repro.errors.CopernicusError` (the desired outcome);
* ``oom`` — a ``MemoryError`` escaped (a dense-bomb got past the
  header checks; counts as a finding worth fixing but not a crash);
* ``crash`` — **an unhandled non-library exception** — the bug class
  fuzzing exists to find.

Two surfaces are fuzzed (:data:`FUZZ_KINDS`):

* ``mtx-*`` — malformed MatrixMarket bytes: garbage, header lies,
  dimension lies, index overflows, negative/duplicate coordinates,
  pathological aspect ratios, dense-bomb extents, truncations, and
  seeded mutations of valid files;
* ``enc-*`` — semantically-corrupted format encodings: plane
  corruption via :class:`~repro.formats.corrupt.StreamCorruptor`,
  meta/shape/nnz lies, and index overflows, replayed through
  ``validate_encoding`` → ``decode`` → ``spmv``.

Every crash gets a stable *signature* (exception type + deepest
in-library frame), a delta-debugged minimal reproducer
(:func:`minimize_case`), and a slot in the on-disk regression corpus
(``tests/corpus/``) that CI replays forever after.
"""

from __future__ import annotations

import json
import time
import traceback
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from random import Random

from ..errors import CopernicusError, FuzzError
from .sandbox import Sandbox

__all__ = [
    "CORPUS_SCHEMA",
    "FUZZ_KINDS",
    "CaseOutcome",
    "FuzzCase",
    "FuzzReport",
    "build_case",
    "execute_case",
    "fuzz_run",
    "load_corpus",
    "minimize_case",
    "replay_corpus",
    "save_case",
]

#: Version tag of on-disk corpus entries.
CORPUS_SCHEMA = "fuzz_case/v1"

#: The fuzzing grammar: every generator kind.
FUZZ_KINDS = (
    "mtx-garbage",
    "mtx-header-lie",
    "mtx-dimension-lie",
    "mtx-index-overflow",
    "mtx-negative",
    "mtx-duplicate",
    "mtx-aspect",
    "mtx-dense-bomb",
    "mtx-truncate",
    "mtx-mutate",
    "enc-plane-corrupt",
    "enc-meta-lie",
    "enc-index-overflow",
)

#: Deep (profile/encode) execution is skipped in-process for matrices
#: larger than this extent (cells); the sandbox runs them instead.
DEEP_EXTENT_CAP = 1 << 22

#: Formats the encoding-surface kinds default to — every registered
#: format (resolved lazily to avoid import cycles).
_BANNER = "%%MatrixMarket matrix coordinate real general"


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic hostile input.

    ``mtx`` carries the literal bytes for the ``mtx-*`` surface; the
    ``enc-*`` surface regenerates its encoding from ``(kind, seed,
    format_name)`` at execution time, so cases stay tiny on disk.
    """

    kind: str
    seed: int
    format_name: str = ""
    mtx: "str | None" = None

    def corpus_name(self) -> str:
        fmt = f"-{self.format_name}" if self.format_name else ""
        return f"{self.kind}{fmt}-{self.seed}.json"


@dataclass(frozen=True)
class CaseOutcome:
    """How one case came back: a verdict, never an exception."""

    case: FuzzCase
    kind: str
    error_type: str = ""
    detail: str = ""
    signature: str = ""
    deep_skipped: bool = False

    @property
    def crashed(self) -> bool:
        return self.kind == "crash"


@dataclass
class FuzzReport:
    """Aggregated results of one fuzzing run."""

    seed: int
    tried: int = 0
    wall_s: float = 0.0
    by_verdict: dict = field(default_factory=dict)
    by_kind: dict = field(default_factory=dict)
    crashes: list = field(default_factory=list)

    def record(self, outcome: CaseOutcome) -> None:
        self.tried += 1
        self.by_verdict[outcome.kind] = (
            self.by_verdict.get(outcome.kind, 0) + 1
        )
        self.by_kind[outcome.case.kind] = (
            self.by_kind.get(outcome.case.kind, 0) + 1
        )
        if outcome.crashed:
            self.crashes.append(outcome)

    @property
    def crash_signatures(self) -> "tuple[str, ...]":
        return tuple(sorted({o.signature for o in self.crashes}))

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "inputs_tried": self.tried,
            "wall_s": self.wall_s,
            "by_verdict": dict(sorted(self.by_verdict.items())),
            "by_kind": dict(sorted(self.by_kind.items())),
            "crashes": [
                {
                    "kind": o.case.kind,
                    "seed": o.case.seed,
                    "format": o.case.format_name,
                    "signature": o.signature,
                    "detail": o.detail[-500:],
                }
                for o in self.crashes
            ],
            "crash_signatures": list(self.crash_signatures),
        }


# ----------------------------------------------------------------------
# Generators (pure functions of the rng)
# ----------------------------------------------------------------------
def _valid_mtx(rng: Random, n_max: int = 12) -> str:
    """A small, valid coordinate file to mutate from."""
    n_rows = rng.randrange(2, n_max)
    n_cols = rng.randrange(2, n_max)
    cells = [(r, c) for r in range(n_rows) for c in range(n_cols)]
    rng.shuffle(cells)
    entries = sorted(cells[: rng.randrange(1, len(cells) // 2 + 2)])
    lines = [_BANNER, f"{n_rows} {n_cols} {len(entries)}"]
    for row, col in entries:
        lines.append(
            f"{row + 1} {col + 1} {rng.uniform(-2, 2):.3f}"
        )
    return "\n".join(lines) + "\n"


def _gen_garbage(rng: Random) -> str:
    choice = rng.randrange(4)
    if choice == 0:
        alphabet = "".join(chr(c) for c in range(32, 127)) + "\n\t"
        return "".join(
            rng.choice(alphabet) for _ in range(rng.randrange(0, 400))
        )
    if choice == 1:  # binary-ish garbage surviving a str round-trip
        return "".join(
            chr(rng.randrange(0, 0x2FF))
            for _ in range(rng.randrange(1, 200))
        )
    if choice == 2:  # a banner followed by nonsense
        return _BANNER + "\n" + "".join(
            rng.choice("0123456789 .-e\n")
            for _ in range(rng.randrange(1, 300))
        )
    return ""  # the empty file


def _gen_header_lie(rng: Random) -> str:
    base = _valid_mtx(rng)
    _, rest = base.split("\n", 1)
    headers = [
        "%%MatrixMarket matrix array real general",
        "%%MatrixMarket tensor coordinate real general",
        "%%MatrixMarket matrix coordinate complex general",
        "%%MatrixMarket matrix coordinate real hermitian",
        "%%MatrixMarket matrix coordinate real",
        "%%MatrixMarket matrix coordinate real general extra",
        "%%matrixmarket matrix coordinate real general",
        "%MatrixMarket matrix coordinate real general",
        "%%MatrixMarket matrix coordinate reäl general",
        "",
    ]
    return rng.choice(headers) + "\n" + rest


def _gen_dimension_lie(rng: Random) -> str:
    base = _valid_mtx(rng)
    lines = base.rstrip("\n").split("\n")
    n_rows, n_cols, n_entries = (int(x) for x in lines[1].split())
    choice = rng.randrange(5)
    if choice == 0:  # declare fewer entries than provided
        lines[1] = f"{n_rows} {n_cols} {max(0, n_entries - 1)}"
    elif choice == 1:  # declare more entries than provided
        lines[1] = f"{n_rows} {n_cols} {n_entries + rng.randrange(1, 5)}"
    elif choice == 2:  # shrink the declared shape under the entries
        lines[1] = f"1 1 {n_entries}"
    elif choice == 3:  # more declared entries than cells
        lines[1] = f"{n_rows} {n_cols} {n_rows * n_cols + 10}"
    else:  # non-numeric size line
        lines[1] = rng.choice(
            ["3 3", "3 3 4 5", "three 3 1", "3.0 3 1", ""]
        )
    return "\n".join(lines) + "\n"


def _gen_index_overflow(rng: Random) -> str:
    base = _valid_mtx(rng)
    lines = base.rstrip("\n").split("\n")
    target = rng.randrange(2, len(lines))
    parts = lines[target].split()
    huge = rng.choice(
        [2**31, 2**62, 2**63, 2**70, 10**30, 10**100]
    )
    parts[rng.randrange(2)] = str(huge + rng.randrange(3))
    lines[target] = " ".join(parts)
    if rng.random() < 0.5:  # also lie the shape up to match
        lines[1] = f"{huge + 9} {huge + 9} {len(lines) - 2}"
    return "\n".join(lines) + "\n"


def _gen_negative(rng: Random) -> str:
    base = _valid_mtx(rng)
    lines = base.rstrip("\n").split("\n")
    choice = rng.randrange(3)
    if choice == 0:  # negative declared dimension or count
        slot = rng.randrange(3)
        parts = lines[1].split()
        parts[slot] = str(-int(parts[slot]) - 1)
        lines[1] = " ".join(parts)
    else:  # negative coordinate (or zero — 1-based format)
        target = rng.randrange(2, len(lines))
        parts = lines[target].split()
        parts[rng.randrange(2)] = rng.choice(["-1", "0", "-999999"])
        lines[target] = " ".join(parts)
    return "\n".join(lines) + "\n"


def _gen_duplicate(rng: Random) -> str:
    base = _valid_mtx(rng)
    lines = base.rstrip("\n").split("\n")
    target = lines[rng.randrange(2, len(lines))]
    repeats = [target] * rng.randrange(1, 4)
    n_rows, n_cols, n_entries = (int(x) for x in lines[1].split())
    lines[1] = f"{n_rows} {n_cols} {n_entries + len(repeats)}"
    return "\n".join(lines + repeats) + "\n"


def _gen_aspect(rng: Random) -> str:
    long_side = rng.choice([10**6, 10**9, 2**31 - 1, 2**31, 2**40])
    flip = rng.random() < 0.5
    n_rows, n_cols = (1, long_side) if flip else (long_side, 1)
    entries = []
    for _ in range(rng.randrange(1, 4)):
        pos = rng.randrange(1, min(long_side, 10**6) + 1)
        entries.append(
            f"1 {pos} 1.0" if flip else f"{pos} 1 1.0"
        )
    return "\n".join(
        [_BANNER, f"{n_rows} {n_cols} {len(entries)}"] + entries
    ) + "\n"


def _gen_dense_bomb(rng: Random) -> str:
    side = rng.choice(
        [10**5, 10**6, 10**8, 2**31 - 1, 2**31, 2**35]
    )
    n_entries = rng.randrange(1, 4)
    entries = [
        f"{rng.randrange(1, min(side, 10**4) + 1)} "
        f"{rng.randrange(1, min(side, 10**4) + 1)} 1.0"
        for _ in range(n_entries)
    ]
    return "\n".join(
        [_BANNER, f"{side} {side} {n_entries}"] + entries
    ) + "\n"


def _gen_truncate(rng: Random) -> str:
    base = _valid_mtx(rng, n_max=16)
    cut = rng.randrange(len(_BANNER) + 1, len(base))
    return base[:cut]


def _gen_mutate(rng: Random) -> str:
    base = list(_valid_mtx(rng, n_max=16))
    for _ in range(rng.randrange(1, 6)):
        pos = rng.randrange(len(base))
        op = rng.randrange(3)
        if op == 0:
            base[pos] = chr(rng.randrange(32, 127))
        elif op == 1:
            base[pos] = ""
        else:
            base[pos] = base[pos] + rng.choice("0123456789 .-\n")
    return "".join(base)


_MTX_GENERATORS = {
    "mtx-garbage": _gen_garbage,
    "mtx-header-lie": _gen_header_lie,
    "mtx-dimension-lie": _gen_dimension_lie,
    "mtx-index-overflow": _gen_index_overflow,
    "mtx-negative": _gen_negative,
    "mtx-duplicate": _gen_duplicate,
    "mtx-aspect": _gen_aspect,
    "mtx-dense-bomb": _gen_dense_bomb,
    "mtx-truncate": _gen_truncate,
    "mtx-mutate": _gen_mutate,
}


def build_case(
    kind: str, seed: int, format_name: str = ""
) -> FuzzCase:
    """Deterministically materialize one case from its coordinates."""
    if kind in _MTX_GENERATORS:
        # zlib.crc32, not hash(): string hashing is randomized per
        # process and corpus cases must reproduce across processes.
        rng = Random(zlib.crc32(kind.encode("ascii")) * 2654435761 + seed)
        return FuzzCase(
            kind=kind,
            seed=seed,
            format_name=format_name,
            mtx=_MTX_GENERATORS[kind](rng),
        )
    if kind in FUZZ_KINDS:  # enc-* surface: rebuilt at execution
        if not format_name:
            raise FuzzError(
                f"{kind} cases require a format_name"
            )
        return FuzzCase(kind=kind, seed=seed, format_name=format_name)
    raise FuzzError(
        f"unknown fuzz kind {kind!r}; known: {', '.join(FUZZ_KINDS)}"
    )


# ----------------------------------------------------------------------
# Execution (in-process with a full trap, or through the sandbox)
# ----------------------------------------------------------------------
def _signature(error: BaseException) -> str:
    """Stable crash identity: type + deepest in-library frame."""
    frames = traceback.extract_tb(error.__traceback__)
    where = "?"
    for frame in reversed(frames):
        if "/repro/" in frame.filename.replace("\\", "/"):
            where = f"{Path(frame.filename).name}:{frame.name}"
            break
    return f"{type(error).__name__}@{where}"


def _hostile_encoding(case: FuzzCase):
    """Build the (deterministically damaged) encoding for an enc-*
    case.  Returns an :class:`~repro.formats.base.EncodedMatrix`;
    may itself raise — the caller traps."""
    import numpy as np

    from ..formats import get_format
    from ..formats.corrupt import CORRUPTION_KINDS, StreamCorruptor
    from ..workloads import random_matrix

    rng = Random(case.seed * 7919 + 13)
    matrix = random_matrix(
        rng.randrange(8, 25),
        round(rng.uniform(0.08, 0.3), 3),
        seed=case.seed % 1000,
    )
    fmt = get_format(case.format_name)
    encoded = fmt.encode(matrix)
    if case.kind == "enc-plane-corrupt":
        from ..formats.corrupt import CorruptionSpec

        spec = CorruptionSpec(
            kind=rng.choice(CORRUPTION_KINDS),
            ber=rng.choice([1e-3, 1e-2, 0.2]),
            fraction=rng.choice([0.1, 0.5, 0.9]),
        )
        corruptor = StreamCorruptor(seed=case.seed)
        return corruptor.corrupt_encoding(
            encoded, spec, key=("fuzz", case.kind, case.seed)
        )
    if case.kind == "enc-meta-lie":
        choice = rng.randrange(4)
        if choice == 0:  # extent lie: the declared shape explodes
            side = rng.choice([10**6, 2**31 - 1, 2**40, 10**18])
            return replace(encoded, shape=(side, side))
        if choice == 1:  # nnz lie
            return replace(
                encoded,
                nnz=rng.choice([-1, 0, 2**40, encoded.nnz + 7]),
            )
        if choice == 2:  # negative extent
            return replace(encoded, shape=(-4, encoded.n_cols))
        lied = {
            key: (value * 3 + 1 if isinstance(value, int) else value)
            for key, value in encoded.meta.items()
        }
        return replace(encoded, meta=lied)
    # enc-index-overflow: push one index plane out of the declared dims
    planes = dict(encoded.arrays)
    index_planes = [
        name
        for name, array in planes.items()
        if array.size
        and np.issubdtype(array.dtype, np.integer)
    ]
    if not index_planes:
        return replace(encoded, nnz=encoded.nnz + 1)
    plane = rng.choice(sorted(index_planes))
    damaged = planes[plane].copy()
    flat = damaged.reshape(-1)
    slot = rng.randrange(flat.size)
    info = np.iinfo(damaged.dtype)
    hostile = rng.choice(
        [2**31 - 1, max(encoded.n_rows, encoded.n_cols) + 7, -1]
    )
    # clamp into the plane's representable range — the goal is an
    # out-of-matrix index, not a numpy assignment error in the harness
    flat[slot] = min(max(hostile, int(info.min)), int(info.max))
    planes[plane] = damaged
    return replace(encoded, arrays=planes)


def _execute_mtx(case: FuzzCase, sandbox: "Sandbox | None") -> CaseOutcome:
    from ..io import loads

    try:
        matrix = loads(case.mtx or "")
    except CopernicusError as error:
        return CaseOutcome(
            case,
            "rejected",
            error_type=type(error).__name__,
            detail=str(error)[:500],
        )
    except MemoryError:
        return CaseOutcome(case, "oom", detail="MemoryError in parse")
    except Exception as error:  # noqa: BLE001 — the finding
        return CaseOutcome(
            case,
            "crash",
            error_type=type(error).__name__,
            detail=traceback.format_exc()[-2000:],
            signature=_signature(error),
        )
    # the parse accepted it: push deeper (profile + one encode)
    extent = matrix.n_rows * matrix.n_cols
    if extent > DEEP_EXTENT_CAP:
        if sandbox is None:
            return CaseOutcome(case, "ok", deep_skipped=True)
        verdict = sandbox.run(
            "profile", mtx=case.mtx, p=8
        )
        return CaseOutcome(
            case,
            verdict.kind,
            error_type=verdict.error_type,
            detail=verdict.detail,
            signature=(
                f"sandbox:{verdict.error_type or verdict.kind}"
                if verdict.kind == "crash"
                else ""
            ),
        )
    try:
        from ..formats import get_format
        from ..formats.validate import validate_encoding
        from ..partition import profile_table

        profile_table(matrix, 8)
        fmt = get_format(
            case.format_name or ("csr", "ell", "dia")[case.seed % 3]
        )
        encoded = fmt.encode(matrix)
        validate_encoding(encoded)
        return CaseOutcome(case, "ok")
    except CopernicusError as error:
        return CaseOutcome(
            case,
            "rejected",
            error_type=type(error).__name__,
            detail=str(error)[:500],
        )
    except MemoryError:
        return CaseOutcome(case, "oom", detail="MemoryError in deep op")
    except Exception as error:  # noqa: BLE001 — the finding
        return CaseOutcome(
            case,
            "crash",
            error_type=type(error).__name__,
            detail=traceback.format_exc()[-2000:],
            signature=_signature(error),
        )


def _execute_encoding(case: FuzzCase) -> CaseOutcome:
    from ..formats import get_format
    from ..formats.validate import validate_encoding

    try:
        encoded = _hostile_encoding(case)
        validate_encoding(encoded)
        # validation accepted the damaged stream: decode and multiply
        # only when the declared extent is honest enough to afford
        if encoded.n_rows * encoded.n_cols <= DEEP_EXTENT_CAP:
            import numpy as np

            fmt = get_format(case.format_name)
            fmt.decode(encoded)
            fmt.spmv(
                encoded,
                np.ones(max(encoded.n_cols, 0), dtype=np.float64),
            )
        return CaseOutcome(case, "ok")
    except CopernicusError as error:
        return CaseOutcome(
            case,
            "rejected",
            error_type=type(error).__name__,
            detail=str(error)[:500],
        )
    except MemoryError:
        return CaseOutcome(
            case, "oom", detail="MemoryError in codec path"
        )
    except Exception as error:  # noqa: BLE001 — the finding
        return CaseOutcome(
            case,
            "crash",
            error_type=type(error).__name__,
            detail=traceback.format_exc()[-2000:],
            signature=_signature(error),
        )


def execute_case(
    case: FuzzCase, sandbox: "Sandbox | None" = None
) -> CaseOutcome:
    """Run one case; always returns a typed outcome, never raises.

    With a ``sandbox``, big-extent matrices that pass parsing get
    their deep (profile) stage executed under resource caps; without
    one the deep stage is skipped for them (``deep_skipped``).
    """
    if case.kind.startswith("mtx-"):
        return _execute_mtx(case, sandbox)
    return _execute_encoding(case)


# ----------------------------------------------------------------------
# The fuzzing loop
# ----------------------------------------------------------------------
def _all_formats() -> "tuple[str, ...]":
    from ..formats.registry import ALL_FORMATS

    return ALL_FORMATS


def fuzz_run(
    seed: int,
    *,
    n_cases: "int | None" = None,
    budget_s: "float | None" = None,
    kinds: "tuple[str, ...]" = FUZZ_KINDS,
    formats: "tuple[str, ...] | None" = None,
    sandbox: "Sandbox | None" = None,
) -> FuzzReport:
    """Fuzz until ``n_cases`` inputs or ``budget_s`` seconds are
    spent (whichever comes first; one of the two is required)."""
    if n_cases is None and budget_s is None:
        raise FuzzError("pass n_cases and/or budget_s")
    if n_cases is not None and n_cases < 1:
        raise FuzzError(f"n_cases must be >= 1, got {n_cases}")
    if budget_s is not None and budget_s <= 0:
        raise FuzzError(f"budget_s must be > 0, got {budget_s}")
    unknown = [k for k in kinds if k not in FUZZ_KINDS]
    if unknown:
        raise FuzzError(
            f"unknown fuzz kinds: {', '.join(map(repr, unknown))}"
        )
    formats = tuple(formats) if formats is not None else _all_formats()
    report = FuzzReport(seed=seed)
    started = time.perf_counter()
    index = 0
    while True:
        if n_cases is not None and report.tried >= n_cases:
            break
        if (
            budget_s is not None
            and time.perf_counter() - started >= budget_s
        ):
            break
        kind = kinds[index % len(kinds)]
        case_seed = seed * 1_000_003 + index
        format_name = (
            formats[index % len(formats)]
            if kind.startswith("enc-")
            else ""
        )
        case = build_case(kind, case_seed, format_name)
        report.record(execute_case(case, sandbox=sandbox))
        index += 1
    report.wall_s = time.perf_counter() - started
    return report


# ----------------------------------------------------------------------
# Delta-debugging minimizer
# ----------------------------------------------------------------------
def _outcome_signature(outcome: CaseOutcome) -> str:
    """What the minimizer must preserve."""
    if outcome.crashed:
        return outcome.signature
    return f"{outcome.kind}:{outcome.error_type}"


def minimize_case(
    case: FuzzCase, max_rounds: int = 12
) -> FuzzCase:
    """Shrink an ``mtx-*`` case while preserving its outcome signature.

    Classic ddmin over lines, then characters.  Non-text cases (the
    ``enc-*`` surface) come back unchanged — they are already minimal,
    being coordinates rather than bytes.
    """
    if case.mtx is None:
        return case
    target = _outcome_signature(execute_case(case))

    def still_fails(text: str) -> bool:
        candidate = FuzzCase(
            kind=case.kind,
            seed=case.seed,
            format_name=case.format_name,
            mtx=text,
        )
        return _outcome_signature(execute_case(candidate)) == target

    text = case.mtx
    for split in ("\n", ""):
        chunks = text.split(split) if split else list(text)
        granularity = 2
        rounds = 0
        while len(chunks) >= 2 and rounds < max_rounds:
            rounds += 1
            size = max(1, len(chunks) // granularity)
            shrunk = False
            start = 0
            while start < len(chunks):
                candidate = chunks[:start] + chunks[start + size:]
                joined = split.join(candidate)
                if candidate and still_fails(joined):
                    chunks = candidate
                    shrunk = True
                else:
                    start += size
            if not shrunk:
                if granularity >= len(chunks):
                    break
                granularity = min(len(chunks), granularity * 2)
        text = split.join(chunks)
    return FuzzCase(
        kind=case.kind,
        seed=case.seed,
        format_name=case.format_name,
        mtx=text,
    )


# ----------------------------------------------------------------------
# The on-disk regression corpus
# ----------------------------------------------------------------------
def save_case(corpus_dir: "str | Path", case: FuzzCase) -> Path:
    """Write one case into the corpus (atomic, canonical JSON)."""
    from .. import io_atomic

    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / case.corpus_name()
    payload = {
        "schema": CORPUS_SCHEMA,
        "kind": case.kind,
        "seed": case.seed,
        "format": case.format_name,
        "mtx": case.mtx,
    }
    io_atomic.atomic_write_json(path, payload)
    return path


def load_corpus(corpus_dir: "str | Path") -> "list[FuzzCase]":
    """Every case in the corpus, sorted by file name."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    cases: list[FuzzCase] = []
    for path in sorted(corpus_dir.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise FuzzError(
                f"corrupt corpus entry {path}: {error}"
            ) from error
        if payload.get("schema") != CORPUS_SCHEMA:
            raise FuzzError(
                f"corpus entry {path} has schema "
                f"{payload.get('schema')!r}, expected {CORPUS_SCHEMA!r}"
            )
        if payload.get("kind") not in FUZZ_KINDS:
            raise FuzzError(
                f"corpus entry {path} has unknown kind "
                f"{payload.get('kind')!r}"
            )
        cases.append(
            FuzzCase(
                kind=payload["kind"],
                seed=int(payload.get("seed", 0)),
                format_name=str(payload.get("format", "")),
                mtx=payload.get("mtx"),
            )
        )
    return cases


def replay_corpus(
    corpus_dir: "str | Path", sandbox: "Sandbox | None" = None
) -> FuzzReport:
    """Re-execute every corpus case; crashes mean a regression."""
    report = FuzzReport(seed=0)
    started = time.perf_counter()
    for case in load_corpus(corpus_dir):
        report.record(execute_case(case, sandbox=sandbox))
    report.wall_s = time.perf_counter() - started
    return report
