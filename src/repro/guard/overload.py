"""Serve-side overload protection: breakers, bulkheads, shedding.

Three cooperating mechanisms, all deterministic and clock-injectable
so the state machines are testable without sleeping:

* :class:`CircuitBreaker` — classic closed → open → half-open per
  *route*: after ``failure_threshold`` consecutive backend failures
  the route answers 503 immediately for ``recovery_s`` seconds, then
  lets a bounded number of probes through; a probe success closes the
  breaker, a probe failure re-opens it.  Every transition lands in a
  typed metrics counter
  (``guard.breaker.<route>.transition.<from>-<to>``).
* **Bulkheads** — the server separates cheap traffic (cache hits,
  learned fast-path predictions) from expensive sweep computations
  with independent executor lanes; :class:`BulkheadStats` is the
  shared accounting the metrics endpoint exports.
* :class:`LoadShedder` — SLO-aware shedding: a rolling latency window
  plus the live queue depth decide a *shed line*; requests whose
  priority falls below the line are refused with 503 + Retry-After
  while higher classes keep their latency bounded.  Priorities come
  from the ``X-Copernicus-Priority`` header (:data:`PRIORITIES`;
  unknown values are treated as ``low``, so a client cannot gain
  priority by misspelling it).

:class:`GuardPolicy` bundles the tuning knobs the server and CLI
accept.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import GuardError
from ..observability import NULL_METRICS

__all__ = [
    "PRIORITIES",
    "BulkheadStats",
    "CircuitBreaker",
    "GuardPolicy",
    "LoadShedder",
    "parse_priority",
]

#: Priority classes, highest first.  The default for requests that do
#: not send the header is ``normal``; unknown spellings are ``low``.
PRIORITIES = ("high", "normal", "low")

#: Breaker states.
_STATES = ("closed", "open", "half-open")


def parse_priority(value: "str | None") -> str:
    """Map an ``X-Copernicus-Priority`` header to a priority class."""
    if value is None or value == "":
        return "normal"
    value = value.strip().lower()
    return value if value in PRIORITIES else "low"


@dataclass(frozen=True)
class GuardPolicy:
    """Tuning knobs for the serve-side guard layer.

    ``shed_p99_ms``/``shed_queue_depth`` of ``None`` disable that
    shedding signal; the breaker is always armed once a policy is
    installed.
    """

    breaker_threshold: int = 5
    breaker_recovery_s: float = 5.0
    breaker_probes: int = 1
    shed_p99_ms: "float | None" = None
    shed_queue_depth: "int | None" = None
    shed_retry_after_s: float = 1.0
    #: Thread-pool width of the cheap (fast-path/sandbox) lane.
    cheap_lane_width: int = 2

    def __post_init__(self) -> None:
        if self.breaker_threshold < 1:
            raise GuardError(
                f"breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold}"
            )
        if self.breaker_recovery_s <= 0:
            raise GuardError(
                f"breaker_recovery_s must be > 0, got "
                f"{self.breaker_recovery_s}"
            )
        if self.breaker_probes < 1:
            raise GuardError(
                f"breaker_probes must be >= 1, got {self.breaker_probes}"
            )
        if self.shed_p99_ms is not None and self.shed_p99_ms <= 0:
            raise GuardError(
                f"shed_p99_ms must be > 0, got {self.shed_p99_ms}"
            )
        if (
            self.shed_queue_depth is not None
            and self.shed_queue_depth < 1
        ):
            raise GuardError(
                f"shed_queue_depth must be >= 1, got "
                f"{self.shed_queue_depth}"
            )
        if self.shed_retry_after_s <= 0:
            raise GuardError(
                f"shed_retry_after_s must be > 0, got "
                f"{self.shed_retry_after_s}"
            )
        if self.cheap_lane_width < 1:
            raise GuardError(
                f"cheap_lane_width must be >= 1, got "
                f"{self.cheap_lane_width}"
            )


class CircuitBreaker:
    """Per-route failure breaker: closed → open → half-open → closed.

    Not thread-safe by itself — the server drives it from the event
    loop; the fuzz/overload tests drive it with a fake clock.
    """

    def __init__(
        self,
        route: str,
        *,
        failure_threshold: int = 5,
        recovery_s: float = 5.0,
        half_open_probes: int = 1,
        clock=time.monotonic,
        metrics=NULL_METRICS,
    ) -> None:
        if failure_threshold < 1:
            raise GuardError(
                f"failure_threshold must be >= 1, got "
                f"{failure_threshold}"
            )
        if recovery_s <= 0:
            raise GuardError(
                f"recovery_s must be > 0, got {recovery_s}"
            )
        if half_open_probes < 1:
            raise GuardError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.route = route
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._metrics = metrics
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        #: Transition counts, keyed ``"closed-open"`` etc.
        self.transitions: dict[str, int] = {}

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open → half-open on its own once
        the recovery window has elapsed."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.recovery_s
        ):
            self._transition("half-open")
            self._probes_inflight = 0
        return self._state

    def _transition(self, to_state: str) -> None:
        key = f"{self._state}-{to_state}"
        self._state = to_state
        self.transitions[key] = self.transitions.get(key, 0) + 1
        self._metrics.incr(
            f"guard.breaker.{self.route}.transition.{key}"
        )

    # -- the request-path API ------------------------------------------
    def allow(self) -> bool:
        """May a request proceed to the backend right now?

        In ``half-open`` state, at most ``half_open_probes`` callers
        get a True until one of them reports an outcome.
        """
        state = self.state
        if state == "closed":
            return True
        if state == "open":
            return False
        if self._probes_inflight >= self.half_open_probes:
            return False
        self._probes_inflight += 1
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state == "half-open":
            self._transition("closed")
            self._probes_inflight = 0

    def record_failure(self) -> None:
        state = self.state
        if state == "half-open":
            # the probe failed: the backend is still sick
            self._transition("open")
            self._opened_at = self._clock()
            self._probes_inflight = 0
            self._consecutive_failures = 0
            return
        if state == "open":
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._transition("open")
            self._opened_at = self._clock()
            self._consecutive_failures = 0

    def retry_after_s(self) -> float:
        """Seconds until the next state change a client should wait."""
        if self._state != "open":
            return 1.0
        remaining = self.recovery_s - (self._clock() - self._opened_at)
        return max(1.0, remaining)

    def snapshot(self) -> dict:
        return {
            "route": self.route,
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "recovery_s": self.recovery_s,
            "transitions": dict(sorted(self.transitions.items())),
        }


@dataclass
class BulkheadStats:
    """Shared accounting for one executor lane."""

    lane: str
    width: int
    submitted: int = 0
    completed: int = 0
    rejected: int = 0

    def snapshot(self) -> dict:
        return {
            "lane": self.lane,
            "width": self.width,
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
        }


class LoadShedder:
    """SLO-aware priority shedding over a rolling latency window.

    ``observe`` feeds completed-request latencies; ``shed_class``
    answers which priority classes must currently be refused:

    * neither signal tripped → shed nothing;
    * p99 over threshold *or* queue depth over threshold → shed
      ``low``;
    * both signals tripped, or either at twice its threshold → also
      shed ``normal``.  ``high`` is never shed — that is the bounded
      p99 the campaign gates.
    """

    def __init__(
        self,
        *,
        p99_threshold_ms: "float | None" = None,
        queue_depth_threshold: "int | None" = None,
        window: int = 256,
        metrics=NULL_METRICS,
    ) -> None:
        if window < 8:
            raise GuardError(f"window must be >= 8, got {window}")
        self.p99_threshold_ms = p99_threshold_ms
        self.queue_depth_threshold = queue_depth_threshold
        self.window = window
        self._metrics = metrics
        self._latencies_ms: list[float] = []
        self._cursor = 0
        #: Requests shed, keyed by priority class.
        self.shed_counts: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return (
            self.p99_threshold_ms is not None
            or self.queue_depth_threshold is not None
        )

    def observe(self, latency_s: float) -> None:
        """Feed one completed request's wall latency into the window."""
        value = max(0.0, latency_s) * 1000.0
        if len(self._latencies_ms) < self.window:
            self._latencies_ms.append(value)
        else:
            self._latencies_ms[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.window
        self._metrics.incr("guard.shed.observed")

    def p99_ms(self) -> float:
        """Nearest-rank p99 of the current window (0 when empty)."""
        if not self._latencies_ms:
            return 0.0
        ordered = sorted(self._latencies_ms)
        rank = max(1, int(0.99 * len(ordered) + 0.9999))
        return ordered[min(rank, len(ordered)) - 1]

    def _pressure(self, queue_depth: int) -> tuple[bool, bool]:
        """(over-threshold, severely-over) across both signals."""
        over = severe = False
        if self.p99_threshold_ms is not None:
            p99 = self.p99_ms()
            if p99 > self.p99_threshold_ms:
                over = True
            if p99 > 2 * self.p99_threshold_ms:
                severe = True
        if self.queue_depth_threshold is not None:
            if queue_depth > self.queue_depth_threshold:
                if over:
                    severe = True  # both signals tripped
                over = True
            if queue_depth > 2 * self.queue_depth_threshold:
                severe = True
        return over, severe

    def shed_class(self, queue_depth: int) -> "tuple[str, ...]":
        """Priority classes that must be refused right now."""
        if not self.enabled:
            return ()
        over, severe = self._pressure(queue_depth)
        if severe:
            return ("normal", "low")
        if over:
            return ("low",)
        return ()

    def should_shed(self, priority: str, queue_depth: int) -> bool:
        shed = priority in self.shed_class(queue_depth)
        if shed:
            self.shed_counts[priority] = (
                self.shed_counts.get(priority, 0) + 1
            )
            self._metrics.incr(f"guard.shed.{priority}")
        return shed

    def snapshot(self) -> dict:
        return {
            "enabled": self.enabled,
            "p99_threshold_ms": self.p99_threshold_ms,
            "queue_depth_threshold": self.queue_depth_threshold,
            "window_p99_ms": self.p99_ms(),
            "window_fill": len(self._latencies_ms),
            "shed_counts": dict(sorted(self.shed_counts.items())),
        }
