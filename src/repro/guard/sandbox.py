"""Resource-sandboxed execution boundary for untrusted matrices.

A poison matrix — one crafted to blow up the parser, the profiler or a
format codec — must cost the attacker a verdict, not the operator a
serve worker.  This module runs the exposed operations (``parse``,
``profile``, ``encode``) in a *subprocess* under hard caps:

* **wall clock** — the parent kills the child past
  :attr:`SandboxLimits.wall_s` (a CPU rlimit backs this up, so a busy
  loop dies even if the parent stalls);
* **memory** — the child caps its own address-space headroom with
  ``resource.setrlimit(RLIMIT_AS)``, so a dense-bomb allocation raises
  ``MemoryError`` inside the child instead of invoking the OOM killer
  on the serving process;
* **output size** — the parent refuses verdict payloads beyond
  :attr:`SandboxLimits.output_bytes`.

Every outcome is a typed :class:`ResourceVerdict`:

=============  =====================================================
``ok``         the operation completed; ``result`` holds its summary
``rejected``   the library refused the input with a typed
               :class:`~repro.errors.CopernicusError` — the *correct*
               answer for malformed input
``timeout``    wall-clock or CPU budget exhausted; child killed
``oom``        the memory cap fired (``MemoryError`` under RLIMIT_AS)
``oversize``   the child tried to ship more than the output cap
``crash``      an unhandled exception or child death — the verdict
               fuzzing hunts for
=============  =====================================================

The child is persistent: one spawned interpreter answers many jobs
over a length-delimited JSON pipe, so the per-job cost is the job, not
an interpreter boot.  A child killed for any reason is respawned on
the next call.  :class:`Sandbox` is thread-safe (one job in flight at
a time); :func:`run_sandboxed` is the one-shot convenience.

Only hostile *inputs* produce verdicts.  Harness failures — a child
that cannot spawn, a protocol violation — raise
:class:`~repro.errors.SandboxError` instead, so a verdict can always
be trusted to describe the input.
"""

from __future__ import annotations

import json
import os
import select
import signal
import subprocess
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path

from ..errors import CopernicusError, SandboxError

__all__ = [
    "SANDBOX_OPS",
    "VERDICT_KINDS",
    "ResourceVerdict",
    "Sandbox",
    "SandboxLimits",
    "run_sandboxed",
]

#: Operations the sandbox exposes over untrusted matrices.  The
#: underscored ops deterministically produce the non-``ok`` verdicts
#: (sleep → timeout, alloc → oom, flood → oversize, die → crash) and
#: exist for the verdict test suite; they never touch matrix data.
SANDBOX_OPS = (
    "parse",
    "profile",
    "encode",
    "_sleep",
    "_alloc",
    "_flood",
    "_die",
)

#: Every kind a :class:`ResourceVerdict` can carry.
VERDICT_KINDS = (
    "ok", "rejected", "timeout", "oom", "oversize", "crash",
)

#: Detail strings are clipped to this many characters in verdicts.
_DETAIL_CAP = 2000


@dataclass(frozen=True)
class SandboxLimits:
    """Hard caps for one sandboxed operation.

    ``rss_mb`` is allocation *headroom* beyond the child interpreter's
    baseline address space (numpy's mappings alone are large and
    constant), so the knob bounds what the untrusted input may
    allocate, independent of interpreter overhead.
    """

    wall_s: float = 10.0
    rss_mb: float = 512.0
    output_bytes: int = 1 << 22

    def __post_init__(self) -> None:
        if self.wall_s <= 0:
            raise SandboxError(
                f"wall_s must be > 0, got {self.wall_s}"
            )
        if self.rss_mb <= 0:
            raise SandboxError(
                f"rss_mb must be > 0, got {self.rss_mb}"
            )
        if self.output_bytes < 1024:
            raise SandboxError(
                f"output_bytes must be >= 1024, got {self.output_bytes}"
            )


@dataclass(frozen=True)
class ResourceVerdict:
    """The typed outcome of one sandboxed operation."""

    kind: str
    op: str
    detail: str = ""
    error_type: str = ""
    wall_s: float = 0.0
    result: "dict | None" = None

    @property
    def ok(self) -> bool:
        return self.kind == "ok"

    @property
    def safe(self) -> bool:
        """True when the input was *handled*: completed or refused
        with a typed error.  ``timeout``/``oom``/``oversize`` are also
        safe — the cap did its job — leaving ``crash`` as the only
        unsafe verdict."""
        return self.kind != "crash"

    def to_dict(self) -> dict:
        payload = {
            "kind": self.kind,
            "op": self.op,
            "detail": self.detail,
            "error_type": self.error_type,
            "wall_s": self.wall_s,
        }
        if self.result is not None:
            payload["result"] = self.result
        return payload


# ----------------------------------------------------------------------
# Child side
# ----------------------------------------------------------------------
def _address_space_bytes() -> int:
    """Current virtual size of this process (Linux; 0 elsewhere)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as statm:
            pages = int(statm.read().split()[0])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return 0


def _apply_child_limits(rss_mb: float, cpu_s: float) -> None:
    import resource

    headroom = int(rss_mb * (1 << 20))
    ceiling = _address_space_bytes() + headroom
    try:
        resource.setrlimit(resource.RLIMIT_AS, (ceiling, ceiling))
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    cpu = max(1, int(cpu_s) + 1)
    try:
        resource.setrlimit(resource.RLIMIT_CPU, (cpu, cpu + 1))
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def _child_execute(job: dict) -> dict:
    """Run one job; map every outcome to a verdict payload."""
    op = job.get("op")
    try:
        if op == "parse":
            result = _op_parse(job)
        elif op == "profile":
            result = _op_profile(job)
        elif op == "encode":
            result = _op_encode(job)
        elif op == "_sleep":
            time.sleep(float(job.get("seconds", 3600.0)))
            result = {}
        elif op == "_alloc":
            result = _op_alloc(job)
        elif op == "_flood":
            result = {"blob": "x" * int(job.get("size", 1 << 24))}
        elif op == "_die":
            os._exit(int(job.get("code", 86)))
        else:
            return {
                "kind": "rejected",
                "error_type": "SandboxError",
                "detail": f"unknown sandbox op {op!r}",
            }
        return {"kind": "ok", "result": result}
    except CopernicusError as error:
        return {
            "kind": "rejected",
            "error_type": type(error).__name__,
            "detail": str(error)[:_DETAIL_CAP],
        }
    except MemoryError:
        return {"kind": "oom", "detail": "MemoryError under RLIMIT_AS"}
    except Exception as error:  # noqa: BLE001 — crash *finding*
        return {
            "kind": "crash",
            "error_type": type(error).__name__,
            "detail": traceback.format_exc()[-_DETAIL_CAP:],
        }


def _op_parse(job: dict) -> dict:
    from ..io import loads

    matrix = loads(str(job.get("mtx", "")))
    return {
        "shape": [matrix.n_rows, matrix.n_cols],
        "nnz": matrix.nnz,
    }


def _op_profile(job: dict) -> dict:
    from ..io import loads
    from ..partition import profile_table

    matrix = loads(str(job.get("mtx", "")))
    p = int(job.get("p", 8))
    table = profile_table(matrix, p)
    return {
        "shape": [matrix.n_rows, matrix.n_cols],
        "nnz": matrix.nnz,
        "p": p,
        "n_tiles": int(table.n_tiles),
    }


def _op_encode(job: dict) -> dict:
    from ..formats import get_format
    from ..formats.validate import validate_encoding
    from ..io import loads

    matrix = loads(str(job.get("mtx", "")))
    fmt = get_format(str(job.get("format", "csr")))
    encoded = fmt.encode(matrix)
    validate_encoding(encoded)
    size = fmt.size(encoded)
    return {
        "shape": [matrix.n_rows, matrix.n_cols],
        "nnz": matrix.nnz,
        "format": encoded.format_name,
        "total_bytes": int(size.total_bytes),
    }


def _op_alloc(job: dict) -> dict:
    import numpy as np

    mb = float(job.get("mb", 1 << 14))
    block = np.ones(int(mb * (1 << 20) // 8), dtype=np.float64)
    return {"allocated_mb": float(block.nbytes / (1 << 20))}


def _child_main(argv: "list[str]") -> int:
    """The sandbox child loop: one JSON job line in, one verdict out."""
    rss_mb = float(argv[argv.index("--rss-mb") + 1])
    cpu_s = float(argv[argv.index("--cpu-s") + 1])
    # import the heavy dependencies *before* capping the address
    # space, so the cap bounds untrusted allocations, not numpy's boot
    import numpy  # noqa: F401

    from .. import formats, io, partition  # noqa: F401

    _apply_child_limits(rss_mb, cpu_s)
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    while True:
        line = stdin.readline()
        if not line:
            return 0
        try:
            job = json.loads(line)
        except json.JSONDecodeError:
            payload = {
                "kind": "rejected",
                "error_type": "SandboxError",
                "detail": "malformed job line",
            }
        else:
            payload = _child_execute(job)
        try:
            blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        except (MemoryError, ValueError, TypeError):
            blob = json.dumps(
                {"kind": "oom", "detail": "verdict serialization failed"}
            ).encode("utf-8")
        stdout.write(blob + b"\n")
        stdout.flush()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class Sandbox:
    """A persistent sandboxed worker for untrusted-matrix operations.

    One child interpreter serves many jobs; a child killed by a cap or
    a crash is respawned lazily on the next call.  Thread-safe: one
    job is in flight at a time, so verdicts can never interleave.
    """

    def __init__(self, limits: "SandboxLimits | None" = None) -> None:
        self.limits = limits or SandboxLimits()
        self._lock = threading.Lock()
        self._child: "subprocess.Popen | None" = None
        #: Total jobs executed (including non-ok verdicts).
        self.jobs = 0
        #: Child (re)spawns — 1 after the first job on a healthy run.
        self.spawns = 0

    # -- lifecycle -----------------------------------------------------
    def _spawn(self) -> subprocess.Popen:
        src_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            f"{src_root}{os.pathsep}{existing}" if existing else str(src_root)
        )
        try:
            child = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.guard.sandbox",
                    "--rss-mb", str(self.limits.rss_mb),
                    "--cpu-s", str(self.limits.wall_s),
                ],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                env=env,
                start_new_session=True,
            )
        except OSError as error:
            raise SandboxError(
                f"could not spawn sandbox child: {error}"
            ) from error
        self.spawns += 1
        return child

    def _ensure_child(self) -> subprocess.Popen:
        if self._child is None or self._child.poll() is not None:
            self._child = self._spawn()
        return self._child

    def _kill_child(self) -> None:
        child = self._child
        self._child = None
        if child is None:
            return
        try:
            child.kill()
            child.wait(timeout=5.0)
        except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
            pass
        for stream in (child.stdin, child.stdout):
            try:
                if stream is not None:
                    stream.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def close(self) -> None:
        with self._lock:
            self._kill_child()

    def __enter__(self) -> "Sandbox":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the job path --------------------------------------------------
    def run(
        self,
        op: str,
        *,
        wall_s: "float | None" = None,
        **payload: object,
    ) -> ResourceVerdict:
        """Execute one operation on untrusted input; never raises for
        the input itself."""
        if op not in SANDBOX_OPS:
            raise SandboxError(
                f"unknown sandbox op {op!r}; known: "
                f"{', '.join(SANDBOX_OPS)}"
            )
        budget = self.limits.wall_s if wall_s is None else wall_s
        if budget <= 0:
            raise SandboxError(f"wall_s must be > 0, got {budget}")
        job = {"op": op, **payload}
        try:
            blob = json.dumps(job).encode("utf-8")
        except (TypeError, ValueError) as error:
            raise SandboxError(
                f"job payload is not JSON-serializable: {error}"
            ) from error
        with self._lock:
            self.jobs += 1
            started = time.perf_counter()
            reply = self._exchange(blob, budget)
            wall = time.perf_counter() - started
        return self._verdict(op, reply, wall)

    def _exchange(self, blob: bytes, budget: float) -> "dict | str":
        """One write/read round-trip; returns the parsed verdict
        payload or a parent-side verdict kind string."""
        child = self._ensure_child()
        try:
            child.stdin.write(blob + b"\n")
            child.stdin.flush()
        except (OSError, ValueError):
            # the previous job may have left a corpse; one respawn
            self._kill_child()
            child = self._ensure_child()
            try:
                child.stdin.write(blob + b"\n")
                child.stdin.flush()
            except (OSError, ValueError) as error:
                self._kill_child()
                raise SandboxError(
                    f"sandbox child rejected the job pipe: {error}"
                ) from error
        deadline = time.monotonic() + budget
        buffer = bytearray()
        fd = child.stdout.fileno()
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._kill_child()
                return "timeout"
            readable, _, _ = select.select([fd], [], [], remaining)
            if not readable:
                self._kill_child()
                return "timeout"
            chunk = os.read(fd, 1 << 16)
            if not chunk:
                return self._classify_death(child)
            buffer.extend(chunk)
            if len(buffer) > self.limits.output_bytes:
                self._kill_child()
                return "oversize"
            if buffer.endswith(b"\n"):
                break
        try:
            payload = json.loads(bytes(buffer))
        except json.JSONDecodeError:
            self._kill_child()
            return "crash"
        if not isinstance(payload, dict):
            self._kill_child()
            return "crash"
        return payload

    def _classify_death(self, child: subprocess.Popen) -> str:
        """Verdict kind for a child that died mid-job."""
        try:
            code = child.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover
            code = None
        self._kill_child()
        if code is not None and -code in (
            signal.SIGXCPU, signal.SIGKILL,
        ):
            # SIGXCPU is the CPU rlimit backstop; SIGKILL under
            # memory pressure is the kernel refusing the address
            # space before MemoryError could fire
            return "timeout" if -code == signal.SIGXCPU else "oom"
        return "crash"

    def _verdict(
        self, op: str, reply: "dict | str", wall: float
    ) -> ResourceVerdict:
        if isinstance(reply, str):
            detail = {
                "timeout": "wall-clock budget exhausted; child killed",
                "oversize": "verdict payload exceeded the output cap",
                "crash": "sandbox child died mid-job",
                "oom": "child killed under memory pressure",
            }[reply]
            return ResourceVerdict(
                kind=reply, op=op, detail=detail, wall_s=wall
            )
        kind = reply.get("kind", "crash")
        if kind not in VERDICT_KINDS:
            kind = "crash"
        return ResourceVerdict(
            kind=kind,
            op=op,
            detail=str(reply.get("detail", ""))[:_DETAIL_CAP],
            error_type=str(reply.get("error_type", "")),
            wall_s=wall,
            result=(
                reply.get("result")
                if isinstance(reply.get("result"), dict)
                else None
            ),
        )


def run_sandboxed(
    op: str,
    limits: "SandboxLimits | None" = None,
    **payload: object,
) -> ResourceVerdict:
    """One-shot sandbox run: spawn, execute, tear down."""
    with Sandbox(limits) as sandbox:
        return sandbox.run(op, **payload)


if __name__ == "__main__":  # pragma: no cover - child entry point
    sys.exit(_child_main(sys.argv[1:]))
