"""Cycle-level model of the Copernicus evaluation platform.

Mirrors Figure 2: AXI stream transfers, banked BRAM buffers, per-format
decompressors (Listings 1-7), the multiplier-array + adder-tree
dot-product engine, the three-stage streaming pipeline, and the
resource/power estimators behind Table 2 and Figure 13.
"""

from .axi import AxiStreamModel
from .bram import BRAM_18K_BITS, BramBuffer, bram_blocks_for
from .config import DEFAULT_CONFIG, HardwareConfig
from .decompressors import (
    MODELED_FORMATS,
    VARIANT_FORMATS,
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
    get_decompressor,
)
from .dot_product import DotProductEngine
from .integrity import IntegrityCheckModel
from .hls import (
    LISTING_BUILDERS,
    BramAccess,
    DotProductPass,
    Loop,
    Op,
    Sequence,
    Statement,
    build_listing,
    schedule_cycles,
)
from .paper_data import (
    PAPER_STATIC_POWER_W,
    PAPER_TABLE2,
    TOTAL_BRAM_18K,
    TOTAL_FF,
    TOTAL_LUT,
    PaperResourceRow,
    paper_table2_row,
)
from .multi import LaneAssignment, MultiLanePipeline, MultiLaneResult
from .schedule import (
    PartitionCost,
    imbalance_order,
    johnson_order,
    partition_costs,
    schedule_gain,
)
from .pipeline import (
    PartitionTiming,
    PipelineResult,
    StreamingPipeline,
    resolve_profile_table,
)
from .trace import PipelineTrace, StageInterval, trace_pipeline
from .power import PowerBreakdown, estimate_power, static_power_w
from .resources import (
    RESOURCE_FORMATS,
    ResourceEstimate,
    estimate_resources,
)

__all__ = [
    "AxiStreamModel",
    "BRAM_18K_BITS",
    "BramBuffer",
    "bram_blocks_for",
    "DEFAULT_CONFIG",
    "HardwareConfig",
    "MODELED_FORMATS",
    "VARIANT_FORMATS",
    "ComputeBreakdown",
    "ComputeColumns",
    "SizeColumns",
    "DecompressorModel",
    "get_decompressor",
    "DotProductEngine",
    "IntegrityCheckModel",
    "LISTING_BUILDERS",
    "BramAccess",
    "DotProductPass",
    "Loop",
    "Op",
    "Sequence",
    "Statement",
    "build_listing",
    "schedule_cycles",
    "PAPER_STATIC_POWER_W",
    "PAPER_TABLE2",
    "TOTAL_BRAM_18K",
    "TOTAL_FF",
    "TOTAL_LUT",
    "PaperResourceRow",
    "paper_table2_row",
    "LaneAssignment",
    "MultiLanePipeline",
    "MultiLaneResult",
    "PartitionCost",
    "imbalance_order",
    "johnson_order",
    "partition_costs",
    "schedule_gain",
    "PartitionTiming",
    "PipelineResult",
    "StreamingPipeline",
    "resolve_profile_table",
    "PipelineTrace",
    "StageInterval",
    "trace_pipeline",
    "PowerBreakdown",
    "estimate_power",
    "static_power_w",
    "RESOURCE_FORMATS",
    "ResourceEstimate",
    "estimate_resources",
]
