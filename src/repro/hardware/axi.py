"""AXI stream transfer model.

The memory-read stage of the pipeline (Figure 2) streams a compressed
partition — values plus metadata — from DDR3 into BRAM through AXIS
interfaces.  Several AXIS lines may carry different arrays concurrently
(Section 5.2 streams CSR's offsets and indices side by side), but they
all draw from the same DDR3 channel: the aggregate transfer rate is
bounded by the memory bus, so memory latency is the burst setup plus
the *total* bytes over the bus bandwidth.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import HardwareConfigError
from .config import HardwareConfig

__all__ = ["AxiStreamModel"]


class AxiStreamModel:
    """Cycle cost of streaming byte payloads over the AXIS interfaces."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config

    def stream_cycles(self, n_bytes: int) -> int:
        """Cycles for the bus to move ``n_bytes`` (excluding setup)."""
        if n_bytes < 0:
            raise HardwareConfigError(f"negative byte count: {n_bytes}")
        return math.ceil(n_bytes / self.config.axi_bytes_per_cycle)

    def transfer_cycles(self, lines: Sequence[int]) -> int:
        """Cycles to move the payloads in ``lines``.

        The lines run concurrently as AXIS streams, but share the DDR3
        channel, so the latency is the setup cost plus the aggregate
        byte count over the bus bandwidth.  (A per-line model would let
        formats whose payload splits evenly across lines exceed the
        memory bandwidth, which no format can actually do.)
        """
        if not lines:
            return 0
        total = 0
        for payload in lines:
            if payload < 0:
                raise HardwareConfigError(
                    f"negative byte count: {payload}"
                )
            total += payload
        return self.config.axi_setup_cycles + self.stream_cycles(total)

    def transfer_cycles_batch(self, total_bytes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`transfer_cycles` over per-tile byte totals.

        ``total_bytes`` holds each tile's aggregate payload (its AXIS
        lines already summed); the result is the per-tile memory-stage
        latency as an ``(n,)`` integer array, bit-identical to calling
        the scalar method tile by tile.
        """
        total = np.ascontiguousarray(total_bytes, dtype=np.int64)
        if total.size and int(total.min()) < 0:
            raise HardwareConfigError(
                f"negative byte count: {int(total.min())}"
            )
        per_cycle = self.config.axi_bytes_per_cycle
        return self.config.axi_setup_cycles + -(-total // per_cycle)

    def single_line_cycles(self, n_bytes: int) -> int:
        """Setup plus streaming for one payload."""
        return self.transfer_cycles([n_bytes])
