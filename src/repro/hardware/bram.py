"""On-chip BRAM model.

Xilinx 7-series block RAM comes in 18 Kbit units with two ports.  The
model answers two questions the characterization needs:

* how many BRAM_18K units a buffer of a given geometry occupies once
  it is partitioned into banks for parallel access (resource model,
  Table 2), and
* how many cycles a group of accesses costs given the banking
  (latency model — partitioned arrays answer in one access, while
  unpartitioned arrays serialize).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import HardwareConfigError

__all__ = ["BRAM_18K_BITS", "BramBuffer", "bram_blocks_for"]

#: Usable bits of one BRAM_18K unit.
BRAM_18K_BITS = 18 * 1024


def bram_blocks_for(bits: int, banks: int = 1) -> int:
    """BRAM_18K units for ``bits`` of storage split into ``banks``.

    Each bank is a separately addressable physical buffer, so each
    rounds up to at least one unit — this is why aggressive array
    partitioning inflates BRAM usage even for small arrays.
    """
    if bits < 0:
        raise HardwareConfigError(f"negative bit count: {bits}")
    if banks < 1:
        raise HardwareConfigError(f"banks must be >= 1, got {banks}")
    if bits == 0:
        return 0
    per_bank = math.ceil(bits / banks)
    return banks * math.ceil(per_bank / BRAM_18K_BITS)


@dataclass(frozen=True)
class BramBuffer:
    """One on-chip buffer with a banking decision.

    Attributes
    ----------
    name:
        Which array this buffers (diagnostics only).
    bits:
        Worst-case capacity that must be reserved (Section 6.4: "we
        must dedicate enough BRAM blocks to envision the worst-case
        scenarios even though they occur rarely").
    banks:
        Number of banks the array is partitioned into (1 = no
        ``array_partition`` pragma).
    access_cycles:
        Latency of one access to this buffer.
    """

    name: str
    bits: int
    banks: int = 1
    access_cycles: int = 2

    @property
    def blocks(self) -> int:
        """BRAM_18K units occupied."""
        return bram_blocks_for(self.bits, self.banks)

    @property
    def fits_in_registers(self) -> bool:
        """Small single-bank buffers are mapped to FFs by HLS instead.

        This mirrors the paper's observation that small-partition ELL
        buffers land in flip-flops rather than BRAM (Section 6.4).
        """
        return self.banks == 1 and self.bits <= 1024

    def gather_cycles(self, n_elements: int) -> int:
        """Cycles to read ``n_elements`` spread over the banks."""
        if n_elements < 0:
            raise HardwareConfigError(
                f"negative element count: {n_elements}"
            )
        if n_elements == 0:
            return 0
        rounds = math.ceil(n_elements / self.banks)
        # pipelined after the first access: pay full latency once, then
        # one cycle per additional round.
        return self.access_cycles + (rounds - 1)
