"""Hardware platform configuration.

Models the paper's evaluation platform (Section 4.1): a Zynq-7000
xq7z020 FPGA clocked at 250 MHz, fed from DDR3 through AXI stream
interfaces.  Every latency in the model is expressed in clock cycles;
:attr:`HardwareConfig.cycle_seconds` converts to wall time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import HardwareConfigError

__all__ = ["HardwareConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class HardwareConfig:
    """All tunable parameters of the accelerator model.

    Attributes
    ----------
    partition_size:
        Edge ``p`` of the square partitions; also the dot-product
        engine width (Section 5.1: "the width of the dot-product
        engine is the same as the width of the partitions").
    clock_mhz:
        Core clock; the paper synthesizes at 250 MHz.
    value_bytes / index_bytes:
        On-wire field widths (32-bit words in the paper).
    axi_bytes_per_cycle:
        Streaming bandwidth of one AXIS line in bytes per core cycle.
    axi_setup_cycles:
        Fixed per-partition burst setup cost.
    n_stream_lines:
        Parallel AXIS lines; metadata can stream beside values
        (Section 5.2 assumes offsets and column indices stream on two
        lines for CSR).
    bram_access_cycles:
        Latency of one (non-overlapped) BRAM read, e.g. the extra
        offsets access that makes CSR compute-bound.
    multiplier_cycles:
        Latency of one pipelined multiplier stage.
    block_size:
        BCSR block edge ``b`` (the paper fixes 4).
    ell_hardware_width:
        Width of the ELL row slots the compute engine is built for
        (the paper fixes 6).
    lil_merge_cycles:
        Comparator-tree stages charged per LIL merge step beyond the
        BRAM access (min-index reduction over the columns).
    write_back:
        Whether the memory-write stage's output-vector transfer is
        accounted in the pipeline total.
    integrity_check:
        Whether the memory-read stage verifies each tile's framing
        (CRC over the streamed bytes plus a fixed header check) before
        handing it to the decompressor.  Off by default — the paper's
        baseline accelerator trusts its streams.
    crc_bytes_per_cycle:
        Bytes the CRC/structural checker digests per cycle.  A checker
        slower than the AXI link (``< axi_bytes_per_cycle``) makes
        checking the memory-stage bottleneck; a matching rate hides
        entirely behind the transfer.
    integrity_header_cycles:
        Fixed per-tile cost of parsing and checking the frame header.
    """

    partition_size: int = 16
    clock_mhz: float = 250.0
    value_bytes: int = 4
    index_bytes: int = 4
    axi_bytes_per_cycle: int = 8
    axi_setup_cycles: int = 4
    n_stream_lines: int = 2
    bram_access_cycles: int = 2
    multiplier_cycles: int = 1
    block_size: int = 4
    ell_hardware_width: int = 6
    lil_merge_cycles: int = 2
    write_back: bool = True
    integrity_check: bool = False
    crc_bytes_per_cycle: int = 4
    integrity_header_cycles: int = 8

    def __post_init__(self) -> None:
        positive_fields = {
            "partition_size": self.partition_size,
            "clock_mhz": self.clock_mhz,
            "value_bytes": self.value_bytes,
            "index_bytes": self.index_bytes,
            "axi_bytes_per_cycle": self.axi_bytes_per_cycle,
            "n_stream_lines": self.n_stream_lines,
            "multiplier_cycles": self.multiplier_cycles,
            "block_size": self.block_size,
            "ell_hardware_width": self.ell_hardware_width,
            "crc_bytes_per_cycle": self.crc_bytes_per_cycle,
        }
        for name, value in positive_fields.items():
            if value <= 0:
                raise HardwareConfigError(f"{name} must be positive, got {value}")
        non_negative = {
            "axi_setup_cycles": self.axi_setup_cycles,
            "bram_access_cycles": self.bram_access_cycles,
            "lil_merge_cycles": self.lil_merge_cycles,
            "integrity_header_cycles": self.integrity_header_cycles,
        }
        for name, value in non_negative.items():
            if value < 0:
                raise HardwareConfigError(
                    f"{name} must be non-negative, got {value}"
                )
        if self.block_size > self.partition_size:
            raise HardwareConfigError(
                f"block_size {self.block_size} exceeds partition size "
                f"{self.partition_size}"
            )

    # ------------------------------------------------------------------
    @property
    def cycle_seconds(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / (self.clock_mhz * 1e6)

    @property
    def p(self) -> int:
        """Short alias for the partition size."""
        return self.partition_size

    def adder_tree_depth(self, width: int) -> int:
        """Stages of a balanced adder tree reducing ``width`` products."""
        if width < 1:
            raise HardwareConfigError(f"width must be >= 1, got {width}")
        return max(0, math.ceil(math.log2(width)))

    def dot_product_cycles(self, width: int | None = None) -> int:
        """Latency of one dot product at the given (default: p) width.

        One pipelined multiplier stage plus the adder-tree depth —
        the per-row ``T_dot`` of Equation 1.
        """
        w = self.partition_size if width is None else width
        return self.multiplier_cycles + self.adder_tree_depth(w)

    def with_partition_size(self, p: int) -> "HardwareConfig":
        """A copy at a different partition size (the main sweep axis)."""
        return replace(self, partition_size=p)

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        return cycles * self.cycle_seconds


#: The paper's platform at the default 16 x 16 partition size.
DEFAULT_CONFIG = HardwareConfig()
