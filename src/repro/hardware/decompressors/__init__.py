"""Per-format decompressor hardware models (Listings 1-7)."""

from ...errors import UnknownFormatError
from .base import (
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
)
from .bcsr import BcsrDecompressor
from .bitmap import BitmapDecompressor
from .coo import CooDecompressor, DokDecompressor
from .csc import CscDecompressor
from .csr import CsrDecompressor
from .dense import DenseDecompressor
from .dia import DiaDecompressor
from .ell import EllDecompressor
from .lil import LilDecompressor
from .variants import EllCooDecompressor, JdsDecompressor

__all__ = [
    "ComputeBreakdown",
    "ComputeColumns",
    "SizeColumns",
    "DecompressorModel",
    "DenseDecompressor",
    "CsrDecompressor",
    "CscDecompressor",
    "BcsrDecompressor",
    "CooDecompressor",
    "DokDecompressor",
    "LilDecompressor",
    "EllDecompressor",
    "DiaDecompressor",
    "BitmapDecompressor",
    "JdsDecompressor",
    "EllCooDecompressor",
    "get_decompressor",
    "MODELED_FORMATS",
    "VARIANT_FORMATS",
]

_MODELS = {
    model.name: model
    for model in (
        DenseDecompressor,
        CsrDecompressor,
        CscDecompressor,
        BcsrDecompressor,
        CooDecompressor,
        DokDecompressor,
        LilDecompressor,
        EllDecompressor,
        DiaDecompressor,
    )
}

#: Formats with a hardware decompressor model (the paper's eight bars
#: plus DOK).
MODELED_FORMATS: tuple[str, ...] = tuple(_MODELS)

_MODELS[BitmapDecompressor.name] = BitmapDecompressor
_MODELS[JdsDecompressor.name] = JdsDecompressor
_MODELS[EllCooDecompressor.name] = EllCooDecompressor

#: Extension-format models (Section 2's ELL variants); these need the
#: profile's row-length histogram.
VARIANT_FORMATS: tuple[str, ...] = (
    BitmapDecompressor.name,
    JdsDecompressor.name,
    EllCooDecompressor.name,
)


def get_decompressor(name: str) -> DecompressorModel:
    """Instantiate the decompressor model for a format name."""
    try:
        model = _MODELS[name]
    except KeyError:
        raise UnknownFormatError(name, MODELED_FORMATS) from None
    return model()
