"""Base class for per-format decompressor hardware models.

Each model mirrors one of the paper's tailored HLS implementations
(Listings 1-7): the cycle cost follows the listing's loop structure —
what is pipelined at II = 1, what is fully unrolled over banked BRAM,
and where extra BRAM accesses serialize — and the transfer cost follows
the format's exact byte layout.

The accounting convention matches Equation 1: a partition's compute
latency is ``T_decomp + rows_processed * T_dot``, where
``rows_processed`` and the dot-product width are format-specific (the
dense baseline processes all ``p`` rows at width ``p``, making its
overhead exactly 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ...errors import SimulationError
from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile, ProfileTable
from ..config import HardwareConfig

__all__ = [
    "ComputeBreakdown",
    "ComputeColumns",
    "SizeColumns",
    "DecompressorModel",
]


@dataclass(frozen=True)
class ComputeBreakdown:
    """Compute-stage latency of one partition, in cycles.

    ``decompress_cycles`` covers BRAM accesses and row-reconstruction
    logic (Figure 2, stage 2); ``dot_cycles`` covers the dot-product
    engine passes (Figure 2, stage 3).
    """

    decompress_cycles: int
    dot_cycles: int

    def __post_init__(self) -> None:
        if self.decompress_cycles < 0 or self.dot_cycles < 0:
            raise SimulationError("cycle counts must be non-negative")

    @property
    def total_cycles(self) -> int:
        return self.decompress_cycles + self.dot_cycles


@dataclass(frozen=True, eq=False)
class ComputeColumns:
    """Compute-stage latency of every tile in a table, in cycles.

    The ``(n,)``-array counterpart of :class:`ComputeBreakdown`.
    """

    decompress_cycles: np.ndarray
    dot_cycles: np.ndarray

    @property
    def total_cycles(self) -> np.ndarray:
        return self.decompress_cycles + self.dot_cycles

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComputeColumns):
            return NotImplemented
        return np.array_equal(
            self.decompress_cycles, other.decompress_cycles
        ) and np.array_equal(self.dot_cycles, other.dot_cycles)

    __hash__ = object.__hash__


@dataclass(frozen=True, eq=False)
class SizeColumns:
    """Transfer-size accounting of every tile in a table, in bytes.

    The ``(n,)``-array counterpart of
    :class:`~repro.formats.base.SizeBreakdown`.
    """

    useful_bytes: np.ndarray
    data_bytes: np.ndarray
    metadata_bytes: np.ndarray

    @property
    def total_bytes(self) -> np.ndarray:
        return self.data_bytes + self.metadata_bytes

    def totals(self) -> SizeBreakdown:
        """All tiles summed into one scalar breakdown."""
        return SizeBreakdown(
            useful_bytes=int(self.useful_bytes.sum()),
            data_bytes=int(self.data_bytes.sum()),
            metadata_bytes=int(self.metadata_bytes.sum()),
        )

    def breakdown(self, index: int) -> SizeBreakdown:
        """One tile's scalar breakdown."""
        return SizeBreakdown(
            useful_bytes=int(self.useful_bytes[index]),
            data_bytes=int(self.data_bytes[index]),
            metadata_bytes=int(self.metadata_bytes[index]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SizeColumns):
            return NotImplemented
        return (
            np.array_equal(self.useful_bytes, other.useful_bytes)
            and np.array_equal(self.data_bytes, other.data_bytes)
            and np.array_equal(self.metadata_bytes, other.metadata_bytes)
        )

    __hash__ = object.__hash__


class DecompressorModel(ABC):
    """Latency and transfer model of one format's decompressor."""

    #: Format registry name this model corresponds to.
    name: str = ""

    # ------------------------------------------------------------------
    @abstractmethod
    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        """Compute-stage cycles for one non-zero partition."""

    @abstractmethod
    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        """Bytes moved by the memory-read stage for one partition.

        Must agree exactly with the corresponding
        :class:`~repro.formats.base.SparseFormat` ``size()`` on the
        encoded tile; the test suite enforces this equivalence.
        """

    # ------------------------------------------------------------------
    def stream_lines(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> list[int]:
        """Byte payloads assigned to the parallel AXIS lines.

        Default split: values on one line, metadata on the other —
        the slower line defines memory latency (Section 5.2).
        """
        size = self.transfer_size(profile, config)
        return [size.data_bytes, size.metadata_bytes]

    # ------------------------------------------------------------------
    # Batch kernels over a ProfileTable (the struct-of-arrays fast path)
    # ------------------------------------------------------------------
    # The base-class implementations loop the scalar methods, so any
    # third-party model that only defines compute()/transfer_size()
    # keeps working on the batch path; every model shipped with the
    # package overrides them with true vectorized kernels.  The
    # differential test suite pins scalar and batch bit-identical.

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        """Compute-stage cycles of every tile as ``(n,)`` arrays."""
        self._check_table(table, config)
        n = table.n_tiles
        decompress = np.empty(n, dtype=np.int64)
        dot = np.empty(n, dtype=np.int64)
        for index, profile in enumerate(table.profiles()):
            breakdown = self.compute(profile, config)
            decompress[index] = breakdown.decompress_cycles
            dot[index] = breakdown.dot_cycles
        return ComputeColumns(decompress_cycles=decompress, dot_cycles=dot)

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        """Memory-read bytes of every tile as ``(n,)`` arrays."""
        self._check_table(table, config)
        n = table.n_tiles
        useful = np.empty(n, dtype=np.int64)
        data = np.empty(n, dtype=np.int64)
        metadata = np.empty(n, dtype=np.int64)
        for index, profile in enumerate(table.profiles()):
            size = self.transfer_size(profile, config)
            useful[index] = size.useful_bytes
            data[index] = size.data_bytes
            metadata[index] = size.metadata_bytes
        return SizeColumns(
            useful_bytes=useful, data_bytes=data, metadata_bytes=metadata
        )

    def stream_lines_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> np.ndarray:
        """Per-tile AXIS line payloads as an ``(n_lines, n)`` array.

        Default split mirrors :meth:`stream_lines`: row 0 carries the
        values stream, row 1 the metadata stream.  Models overriding
        the scalar split must override this too (or inherit this
        generic fallback, which loops the scalar method whenever the
        scalar split is overridden).
        """
        if type(self).stream_lines is DecompressorModel.stream_lines:
            size = self.transfer_size_batch(table, config)
            return np.stack([size.data_bytes, size.metadata_bytes])
        self._check_table(table, config)
        lines = [
            self.stream_lines(profile, config)
            for profile in table.profiles()
        ]
        if len({len(payloads) for payloads in lines}) == 1 and lines:
            return np.asarray(lines, dtype=np.int64).T
        # ragged line counts: collapse to one aggregate line per tile
        # (the AXI model is bounded by the summed payload either way)
        totals = np.asarray(
            [sum(payloads) for payloads in lines], dtype=np.int64
        )
        return totals[np.newaxis, :]

    def _check_profile(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> None:
        if profile.p != config.partition_size:
            raise SimulationError(
                f"profile partition size {profile.p} != configured "
                f"{config.partition_size}"
            )

    def _check_table(
        self, table: ProfileTable, config: HardwareConfig
    ) -> None:
        if table.p != config.partition_size:
            raise SimulationError(
                f"profile table partition size {table.p} != configured "
                f"{config.partition_size}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
