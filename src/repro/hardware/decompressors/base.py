"""Base class for per-format decompressor hardware models.

Each model mirrors one of the paper's tailored HLS implementations
(Listings 1-7): the cycle cost follows the listing's loop structure —
what is pipelined at II = 1, what is fully unrolled over banked BRAM,
and where extra BRAM accesses serialize — and the transfer cost follows
the format's exact byte layout.

The accounting convention matches Equation 1: a partition's compute
latency is ``T_decomp + rows_processed * T_dot``, where
``rows_processed`` and the dot-product width are format-specific (the
dense baseline processes all ``p`` rows at width ``p``, making its
overhead exactly 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ...errors import SimulationError
from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile
from ..config import HardwareConfig

__all__ = ["ComputeBreakdown", "DecompressorModel"]


@dataclass(frozen=True)
class ComputeBreakdown:
    """Compute-stage latency of one partition, in cycles.

    ``decompress_cycles`` covers BRAM accesses and row-reconstruction
    logic (Figure 2, stage 2); ``dot_cycles`` covers the dot-product
    engine passes (Figure 2, stage 3).
    """

    decompress_cycles: int
    dot_cycles: int

    def __post_init__(self) -> None:
        if self.decompress_cycles < 0 or self.dot_cycles < 0:
            raise SimulationError("cycle counts must be non-negative")

    @property
    def total_cycles(self) -> int:
        return self.decompress_cycles + self.dot_cycles


class DecompressorModel(ABC):
    """Latency and transfer model of one format's decompressor."""

    #: Format registry name this model corresponds to.
    name: str = ""

    # ------------------------------------------------------------------
    @abstractmethod
    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        """Compute-stage cycles for one non-zero partition."""

    @abstractmethod
    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        """Bytes moved by the memory-read stage for one partition.

        Must agree exactly with the corresponding
        :class:`~repro.formats.base.SparseFormat` ``size()`` on the
        encoded tile; the test suite enforces this equivalence.
        """

    # ------------------------------------------------------------------
    def stream_lines(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> list[int]:
        """Byte payloads assigned to the parallel AXIS lines.

        Default split: values on one line, metadata on the other —
        the slower line defines memory latency (Section 5.2).
        """
        size = self.transfer_size(profile, config)
        return [size.data_bytes, size.metadata_bytes]

    def _check_profile(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> None:
        if profile.p != config.partition_size:
            raise SimulationError(
                f"profile partition size {profile.p} != configured "
                f"{config.partition_size}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
