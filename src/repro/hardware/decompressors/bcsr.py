"""BCSR decompressor model (Listing 2).

Like CSR but over 4x4 blocks: one ``offsets`` access per non-zero
block-row, then one cycle per block — the inner gather over the block's
``b * b`` entries is fully unrolled because ``values`` and ``colInx``
are partitioned across BRAM banks (the pragmas at the top of the
listing).  The cost of that determinism: every row of a non-zero
block-row is pushed through the dot-product engine, zero or not, and
the zeros inside non-zero blocks ride along on the wire.
"""

from __future__ import annotations

from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile, ProfileTable
from ..config import HardwareConfig
from .base import (
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
)

__all__ = ["BcsrDecompressor"]


class BcsrDecompressor(DecompressorModel):

    name = "bcsr"

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        b = profile.block_size
        offsets_accesses = profile.nnz_block_rows * config.bram_access_cycles
        block_gathers = profile.n_blocks  # unrolled: 1 cycle per block
        rows_processed = profile.nnz_block_rows * b
        return ComputeBreakdown(
            decompress_cycles=offsets_accesses + block_gathers,
            dot_cycles=rows_processed * config.dot_product_cycles(),
        )

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        self._check_table(table, config)
        b = table.block_size
        return ComputeColumns(
            decompress_cycles=table.nnz_block_rows
            * config.bram_access_cycles
            + table.n_blocks,
            dot_cycles=table.nnz_block_rows
            * (b * config.dot_product_cycles()),
        )

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        b = profile.block_size
        block_rows = -(-config.partition_size // b)
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=profile.n_blocks * b * b * config.value_bytes,
            metadata_bytes=(profile.n_blocks + block_rows)
            * config.index_bytes,
        )

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        self._check_table(table, config)
        b = table.block_size
        block_rows = -(-config.partition_size // b)
        return SizeColumns(
            useful_bytes=table.nnz * config.value_bytes,
            data_bytes=table.n_blocks * (b * b * config.value_bytes),
            metadata_bytes=(table.n_blocks + block_rows)
            * config.index_bytes,
        )
