"""Bitmap decompressor model (the SparTen/SMASH-style extension).

The mask is fixed-size and position-indexed, so row reconstruction is
fully deterministic: the decompressor scans ``p`` mask words (one
partition row per cycle, the row's bits decoded combinationally) while
a popcount prefix steers the packed value stream.  Like ELL, every row
is processed; unlike ELL, the wire carries no padded values — only the
constant one-bit-per-position mask.
"""

from __future__ import annotations

import numpy as np

from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile, ProfileTable
from ..config import HardwareConfig
from .base import (
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
)

__all__ = ["BitmapDecompressor"]


class BitmapDecompressor(DecompressorModel):

    name = "bitmap"

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        # one cycle per partition row for the mask decode, plus the
        # pipelined value-stream walk.
        return ComputeBreakdown(
            decompress_cycles=p + profile.nnz,
            dot_cycles=profile.nnz_rows * config.dot_product_cycles(),
        )

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        self._check_table(table, config)
        return ComputeColumns(
            decompress_cycles=table.nnz + config.partition_size,
            dot_cycles=table.nnz_rows * config.dot_product_cycles(),
        )

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        mask_bytes = -(-(p * p) // 8)
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=profile.nnz * config.value_bytes,
            metadata_bytes=mask_bytes,
        )

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        self._check_table(table, config)
        p = config.partition_size
        mask_bytes = -(-(p * p) // 8)
        values = table.nnz * config.value_bytes
        return SizeColumns(
            useful_bytes=values,
            data_bytes=values,
            metadata_bytes=np.full(
                table.n_tiles, mask_bytes, dtype=np.int64
            ),
        )
