"""COO decompressor model (Listing 6).

A single pipelined II = 1 pass over the tuple stream with one simple
assignment per tuple.  Nothing can be banked — the number of entries
per row is unknown in advance — so the loop is pipelined, not
unrolled.  DOK shares this model ("the same procedure is also
applicable to DOK").
"""

from __future__ import annotations

from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile, ProfileTable
from ..config import HardwareConfig
from .base import (
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
)

__all__ = ["CooDecompressor", "DokDecompressor"]


class CooDecompressor(DecompressorModel):

    name = "coo"

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        return ComputeBreakdown(
            decompress_cycles=profile.nnz,
            dot_cycles=profile.nnz_rows * config.dot_product_cycles(),
        )

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        self._check_table(table, config)
        return ComputeColumns(
            decompress_cycles=table.nnz.copy(),
            dot_cycles=table.nnz_rows * config.dot_product_cycles(),
        )

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=profile.nnz * config.value_bytes,
            metadata_bytes=profile.nnz * 2 * config.index_bytes,
        )

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        self._check_table(table, config)
        values = table.nnz * config.value_bytes
        return SizeColumns(
            useful_bytes=values,
            data_bytes=values,
            metadata_bytes=table.nnz * (2 * config.index_bytes),
        )


class DokDecompressor(CooDecompressor):
    """DOK streams the same three fields per entry and decompresses
    with the same pipelined tuple walk as COO."""

    name = "dok"
