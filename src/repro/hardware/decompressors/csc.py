"""CSC decompressor model (Listing 3) — the orientation-mismatch case.

The hardware needs rows; CSC compresses columns.  Reconstructing each
output row therefore walks *every* column's entries looking for the
current row index: a pipelined scan over all ``nnz`` stored entries plus
the column-pointer advances, repeated for all ``p`` rows.  This is the
paper's deliberately included worst case (up to 21-30x slower than
dense).
"""

from __future__ import annotations

from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile, ProfileTable
from ..config import HardwareConfig
from .base import (
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
)

__all__ = ["CscDecompressor"]


class CscDecompressor(DecompressorModel):

    name = "csc"

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        # per output row: II=1 scan of every stored entry, plus one
        # offsets access to restart the column walk.
        per_row = profile.nnz + config.bram_access_cycles
        return ComputeBreakdown(
            decompress_cycles=p * per_row,
            dot_cycles=profile.nnz_rows * config.dot_product_cycles(),
        )

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        self._check_table(table, config)
        p = config.partition_size
        return ComputeColumns(
            decompress_cycles=p * (table.nnz + config.bram_access_cycles),
            dot_cycles=table.nnz_rows * config.dot_product_cycles(),
        )

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=profile.nnz * config.value_bytes,
            metadata_bytes=(profile.nnz + config.partition_size)
            * config.index_bytes,
        )

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        self._check_table(table, config)
        values = table.nnz * config.value_bytes
        return SizeColumns(
            useful_bytes=values,
            data_bytes=values,
            metadata_bytes=(table.nnz + config.partition_size)
            * config.index_bytes,
        )
