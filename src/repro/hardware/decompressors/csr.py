"""CSR decompressor model (Listing 1).

Per non-zero row: one extra BRAM access to ``offsets`` establishes
``numVal`` (the access the paper identifies as making CSR
compute-bound), then a pipelined II = 1 walk over that row's (index,
value) pairs reconstructs the dense row.  The entry arrays cannot be
banked — the access pattern is data-dependent — so the walk is strictly
sequential.
"""

from __future__ import annotations

from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile, ProfileTable
from ..config import HardwareConfig
from .base import (
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
)

__all__ = ["CsrDecompressor"]


class CsrDecompressor(DecompressorModel):

    name = "csr"

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        offsets_accesses = profile.nnz_rows * config.bram_access_cycles
        entry_walk = profile.nnz  # II = 1 over every stored entry
        return ComputeBreakdown(
            decompress_cycles=offsets_accesses + entry_walk,
            dot_cycles=profile.nnz_rows * config.dot_product_cycles(),
        )

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        self._check_table(table, config)
        return ComputeColumns(
            decompress_cycles=table.nnz_rows * config.bram_access_cycles
            + table.nnz,
            dot_cycles=table.nnz_rows * config.dot_product_cycles(),
        )

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=profile.nnz * config.value_bytes,
            metadata_bytes=(profile.nnz + config.partition_size)
            * config.index_bytes,
        )

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        self._check_table(table, config)
        values = table.nnz * config.value_bytes
        return SizeColumns(
            useful_bytes=values,
            data_bytes=values,
            metadata_bytes=(table.nnz + config.partition_size)
            * config.index_bytes,
        )
