"""Dense baseline "decompressor": there is nothing to decompress.

All ``p`` rows pass straight to the dot-product engine, so the compute
latency is exactly ``p * T_dot`` — the denominator of Equation 1 — and
the transfer moves all ``p * p`` values with zero metadata.
"""

from __future__ import annotations

from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile
from ..config import HardwareConfig
from .base import ComputeBreakdown, DecompressorModel

__all__ = ["DenseDecompressor"]


class DenseDecompressor(DecompressorModel):

    name = "dense"

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        return ComputeBreakdown(
            decompress_cycles=0,
            dot_cycles=p * config.dot_product_cycles(),
        )

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=p * p * config.value_bytes,
            metadata_bytes=0,
        )
