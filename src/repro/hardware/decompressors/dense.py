"""Dense baseline "decompressor": there is nothing to decompress.

All ``p`` rows pass straight to the dot-product engine, so the compute
latency is exactly ``p * T_dot`` — the denominator of Equation 1 — and
the transfer moves all ``p * p`` values with zero metadata.
"""

from __future__ import annotations

import numpy as np

from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile, ProfileTable
from ..config import HardwareConfig
from .base import (
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
)

__all__ = ["DenseDecompressor"]


class DenseDecompressor(DecompressorModel):

    name = "dense"

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        return ComputeBreakdown(
            decompress_cycles=0,
            dot_cycles=p * config.dot_product_cycles(),
        )

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        self._check_table(table, config)
        p = config.partition_size
        n = table.n_tiles
        return ComputeColumns(
            decompress_cycles=np.zeros(n, dtype=np.int64),
            dot_cycles=np.full(
                n, p * config.dot_product_cycles(), dtype=np.int64
            ),
        )

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=p * p * config.value_bytes,
            metadata_bytes=0,
        )

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        self._check_table(table, config)
        p = config.partition_size
        n = table.n_tiles
        return SizeColumns(
            useful_bytes=table.nnz * config.value_bytes,
            data_bytes=np.full(
                n, p * p * config.value_bytes, dtype=np.int64
            ),
            metadata_bytes=np.zeros(n, dtype=np.int64),
        )
