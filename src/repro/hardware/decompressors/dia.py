"""DIA decompressor model (Listing 7).

Row reconstruction scans the stored diagonals (the pipelined II = 1
loop over ``NUM_DIAGONALS``); rows are emitted back-to-back through the
same pipeline, so the scan drains in ``p + n_diagonals`` cycles plus
the header access.  The format's real cost shows up on the wire: a
diagonal is transferred whole once any entry on it is non-zero, so
scattered data that grazes many diagonals ships mostly zeros
(Section 5.2's "worsens when non-zero elements are scattered over
multiple diagonals but do not completely fill them").
"""

from __future__ import annotations

from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile, ProfileTable
from ..config import HardwareConfig
from .base import (
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
)

__all__ = ["DiaDecompressor"]


class DiaDecompressor(DecompressorModel):

    name = "dia"

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        scan = p + profile.n_diagonals + config.bram_access_cycles
        return ComputeBreakdown(
            decompress_cycles=scan,
            dot_cycles=profile.nnz_rows * config.dot_product_cycles(),
        )

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        self._check_table(table, config)
        p = config.partition_size
        return ComputeColumns(
            decompress_cycles=table.n_diagonals
            + (p + config.bram_access_cycles),
            dot_cycles=table.nnz_rows * config.dot_product_cycles(),
        )

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        padded_slots = profile.n_diagonals * profile.dia_max_len
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=padded_slots * config.value_bytes,
            metadata_bytes=profile.n_diagonals * config.index_bytes,
        )

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        self._check_table(table, config)
        return SizeColumns(
            useful_bytes=table.nnz * config.value_bytes,
            data_bytes=table.n_diagonals
            * table.dia_max_len
            * config.value_bytes,
            metadata_bytes=table.n_diagonals * config.index_bytes,
        )
