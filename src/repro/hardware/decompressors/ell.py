"""ELL decompressor model (Listing 5).

The padded geometry makes everything deterministic: both planes are
banked, the row gather is fully unrolled (one cycle per row), and —
the decisive property — *every* row of the partition flows through the
engine because all-zero rows cannot be skipped.  Compute latency is
therefore proportional to the dense baseline and independent of the
sparsity pattern; it only shrinks relative to dense because the padded
width (the paper fixes 6) builds a shallower adder tree than the full
partition width.
"""

from __future__ import annotations

import numpy as np

from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile, ProfileTable
from ..config import HardwareConfig
from .base import (
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
)

__all__ = ["EllDecompressor"]


class EllDecompressor(DecompressorModel):

    name = "ell"

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        width = min(config.ell_hardware_width, p)
        return ComputeBreakdown(
            decompress_cycles=p,  # unrolled gather: 1 cycle per row
            dot_cycles=p * config.dot_product_cycles(width),
        )

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        self._check_table(table, config)
        p = config.partition_size
        width = min(config.ell_hardware_width, p)
        n = table.n_tiles
        return ComputeColumns(
            decompress_cycles=np.full(n, p, dtype=np.int64),
            dot_cycles=np.full(
                n, p * config.dot_product_cycles(width), dtype=np.int64
            ),
        )

    def encoded_width(self, profile: PartitionProfile) -> int:
        """Padded width of the tile's encoding (its longest row)."""
        return max(1, profile.max_row_nnz)

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        slots = config.partition_size * self.encoded_width(profile)
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=slots * config.value_bytes,
            metadata_bytes=slots * config.index_bytes,
        )

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        self._check_table(table, config)
        slots = config.partition_size * np.maximum(1, table.max_row_nnz)
        return SizeColumns(
            useful_bytes=table.nnz * config.value_bytes,
            data_bytes=slots * config.value_bytes,
            metadata_bytes=slots * config.index_bytes,
        )
