"""LIL decompressor model (Listing 4).

Both the ``values`` and ``Inx`` planes are partitioned column-wise
across BRAM banks, so row reconstruction is a deterministic multi-way
merge: each step finds the minimum pending row index (a comparator
reduction over the columns), gathers every column whose head matches it
in parallel (the unrolled second loop), and emits one dense row.  One
merge step per non-zero row, plus one terminating access to recognize
the end of the lists.

Because each entry of a column occupies a distinct row, the longest
column is a lower bound on the number of merge steps — the sense in
which the paper says LIL's compute latency is "defined by the longest
column".
"""

from __future__ import annotations

import numpy as np

from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile, ProfileTable
from ..config import HardwareConfig
from .base import (
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
)

__all__ = ["LilDecompressor"]


class LilDecompressor(DecompressorModel):

    name = "lil"

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        merge_steps = max(profile.nnz_rows, profile.max_col_nnz)
        per_step = config.bram_access_cycles + config.lil_merge_cycles
        terminator = config.bram_access_cycles
        return ComputeBreakdown(
            decompress_cycles=merge_steps * per_step + terminator,
            dot_cycles=profile.nnz_rows * config.dot_product_cycles(),
        )

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        self._check_table(table, config)
        merge_steps = np.maximum(table.nnz_rows, table.max_col_nnz)
        per_step = config.bram_access_cycles + config.lil_merge_cycles
        return ComputeColumns(
            decompress_cycles=merge_steps * per_step
            + config.bram_access_cycles,
            dot_cycles=table.nnz_rows * config.dot_product_cycles(),
        )

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        width = config.partition_size
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=profile.nnz * config.value_bytes,
            metadata_bytes=(profile.nnz + width) * config.index_bytes,
        )

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        self._check_table(table, config)
        values = table.nnz * config.value_bytes
        return SizeColumns(
            useful_bytes=values,
            data_bytes=values,
            metadata_bytes=(table.nnz + config.partition_size)
            * config.index_bytes,
        )
