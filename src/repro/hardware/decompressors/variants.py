"""Decompressor models for the ELL-variant extension formats.

Section 2 names the variants (ELL+COO, JDS) as the practical fixes for
ELL's padding; these models extend the characterization to them so the
trade-off the paper hints at — padding transfer vs deterministic
access — can be measured on the same platform.  Both need the
row-length histogram the partition profiler records.
"""

from __future__ import annotations

import numpy as np

from ...formats.base import SizeBreakdown
from ...partition import PartitionProfile, ProfileTable
from ..config import HardwareConfig
from .base import (
    ComputeBreakdown,
    ComputeColumns,
    DecompressorModel,
    SizeColumns,
)

__all__ = ["JdsDecompressor", "EllCooDecompressor"]


class JdsDecompressor(DecompressorModel):
    """JDS: row-sorted jagged diagonals.

    The value/index streams are diagonal-major and strictly sequential
    (single-bank, II = 1 like COO), plus one permutation lookup per
    reconstructed row; only non-zero rows reach the engine.  Nothing
    is padded, so the wire carries exactly ``nnz`` values plus the
    permutation and the per-diagonal lengths.
    """

    name = "jds"

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        perm_lookups = profile.nnz_rows * config.bram_access_cycles
        return ComputeBreakdown(
            decompress_cycles=profile.nnz + perm_lookups,
            dot_cycles=profile.nnz_rows * config.dot_product_cycles(),
        )

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        self._check_table(table, config)
        return ComputeColumns(
            decompress_cycles=table.nnz
            + table.nnz_rows * config.bram_access_cycles,
            dot_cycles=table.nnz_rows * config.dot_product_cycles(),
        )

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=profile.nnz * config.value_bytes,
            metadata_bytes=(
                profile.nnz  # column indices
                + p  # permutation
                + profile.max_row_nnz  # jagged-diagonal lengths
            )
            * config.index_bytes,
        )

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        self._check_table(table, config)
        values = table.nnz * config.value_bytes
        return SizeColumns(
            useful_bytes=values,
            data_bytes=values,
            metadata_bytes=(
                table.nnz + config.partition_size + table.max_row_nnz
            )
            * config.index_bytes,
        )


class EllCooDecompressor(DecompressorModel):
    """ELL+COO hybrid: fixed-width ELL planes plus a COO overflow.

    The ELL part keeps its unrolled one-cycle row gather over all
    ``p`` rows at the hardware width; the overflow entries follow as a
    pipelined COO walk.  The wire carries the fixed planes (padding
    included) plus three words per overflow tuple.
    """

    name = "ell+coo"

    def _overflow(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> int:
        return profile.ell_overflow(config.ell_hardware_width)

    def compute(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> ComputeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        width = min(config.ell_hardware_width, p)
        overflow = self._overflow(profile, config)
        return ComputeBreakdown(
            decompress_cycles=p + overflow,
            dot_cycles=p * config.dot_product_cycles(width),
        )

    def compute_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> ComputeColumns:
        self._check_table(table, config)
        p = config.partition_size
        width = min(config.ell_hardware_width, p)
        overflow = table.ell_overflow(config.ell_hardware_width)
        return ComputeColumns(
            decompress_cycles=overflow + p,
            dot_cycles=np.full(
                table.n_tiles,
                p * config.dot_product_cycles(width),
                dtype=np.int64,
            ),
        )

    def transfer_size(
        self, profile: PartitionProfile, config: HardwareConfig
    ) -> SizeBreakdown:
        self._check_profile(profile, config)
        p = config.partition_size
        slots = p * config.ell_hardware_width
        overflow = self._overflow(profile, config)
        return SizeBreakdown(
            useful_bytes=profile.nnz * config.value_bytes,
            data_bytes=(slots + overflow) * config.value_bytes,
            metadata_bytes=slots * config.index_bytes
            + overflow * 2 * config.index_bytes,
        )

    def transfer_size_batch(
        self, table: ProfileTable, config: HardwareConfig
    ) -> SizeColumns:
        self._check_table(table, config)
        p = config.partition_size
        slots = p * config.ell_hardware_width
        overflow = table.ell_overflow(config.ell_hardware_width)
        return SizeColumns(
            useful_bytes=table.nnz * config.value_bytes,
            data_bytes=(overflow + slots) * config.value_bytes,
            metadata_bytes=overflow * (2 * config.index_bytes)
            + slots * config.index_bytes,
        )
