"""The fine-grained parallel dot-product engine.

Figure 2 (3): an array of multipliers feeding a balanced adder tree.
The engine width equals the partition size; every decompressed non-zero
row costs one engine pass (``T_dot`` in Equation 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareConfigError
from .config import HardwareConfig

__all__ = ["DotProductEngine"]


@dataclass(frozen=True)
class DotProductEngine:
    """Latency/structure model of one multiplier-array + adder-tree."""

    width: int
    multiplier_cycles: int = 1

    def __post_init__(self) -> None:
        if self.width < 1:
            raise HardwareConfigError(f"width must be >= 1, got {self.width}")
        if self.multiplier_cycles < 1:
            raise HardwareConfigError(
                f"multiplier_cycles must be >= 1, got {self.multiplier_cycles}"
            )

    @classmethod
    def for_config(
        cls, config: HardwareConfig, width: int | None = None
    ) -> "DotProductEngine":
        return cls(
            width=config.partition_size if width is None else width,
            multiplier_cycles=config.multiplier_cycles,
        )

    @property
    def adder_tree_depth(self) -> int:
        depth = 0
        remaining = self.width
        while remaining > 1:
            remaining = -(-remaining // 2)
            depth += 1
        return depth

    @property
    def n_multipliers(self) -> int:
        return self.width

    @property
    def n_adders(self) -> int:
        """Adders in a balanced reduction tree of ``width`` leaves."""
        return max(0, self.width - 1)

    @property
    def row_cycles(self) -> int:
        """Latency of one dot product (``T_dot``)."""
        return self.multiplier_cycles + self.adder_tree_depth

    def rows_cycles(self, n_rows: int) -> int:
        """Latency of ``n_rows`` back-to-back dot products.

        Equation 1 charges ``n_rows * T_dot``; the engine is kept
        un-overlapped across rows to match the paper's accounting
        (which makes the dense baseline exactly ``p * T_dot``).
        """
        if n_rows < 0:
            raise HardwareConfigError(f"negative row count: {n_rows}")
        return n_rows * self.row_cycles
