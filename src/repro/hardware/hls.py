"""A miniature HLS scheduling model.

The paper's platform is written in C++ and scheduled by Vivado HLS,
with ``#pragma HLS pipeline`` / ``unroll`` / ``array_partition``
deciding the cycle cost of every decompressor (Listings 1-7).  This
module reproduces that scheduling discipline on a small loop-nest IR:

* :class:`Op` — combinational/registered logic of fixed latency;
* :class:`BramAccess` — a read/write against a named buffer, whose
  banking decides whether parallel access is legal;
* :class:`Sequence` — statements scheduled back to back;
* :class:`Loop` — with one of three schedules:

  - ``"sequential"``: body repeated ``trips`` times;
  - ``"pipeline"``: initiation-interval II per trip (steady state —
    the fill is charged by the surrounding constants, matching the
    accounting of :mod:`repro.hardware.decompressors`);
  - ``"unroll"``: all trips in parallel; every BRAM access in the body
    must be banked, exactly Vivado's legality rule for full unrolling
    over partitioned arrays.

Each paper listing is then expressed as a nest builder, and the test
suite proves the scheduled cycle counts equal the closed-form
decompressor models — two independent derivations of the same
hardware.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence as SequenceType

from ..errors import HardwareConfigError, SimulationError
from ..partition import PartitionProfile
from .config import HardwareConfig

__all__ = [
    "Statement",
    "Op",
    "BramAccess",
    "Sequence",
    "Loop",
    "DotProductPass",
    "schedule_cycles",
    "LISTING_BUILDERS",
    "build_listing",
]


class Statement(ABC):
    """One schedulable element of a loop nest."""

    @abstractmethod
    def cycles(self) -> int:
        """Scheduled latency in cycles."""

    @abstractmethod
    def bram_reads(self) -> int:
        """Total BRAM accesses issued (for legality/diagnostics)."""

    def _contains_unbanked_access(self) -> bool:
        return False


@dataclass(frozen=True)
class Op(Statement):
    """Fixed-latency logic (assignments, comparisons, address math)."""

    latency: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise HardwareConfigError(
                f"latency must be non-negative, got {self.latency}"
            )

    def cycles(self) -> int:
        return self.latency

    def bram_reads(self) -> int:
        return 0


@dataclass(frozen=True)
class BramAccess(Statement):
    """One access to an on-chip buffer.

    ``banked`` records whether the buffer was array-partitioned; an
    unbanked access inside a fully unrolled loop is illegal, exactly
    as Vivado would refuse (or serialize) it.
    """

    array: str
    latency: int = 2
    banked: bool = False

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise HardwareConfigError(
                f"BRAM latency must be >= 1, got {self.latency}"
            )

    def cycles(self) -> int:
        return self.latency

    def bram_reads(self) -> int:
        return 1

    def _contains_unbanked_access(self) -> bool:
        return not self.banked


@dataclass(frozen=True)
class Sequence(Statement):
    """Statements executed one after another."""

    parts: tuple[Statement, ...]

    def __init__(self, parts: SequenceType[Statement]) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def cycles(self) -> int:
        return sum(part.cycles() for part in self.parts)

    def bram_reads(self) -> int:
        return sum(part.bram_reads() for part in self.parts)

    def _contains_unbanked_access(self) -> bool:
        return any(p._contains_unbanked_access() for p in self.parts)


@dataclass(frozen=True)
class Loop(Statement):
    """A counted loop with an HLS schedule pragma.

    Schedules:

    ``sequential``
        ``trips * body`` — no pragma.
    ``pipeline``
        ``II * trips`` steady-state cycles (II defaults to 1; raised
        automatically to the body's BRAM count when the body touches
        an unbanked buffer more than once per trip, Vivado's port
        limit).
    ``unroll``
        all trips concurrently: the body's latency once; every BRAM
        access in the body must be banked.
    """

    trips: int
    body: Statement
    schedule: str = "sequential"
    ii: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.trips < 0:
            raise HardwareConfigError(
                f"trip count must be non-negative, got {self.trips}"
            )
        if self.schedule not in ("sequential", "pipeline", "unroll"):
            raise HardwareConfigError(
                f"unknown schedule {self.schedule!r}"
            )
        if self.ii < 1:
            raise HardwareConfigError(f"II must be >= 1, got {self.ii}")

    def _effective_ii(self) -> int:
        ports_needed = self.body.bram_reads()
        if self.body._contains_unbanked_access() and ports_needed > 1:
            # a single-bank buffer serves one access per cycle.
            return max(self.ii, ports_needed)
        return self.ii

    def cycles(self) -> int:
        if self.trips == 0:
            return 0
        if self.schedule == "sequential":
            return self.trips * self.body.cycles()
        if self.schedule == "pipeline":
            return self._effective_ii() * self.trips
        # unroll
        if self.body._contains_unbanked_access():
            raise SimulationError(
                f"cannot fully unroll loop {self.label!r}: the body "
                "accesses an unpartitioned array"
            )
        return self.body.cycles()

    def bram_reads(self) -> int:
        return self.trips * self.body.bram_reads()

    def _contains_unbanked_access(self) -> bool:
        return self.body._contains_unbanked_access()


@dataclass(frozen=True)
class DotProductPass(Statement):
    """``rows`` passes through the multiplier-array + adder tree."""

    rows: int
    width: int
    config: HardwareConfig = field(default_factory=HardwareConfig)

    def __post_init__(self) -> None:
        if self.rows < 0:
            raise HardwareConfigError(
                f"row count must be non-negative, got {self.rows}"
            )

    def cycles(self) -> int:
        return self.rows * self.config.dot_product_cycles(self.width)

    def bram_reads(self) -> int:
        return 0


def schedule_cycles(nest: Statement) -> int:
    """Total scheduled latency of a loop nest."""
    return nest.cycles()


# ----------------------------------------------------------------------
# The paper's listings as loop nests
# ----------------------------------------------------------------------
def _dense_nest(profile: PartitionProfile, config: HardwareConfig
                ) -> Statement:
    p = config.partition_size
    return DotProductPass(rows=p, width=p, config=config)


def _csr_nest(profile: PartitionProfile, config: HardwareConfig
              ) -> Statement:
    """Listing 1: offsets read per row, pipelined entry walk."""
    bram = config.bram_access_cycles
    return Sequence(
        [
            Loop(
                trips=profile.nnz_rows,
                body=BramAccess("offsets", latency=bram),
                schedule="sequential",
                label="offsets",
            ),
            Loop(
                trips=profile.nnz,
                body=Sequence(
                    [Op(label="drow[colInx[i]] = values[i]")]
                ),
                schedule="pipeline",
                label="entry walk",
            ),
            DotProductPass(
                rows=profile.nnz_rows,
                width=config.partition_size,
                config=config,
            ),
        ]
    )


def _bcsr_nest(profile: PartitionProfile, config: HardwareConfig
               ) -> Statement:
    """Listing 2: offsets per block-row, unrolled banked block gather."""
    bram = config.bram_access_cycles
    b = profile.block_size
    block_gather = Loop(
        trips=b * b,
        body=BramAccess("values", latency=1, banked=True),
        schedule="unroll",
        label="block gather",
    )
    return Sequence(
        [
            Loop(
                trips=profile.nnz_block_rows,
                body=BramAccess("offsets", latency=bram),
                schedule="sequential",
                label="offsets",
            ),
            Loop(
                trips=profile.n_blocks,
                body=block_gather,
                schedule="pipeline",
                label="blocks",
            ),
            DotProductPass(
                rows=profile.nnz_block_rows * b,
                width=config.partition_size,
                config=config,
            ),
        ]
    )


def _csc_nest(profile: PartitionProfile, config: HardwareConfig
              ) -> Statement:
    """Listing 3: per output row, scan every stored entry."""
    bram = config.bram_access_cycles
    p = config.partition_size
    per_row = Sequence(
        [
            Loop(
                trips=profile.nnz,
                body=Op(label="rowInx[i] == readInx ?"),
                schedule="pipeline",
                label="column scan",
            ),
            BramAccess("offsets", latency=bram),
        ]
    )
    return Sequence(
        [
            Loop(trips=p, body=per_row, schedule="sequential",
                 label="rows"),
            DotProductPass(
                rows=profile.nnz_rows,
                width=config.partition_size,
                config=config,
            ),
        ]
    )


def _lil_nest(profile: PartitionProfile, config: HardwareConfig
              ) -> Statement:
    """Listing 4: min-merge per non-zero row over banked planes."""
    bram = config.bram_access_cycles
    merge_steps = max(profile.nnz_rows, profile.max_col_nnz)
    per_step = Sequence(
        [
            BramAccess("Inx/values", latency=bram, banked=True),
            Op(latency=config.lil_merge_cycles, label="min reduction"),
        ]
    )
    return Sequence(
        [
            Loop(trips=merge_steps, body=per_step,
                 schedule="sequential", label="merge"),
            BramAccess("terminator", latency=bram),
            DotProductPass(
                rows=profile.nnz_rows,
                width=config.partition_size,
                config=config,
            ),
        ]
    )


def _ell_nest(profile: PartitionProfile, config: HardwareConfig
              ) -> Statement:
    """Listing 5: unrolled banked gather for every row."""
    p = config.partition_size
    width = min(config.ell_hardware_width, p)
    row_gather = Loop(
        trips=config.ell_hardware_width,
        body=BramAccess("values/Inx", latency=1, banked=True),
        schedule="unroll",
        label="row gather",
    )
    return Sequence(
        [
            Loop(trips=p, body=row_gather, schedule="pipeline",
                 label="rows"),
            DotProductPass(rows=p, width=width, config=config),
        ]
    )


def _coo_nest(profile: PartitionProfile, config: HardwareConfig
              ) -> Statement:
    """Listing 6: one pipelined pass over the tuples."""
    return Sequence(
        [
            Loop(
                trips=profile.nnz,
                body=Op(label="drow[cols[i]] = values[i]"),
                schedule="pipeline",
                label="tuples",
            ),
            DotProductPass(
                rows=profile.nnz_rows,
                width=config.partition_size,
                config=config,
            ),
        ]
    )


def _dia_nest(profile: PartitionProfile, config: HardwareConfig
              ) -> Statement:
    """Listing 7: pipelined diagonal scan drained across the rows."""
    bram = config.bram_access_cycles
    p = config.partition_size
    return Sequence(
        [
            BramAccess("diags headers", latency=bram),
            Loop(
                trips=p + profile.n_diagonals,
                body=Op(label="IsRowOnDiagonal / assign"),
                schedule="pipeline",
                label="diagonal scan",
            ),
            DotProductPass(
                rows=profile.nnz_rows,
                width=config.partition_size,
                config=config,
            ),
        ]
    )


#: Nest builder per format name (DOK shares COO's listing).
LISTING_BUILDERS = {
    "dense": _dense_nest,
    "csr": _csr_nest,
    "bcsr": _bcsr_nest,
    "csc": _csc_nest,
    "lil": _lil_nest,
    "ell": _ell_nest,
    "coo": _coo_nest,
    "dok": _coo_nest,
    "dia": _dia_nest,
}


def build_listing(
    format_name: str,
    profile: PartitionProfile,
    config: HardwareConfig,
) -> Statement:
    """Build the loop nest of a format's decompressor listing."""
    try:
        builder = LISTING_BUILDERS[format_name]
    except KeyError:
        raise SimulationError(
            f"no HLS listing for format {format_name!r}; known: "
            f"{', '.join(LISTING_BUILDERS)}"
        ) from None
    return builder(profile, config)
