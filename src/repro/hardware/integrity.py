"""Hardware cost model of in-line stream integrity checking.

A checked accelerator verifies each tile's frame — CRC over the
streamed bytes plus a fixed header parse — inside the memory-read
stage, before the decompressor sees a word.  The checker runs
*concurrently* with the AXI transfer (hardware CRC units digest the
stream as it arrives), so the stage's latency becomes::

    max(transfer_cycles, axi_setup + ceil(bytes / crc_bytes_per_cycle))
        + integrity_header_cycles

When the checker matches or beats the link rate
(``crc_bytes_per_cycle >= axi_bytes_per_cycle``) only the constant
header term remains visible; a slower checker turns the memory stage
into a CRC-bound pipe.  Both a scalar and a struct-of-arrays batch
form are provided and are bit-identical, mirroring the
``run``/``run_scalar`` contract of the streaming pipeline.
"""

from __future__ import annotations

import numpy as np

from .config import HardwareConfig

__all__ = ["IntegrityCheckModel"]


class IntegrityCheckModel:
    """Cycle cost of CRC + header checking in the memory-read stage."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Scalar path (time_partition / run_scalar)
    # ------------------------------------------------------------------
    def check_cycles(self, total_bytes: int) -> int:
        """Cycles the checker itself needs for one tile's stream."""
        rate = self.config.crc_bytes_per_cycle
        crc = self.config.axi_setup_cycles + -(-int(total_bytes) // rate)
        return crc + self.config.integrity_header_cycles

    def checked_transfer_cycles(
        self, transfer_cycles: int, total_bytes: int
    ) -> int:
        """Memory-stage latency with the checker overlapping the burst."""
        rate = self.config.crc_bytes_per_cycle
        crc = self.config.axi_setup_cycles + -(-int(total_bytes) // rate)
        return (
            max(int(transfer_cycles), crc)
            + self.config.integrity_header_cycles
        )

    def overhead_cycles(
        self, transfer_cycles: int, total_bytes: int
    ) -> int:
        """Extra cycles checking adds on top of the bare transfer."""
        return (
            self.checked_transfer_cycles(transfer_cycles, total_bytes)
            - int(transfer_cycles)
        )

    # ------------------------------------------------------------------
    # Batch path (run / trace) — bit-identical to the scalar form
    # ------------------------------------------------------------------
    def checked_transfer_cycles_batch(
        self, transfer_cycles: np.ndarray, total_bytes: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`checked_transfer_cycles` over all tiles."""
        rate = self.config.crc_bytes_per_cycle
        total = np.asarray(total_bytes, dtype=np.int64)
        crc = self.config.axi_setup_cycles + -(-total // rate)
        return (
            np.maximum(np.asarray(transfer_cycles, dtype=np.int64), crc)
            + self.config.integrity_header_cycles
        )
