"""Coarse-grained parallelism: aggregated accelerator lanes.

Section 5.1: "Instances of this architecture can be aggregated for
implementing coarse-grain parallelism."  This model aggregates ``n``
copies of the Figure-2 pipeline, each processing whole partitions,
all drawing from the one DDR3 channel:

* non-zero partitions are dispatched greedily to the least-loaded
  lane (longest-processing-time order, the classic 4/3-approximation);
* each lane's compute runs independently, but transfers serialize on
  the shared memory bus;
* the run finishes when the slowest lane drains.

The interesting output is the *scaling curve*: compute-bound formats
(CSC, CSR at high density) scale nearly linearly until the aggregate
compute rate meets the memory bandwidth, while memory-bound formats
(dense, BCSR at high density) barely gain — the coarse-grained twin of
the paper's "memory bandwidth is not always the bottleneck" insight.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from ..errors import HardwareConfigError
from ..partition import PartitionProfile, ProfileTable
from .axi import AxiStreamModel
from .config import HardwareConfig
from .decompressors import DecompressorModel, get_decompressor
from .pipeline import resolve_profile_table
from .resources import ResourceEstimate, estimate_resources

__all__ = ["LaneAssignment", "MultiLaneResult", "MultiLanePipeline"]


@dataclass(frozen=True)
class LaneAssignment:
    """The partitions one lane processes and its busy time."""

    lane: int
    partition_indices: tuple[int, ...]
    compute_cycles: int
    memory_cycles: int


@dataclass(frozen=True)
class MultiLaneResult:
    """Aggregate outcome of a multi-lane run."""

    format_name: str
    n_lanes: int
    partition_size: int
    assignments: tuple[LaneAssignment, ...]
    total_memory_cycles: int

    @property
    def compute_makespan(self) -> int:
        """Cycles until the most-loaded lane drains its compute."""
        if not self.assignments:
            return 0
        return max(a.compute_cycles for a in self.assignments)

    @property
    def total_cycles(self) -> int:
        """End-to-end cycles: lanes overlap, the shared bus does not.

        The run is bounded below by both the serialized transfers and
        the slowest lane's compute; with double buffering the two
        overlap, so the slower of the two dominates.
        """
        return max(self.total_memory_cycles, self.compute_makespan)

    @property
    def bound(self) -> str:
        """``"memory"`` when the shared bus dominates the makespan."""
        if self.total_memory_cycles >= self.compute_makespan:
            return "memory"
        return "compute"

    @property
    def load_imbalance(self) -> float:
        """Max lane compute over mean lane compute (1 = perfect)."""
        if not self.assignments:
            return 1.0
        loads = [a.compute_cycles for a in self.assignments]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def speedup_over(self, single_lane: "MultiLaneResult") -> float:
        """Wall-clock speedup relative to a single-lane run."""
        if self.total_cycles == 0:
            return 1.0
        return single_lane.total_cycles / self.total_cycles


class MultiLanePipeline:
    """Aggregates ``n_lanes`` pipelines behind one memory channel."""

    def __init__(
        self,
        config: HardwareConfig,
        decompressor: DecompressorModel | str,
        n_lanes: int,
    ) -> None:
        if n_lanes < 1:
            raise HardwareConfigError(
                f"n_lanes must be >= 1, got {n_lanes}"
            )
        self.config = config
        if isinstance(decompressor, str):
            decompressor = get_decompressor(decompressor)
        self.decompressor = decompressor
        self.n_lanes = n_lanes
        self.axi = AxiStreamModel(config)

    def resources(self) -> ResourceEstimate:
        """Whole-design resources: one estimate per lane, summed."""
        single = estimate_resources(self.decompressor.name, self.config)
        return ResourceEstimate(
            format_name=single.format_name,
            partition_size=single.partition_size,
            bram_18k=single.bram_18k * self.n_lanes,
            ff=single.ff * self.n_lanes,
            lut=single.lut * self.n_lanes,
            ff_mapped_buffer_bits=(
                single.ff_mapped_buffer_bits * self.n_lanes
            ),
        )

    def run(
        self, profiles: ProfileTable | Sequence[PartitionProfile]
    ) -> MultiLaneResult:
        """Dispatch every partition and total the run."""
        table = resolve_profile_table(self.config, profiles)
        if table is None or table.n_tiles == 0:
            compute_cycles = memory_cycles = ()
        else:
            lines = self.decompressor.stream_lines_batch(
                table, self.config
            )
            memory_cycles = self.axi.transfer_cycles_batch(
                lines.sum(axis=0)
            )
            compute_cycles = self.decompressor.compute_batch(
                table, self.config
            ).total_cycles
        costs = [
            (int(compute), int(memory), index)
            for index, (compute, memory) in enumerate(
                zip(compute_cycles, memory_cycles)
            )
        ]
        total_memory = int(sum(memory_cycles))

        # longest-processing-time greedy onto the least-loaded lane.
        lanes = [(0, 0, lane, [])
                 for lane in range(self.n_lanes)]  # (comp, mem, id, idx)
        heap = [(0, lane) for lane in range(self.n_lanes)]
        heapq.heapify(heap)
        lane_state = {
            lane: {"compute": 0, "memory": 0, "indices": []}
            for lane in range(self.n_lanes)
        }
        del lanes
        for compute_cycles, memory_cycles, index in sorted(
            costs, reverse=True
        ):
            load, lane = heapq.heappop(heap)
            state = lane_state[lane]
            state["compute"] += compute_cycles
            state["memory"] += memory_cycles
            state["indices"].append(index)
            heapq.heappush(heap, (load + compute_cycles, lane))

        assignments = tuple(
            LaneAssignment(
                lane=lane,
                partition_indices=tuple(sorted(state["indices"])),
                compute_cycles=state["compute"],
                memory_cycles=state["memory"],
            )
            for lane, state in sorted(lane_state.items())
        )
        return MultiLaneResult(
            format_name=self.decompressor.name,
            n_lanes=self.n_lanes,
            partition_size=self.config.partition_size,
            assignments=assignments,
            total_memory_cycles=total_memory,
        )
