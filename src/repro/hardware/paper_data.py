"""Published numbers from the paper, for side-by-side comparison.

These are *not* used by the models; they are the ground truth that the
Table 2 / Figure 13 benchmarks print next to the model's estimates so
the reproduction quality is visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError

__all__ = [
    "PaperResourceRow",
    "PAPER_TABLE2",
    "PAPER_STATIC_POWER_W",
    "TOTAL_BRAM_18K",
    "TOTAL_FF",
    "TOTAL_LUT",
    "paper_table2_row",
]

#: Device totals reported in the last row of Table 2 (xq7z020).
TOTAL_BRAM_18K = 140
TOTAL_FF = 106_400
TOTAL_LUT = 53_200


@dataclass(frozen=True)
class PaperResourceRow:
    """One format's row of Table 2: values per partition size 8/16/32."""

    format_name: str
    bram_18k: tuple[int, int, int]
    ff: tuple[float, float, float]  # x1000
    lut: tuple[float, float, float]  # x1000
    dynamic_power_w: tuple[float, float, float]

    def at(self, p: int) -> tuple[int, float, float, float]:
        """(BRAM, FF x1000, LUT x1000, dyn W) at partition size ``p``."""
        try:
            idx = (8, 16, 32).index(p)
        except ValueError:
            raise WorkloadError(
                f"Table 2 covers partition sizes 8/16/32, not {p}"
            ) from None
        return (
            self.bram_18k[idx],
            self.ff[idx],
            self.lut[idx],
            self.dynamic_power_w[idx],
        )


#: Table 2 of the paper, verbatim.
PAPER_TABLE2: tuple[PaperResourceRow, ...] = (
    PaperResourceRow("dense", (8, 16, 32), (1.5, 1.9, 4.3),
                     (0.7, 0.7, 1.2), (0.02, 0.08, 0.03)),
    PaperResourceRow("csr", (2, 2, 8), (0.7, 0.8, 3.8),
                     (0.9, 0.9, 1.1), (0.04, 0.04, 0.07)),
    PaperResourceRow("bcsr", (8, 16, 32), (1.6, 2.4, 4.4),
                     (1.2, 1.4, 2.2), (0.05, 0.06, 0.06)),
    PaperResourceRow("csc", (1, 1, 9), (0.9, 1.0, 2.7),
                     (1.0, 1.2, 1.1), (0.01, 0.05, 0.03)),
    PaperResourceRow("lil", (4, 4, 6), (2.9, 5.8, 9.1),
                     (1.6, 2.7, 4.8), (0.05, 0.08, 0.07)),
    PaperResourceRow("ell", (1, 7, 9), (2.0, 3.2, 0.9),
                     (0.9, 1.0, 0.8), (0.06, 0.10, 0.06)),
    PaperResourceRow("coo", (3, 3, 8), (1.8, 1.3, 3.2),
                     (1.2, 2.5, 5.4), (0.02, 0.04, 0.04)),
    PaperResourceRow("dia", (3, 3, 11), (2.2, 5.0, 9.2),
                     (1.5, 2.8, 4.6), (0.07, 0.12, 0.05)),
)

#: Static power by format (Section 6.4, reported exactly).
PAPER_STATIC_POWER_W: dict[str, float] = {
    "dense": 0.121,
    "csr": 0.121,
    "bcsr": 0.121,
    "lil": 0.121,
    "ell": 0.121,
    "csc": 0.103,
    "coo": 0.103,
    "dok": 0.103,  # evaluated through the COO decompressor
    "dia": 0.103,
    # extension formats (not reported in the paper); assigned their
    # base format's value so energy comparisons stay possible.
    "jds": 0.103,
    "ell+coo": 0.121,
    "bitmap": 0.103,
}


def paper_table2_row(format_name: str) -> PaperResourceRow:
    """Look up a format's published Table 2 row."""
    for row in PAPER_TABLE2:
        if row.format_name == format_name:
            return row
    raise WorkloadError(f"no Table 2 row for format {format_name!r}")
